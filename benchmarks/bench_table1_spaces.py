"""Table I, columns S and L: search-space sizes and average LoC.

``S`` is asserted exactly against the paper's numbers (the error models
were designed to factor to them); ``L`` is measured over a strided
sample and recorded next to the paper's value.  The timed operation is
lazy materialization — the property that makes 9.4M-program spaces
usable at all.
"""

import pytest

from repro.kb import all_assignment_names, get_assignment, table1_expectations

PAPER_L = {
    "assignment1": 12.23, "esc-LAB-3-P1-V1": 15.17,
    "esc-LAB-3-P2-V1": 16.75, "esc-LAB-3-P2-V2": 7.67,
    "esc-LAB-3-P3-V1": 10.5, "esc-LAB-3-P3-V2": 15.42,
    "esc-LAB-3-P4-V1": 10.5, "esc-LAB-3-P4-V2": 17.42,
    "mitx-derivatives": 5.75, "mitx-polynomials": 6.67,
    "rit-all-g-medals": 24.67, "rit-medals-by-ath": 33.5,
}


@pytest.mark.parametrize("name", all_assignment_names())
def test_space_materialization(benchmark, name):
    assignment = get_assignment(name)
    space = assignment.space()
    expected = table1_expectations(name)
    assert space.size == expected["S"]

    stride = max(1, space.size // 256)
    indices = list(range(0, space.size, stride))[:256]

    def materialize_sample():
        return sum(
            len(space.submission(i).source) for i in indices
        )

    benchmark(materialize_sample)
    measured_loc = space.average_loc(sample=indices)
    benchmark.extra_info.update(
        S=space.size,
        paper_L=PAPER_L[name],
        measured_L=round(measured_loc, 2),
        correct_variants=space.correct_count(),
    )
    # the L shape: small arithmetic drills stay small, the RIT
    # file-processing assignments are by far the longest
    assert 4 <= measured_loc <= 45
