"""Matcher engine benchmark: naive reference paths vs the optimized engine.

Two workloads exercise the two optimization layers:

* ``no_headers_multi_method`` — the Algorithm 2 hot case.  The
  esc-LAB-3-P1-V1 reference solution with its methods renamed (so header
  binding cannot shortcut the assignment) plus distractor helper methods,
  graded without header enforcement.  The naive path sweeps every
  injective method assignment, re-grading each (expected, submission)
  pair per permutation; the optimized engine grades each pair once behind
  a memo and solves a maximum-weight bipartite assignment.  The render
  must be byte-identical and the speedup at least
  :data:`REQUIRED_NO_HEADERS_SPEEDUP`.

* ``kb_standard`` — all twelve knowledge-base assignments grading their
  own reference solutions with headers enforced (the common MOOC
  configuration).  Here assignment search is trivial, so the win comes
  from Algorithm 1: compiled search plans, degree/arity pruning over
  indexed EPDGs, and the engine-level match cache.  The naive baseline is
  the paper-literal path (``strategy="permutation"``, ``order="naive"``);
  scores and comment statuses must agree exactly, and the render must be
  byte-identical to the same-order permutation path (variable bindings —
  and thus feedback detail wording — are legitimately order-sensitive,
  see ``bench_ablation_ordering.py``).

Results are written to ``BENCH_matcher.json`` at the repository root,
including the matcher's instrumentation counters (candidates pruned,
nodes visited, cache hits) for the optimized runs.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_matcher_engine.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_matcher_engine.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.instrumentation import collecting
from repro.java import parse_submission
from repro.kb import get_assignment
from repro.kb.registry import all_assignment_names
from repro.matching.submission import match_graphs
from repro.pdg.builder import extract_all_epdgs

#: Required speedup of the bipartite engine over the permutation sweep
#: on the no-headers / many-methods workload.
REQUIRED_NO_HEADERS_SPEEDUP = 3.0
#: Distractor methods added to the no-headers submission (7 methods
#: total against 2 expected ones: a P(7, 2) = 42 assignment sweep).
DISTRACTOR_METHODS = 5
#: Default JSON report location (repository root).
DEFAULT_JSON = Path(__file__).resolve().parents[1] / "BENCH_matcher.json"


def build_no_headers_workload():
    """EPDGs for a renamed esc-LAB-3-P1-V1 solution plus distractors.

    Renaming ``fact``/``lab3p1`` forces the matcher to *discover* the
    method assignment; the distractor helpers (parseable but matching no
    expected method) inflate the assignment space the way a student's
    utility methods would.
    """
    assignment = get_assignment("esc-LAB-3-P1-V1")
    source = (
        assignment.reference_solutions[0]
        .replace("fact", "m_fact")
        .replace("lab3p1", "m_drv")
    )
    distractors = "\n".join(
        f"int helper{i}(int a{i}) {{\n"
        f"    int r{i} = a{i} + {i};\n"
        f"    while (r{i} < {10 + i}) {{\n"
        f"        r{i} += {i + 1};\n"
        f"    }}\n"
        f"    System.out.println(r{i});\n"
        f"    return r{i};\n"
        f"}}\n"
        for i in range(DISTRACTOR_METHODS)
    )
    unit = parse_submission(source + "\n" + distractors)
    graphs = extract_all_epdgs(unit, assignment.synthesize_else_conditions)
    return assignment, graphs


def build_kb_workload():
    """(assignment, EPDGs of its reference solution) for all twelve rows."""
    workload = []
    for name in all_assignment_names():
        assignment = get_assignment(name)
        unit = parse_submission(assignment.reference_solutions[0])
        graphs = extract_all_epdgs(
            unit, assignment.synthesize_else_conditions
        )
        workload.append((assignment, graphs))
    return workload


def _timed(rounds, run):
    """Best-of-``rounds`` wall time and the (last) result of ``run``."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_no_headers(rounds=5, verbose=True):
    """Permutation sweep vs bipartite engine without header binding."""
    assignment, graphs = build_no_headers_workload()

    def naive():
        return match_graphs(graphs, assignment.expected_methods, False,
                            strategy="permutation")

    def optimized():
        return match_graphs(graphs, assignment.expected_methods, False,
                            strategy="bipartite")

    naive_s, naive_outcome = _timed(rounds, naive)
    with collecting() as counters:
        optimized_s, optimized_outcome = _timed(rounds, optimized)
    identical = naive_outcome.render() == optimized_outcome.render()
    speedup = naive_s / optimized_s
    stats = {
        "methods": len(graphs),
        "expected_methods": len(assignment.expected_methods),
        "naive_seconds": round(naive_s, 6),
        "optimized_seconds": round(optimized_s, 6),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_NO_HEADERS_SPEEDUP,
        "byte_identical": identical,
        "method_assignment": dict(
            sorted(optimized_outcome.method_assignment.items())
        ),
        "counters": dict(sorted(counters.counters.items())),
    }
    if verbose:
        print(f"no-headers workload: {stats['methods']} submission methods, "
              f"{stats['expected_methods']} expected")
        print(f"  permutation sweep {naive_s * 1000:8.1f} ms")
        print(f"  bipartite engine  {optimized_s * 1000:8.1f} ms   "
              f"{speedup:.1f}x "
              f"(required >= {REQUIRED_NO_HEADERS_SPEEDUP:.1f}x)")
        print(f"  byte-identical render: {identical}")
    return stats


def run_kb_standard(rounds=3, verbose=True):
    """All twelve KB assignments, reference solutions, headers enforced."""
    workload = build_kb_workload()

    def grade_all(strategy, order):
        return [
            match_graphs(graphs, assignment.expected_methods,
                         assignment.enforce_headers,
                         strategy=strategy, order=order)
            for assignment, graphs in workload
        ]

    naive_s, naive_outcomes = _timed(
        rounds, lambda: grade_all("permutation", "naive")
    )
    with collecting() as counters:
        optimized_s, optimized_outcomes = _timed(
            rounds, lambda: grade_all("bipartite", "connectivity")
        )
    # the pre-PR engine path: same ordering, unmemoized sweep — renders
    # must match this byte-for-byte
    _, reference_outcomes = _timed(
        1, lambda: grade_all("permutation", "connectivity")
    )
    equivalent = all(
        naive.score == optimized.score
        and [c.status for c in naive.comments]
        == [c.status for c in optimized.comments]
        for naive, optimized in zip(naive_outcomes, optimized_outcomes)
    )
    identical = all(
        reference.render() == optimized.render()
        for reference, optimized in zip(
            reference_outcomes, optimized_outcomes
        )
    )
    speedup = naive_s / optimized_s
    stats = {
        "assignments": len(workload),
        "naive_seconds": round(naive_s, 6),
        "optimized_seconds": round(optimized_s, 6),
        "speedup": round(speedup, 2),
        "outcomes_equivalent": equivalent,
        "byte_identical_same_order": identical,
        "counters": dict(sorted(counters.counters.items())),
    }
    if verbose:
        print(f"KB standard workload: {stats['assignments']} assignments, "
              f"reference solutions, headers enforced")
        print(f"  naive engine      {naive_s * 1000:8.1f} ms")
        print(f"  optimized engine  {optimized_s * 1000:8.1f} ms   "
              f"{speedup:.1f}x")
        print(f"  scores/statuses equivalent: {equivalent}; "
              f"render identical to same-order sweep: {identical}")
    return stats


def run_benchmark(quick=False, verbose=True):
    rounds = 2 if quick else 5
    no_headers = run_no_headers(rounds=rounds, verbose=verbose)
    kb_standard = run_kb_standard(
        rounds=1 if quick else 3, verbose=verbose
    )
    return {
        "benchmark": "matcher_engine",
        "mode": "quick" if quick else "full",
        "workloads": {
            "no_headers_multi_method": no_headers,
            "kb_standard": kb_standard,
        },
    }


def check(report):
    """(ok, failures) against the benchmark's acceptance gates."""
    failures = []
    no_headers = report["workloads"]["no_headers_multi_method"]
    kb = report["workloads"]["kb_standard"]
    if not no_headers["byte_identical"]:
        failures.append("no-headers render differs from the naive sweep")
    if no_headers["speedup"] < REQUIRED_NO_HEADERS_SPEEDUP:
        failures.append(
            f"no-headers speedup {no_headers['speedup']:.2f}x < "
            f"{REQUIRED_NO_HEADERS_SPEEDUP}x"
        )
    if not kb["outcomes_equivalent"]:
        failures.append("KB outcomes differ from the naive engine")
    if not kb["byte_identical_same_order"]:
        failures.append("KB render differs from the same-order sweep")
    if kb["speedup"] < 1.0:
        failures.append(
            f"optimized engine slower than naive on the KB workload "
            f"({kb['speedup']:.2f}x)"
        )
    return not failures, failures


# -- pytest entry points -------------------------------------------------

def test_no_headers_bipartite_speedup():
    stats = run_no_headers(rounds=2, verbose=False)
    assert stats["byte_identical"], (
        "bipartite render differs from the permutation sweep"
    )
    assert stats["method_assignment"] == {
        "fact": "m_fact", "lab3p1": "m_drv"
    }
    assert stats["speedup"] >= REQUIRED_NO_HEADERS_SPEEDUP, (
        f"speedup {stats['speedup']:.2f}x < {REQUIRED_NO_HEADERS_SPEEDUP}x"
    )


def test_kb_standard_equivalent_and_not_slower():
    stats = run_kb_standard(rounds=1, verbose=False)
    assert stats["outcomes_equivalent"]
    assert stats["byte_identical_same_order"]
    assert stats["speedup"] >= 1.0


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing rounds (CI smoke test)")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"report path (default {DEFAULT_JSON.name})")
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    ok, failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
