"""Section VI-C, Scalability (Sketch): AutoGrader degrades with repairs.

The paper: "Sketch can provide up to four repairs beyond which its
performance degrades significantly."  We inject 1..4 errors into the
Assignment-1 reference and measure the repair search: candidate count
(work) and wall time must grow combinatorially, while our technique's
grading time stays flat in the number of errors.
"""

import pytest

from repro.baselines import AutoGraderSim
from repro.kb import get_assignment

_ERROR_SLOTS = ["odd-init", "bound", "i-init", "even-strategy"]


def _choices(space, error_count):
    names = [cp.name for cp in space.choice_points]
    choices = [0] * len(names)
    for slot in _ERROR_SLOTS[:error_count]:
        # even-strategy's wrong option is index 3; the rest use 1
        choices[names.index(slot)] = 3 if slot == "even-strategy" else 1
    return choices


@pytest.mark.parametrize("errors", [1, 2, 3])
def test_autograder_repair_cost(benchmark, errors):
    assignment = get_assignment("assignment1")
    space = assignment.space()
    sim = AutoGraderSim(assignment, space, max_repairs=4,
                        work_budget=100_000)
    choices = _choices(space, errors)

    result = benchmark.pedantic(lambda: sim.repair(choices), rounds=2, iterations=1)
    assert result.repaired and result.repair_count == errors
    benchmark.extra_info.update(errors=errors, work=result.work)


@pytest.mark.parametrize("errors", [1, 2, 3])
def test_our_grading_is_flat_in_error_count(benchmark, errors, engines):
    assignment = get_assignment("assignment1")
    space = assignment.space()
    source = space.submission(space.encode(_choices(space, errors))).source
    engine = engines["assignment1"]
    report = benchmark(lambda: engine.grade(source))
    assert not report.is_positive
    benchmark.extra_info.update(errors=errors, engine="patterns")


def test_work_explodes_combinatorially(benchmark):
    """The headline shape: each extra repair multiplies the search."""
    assignment = get_assignment("assignment1")
    space = assignment.space()
    sim = AutoGraderSim(assignment, space, max_repairs=4,
                        work_budget=2_000_000, step_budget=50_000)

    def sweep():
        work = []
        for errors in (1, 2, 3):
            result = sim.repair(_choices(space, errors))
            assert result.repaired
            work.append(result.work)
        return work

    work = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(work_by_errors=work)
    assert work[1] > 10 * work[0]
    assert work[2] > 10 * work[1]
