"""Clustering benchmark: representative grading vs per-submission grading.

MOOC cohorts are duplicate-heavy in a way the batch pipeline's
content-keyed cache cannot see: resubmissions differ in variable names,
constant spellings, and spacing, so their bytes differ while their
grading is rename-equivalent.  This benchmark builds a synthetic cohort
of ``DISTINCT`` sampled structures, each appearing as ``VARIANTS``
alpha-renamed copies (an order-preserving renaming, so all copies land
in one fingerprint bucket), and compares:

* ``plain``    — ``BatchGrader(assignment)``: every submission grades
  through the full parse/match/analysis path;
* ``cluster``  — ``BatchGrader(assignment, cluster=True)``: one full
  grade per bucket, every other member specialized from the bucket
  record (one lex plus string joins).

The win is super-linear in the duplication factor: the cluster run
costs ``buckets * full_grade + members * lex`` against the plain run's
``members * full_grade``, so doubling the variants per structure nearly
doubles the speedup until the lexer floor dominates.  The full run
(10^4 submissions, 100 variants per structure) must clear
:data:`REQUIRED_SPEEDUP`; every run — any size — must produce reports
byte-identical to per-submission grading, which is the clustering
subsystem's differential gate on real cohort data.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q

Full-run results land in ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.cluster import rename_submission
from repro.cluster.audit import audit_assignment
from repro.cluster.fingerprint import fingerprint_source
from repro.core.pipeline import BatchGrader
from repro.kb import get_assignment
from repro.synth import sample_submissions

#: Required cluster-over-plain speedup on the full duplicate-heavy run.
REQUIRED_SPEEDUP = 5.0
#: Required speedup on the small ``--quick`` cohort (CI smoke floor).
QUICK_REQUIRED_SPEEDUP = 2.0
#: Default benchmark assignment.  Its full grade is expensive (a long
#: scanner loop with many patterns), which is exactly the workload
#: clustering exists for; cheap assignments bottom out at the lexer
#: floor much earlier.
ASSIGNMENT = "rit-all-g-medals"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _letters(value: int, width: int) -> str:
    """``value`` in fixed-width base-2 over the alphabet ``ab``.

    Fixed width keeps the strings' sort order equal to the numeric
    order, which :func:`build_cohort` relies on to make its renamings
    order-preserving.
    """
    out = []
    for _ in range(width):
        out.append("ab"[value % 2])
        value //= 2
    return "".join(reversed(out))


def build_cohort(assignment, distinct: int, variants: int, seed: int = 7):
    """``distinct * variants`` submissions, ``variants`` per bucket.

    Every renameable spelling of a sampled structure is renamed to
    ``q<variant>_<slot>``; slots are numbered in sorted-spelling order
    and both halves are fixed-width, so the renaming preserves the
    sorted order of the identifier set — all variants of one structure
    share a fingerprint (including the order signature) and land in one
    bucket.
    """
    audit = audit_assignment(assignment)
    samples = sample_submissions(assignment.space(), distinct, seed=seed)
    variant_width = max(1, (max(variants - 1, 1)).bit_length())
    cohort = []
    for i, sample in enumerate(samples):
        sprint = fingerprint_source(sample.source, audit)
        if sprint is None or not sprint.replay_safe:
            continue
        names = sorted(sprint.spellings)
        slot_width = max(1, (max(len(names) - 1, 1)).bit_length())
        for r in range(variants):
            prefix = "q" + _letters(r, variant_width)
            renaming = {
                name: f"{prefix}_{_letters(j, slot_width)}"
                for j, name in enumerate(names)
            }
            cohort.append(
                (f"s{i:04d}v{r:04d}", rename_submission(sample.source, renaming))
            )
    random.Random(seed).shuffle(cohort)
    return cohort


def run_comparison(assignment_name=ASSIGNMENT, distinct=100, variants=100,
                   seed=7, verbose=True):
    """Grade one cohort plain and clustered; returns the result dict."""
    assignment = get_assignment(assignment_name)
    cohort = build_cohort(assignment, distinct, variants, seed=seed)

    started = time.perf_counter()
    plain = BatchGrader(assignment, cache=False).grade_batch(cohort)
    plain_wall = time.perf_counter() - started

    started = time.perf_counter()
    clustered = BatchGrader(assignment, cache=False, cluster=True).grade_batch(
        cohort
    )
    cluster_wall = time.perf_counter() - started

    identical = all(
        p.render() == c.render() and p.to_dict() == c.to_dict()
        for p, c in zip(plain.reports, clustered.reports)
    )
    counters = {
        key: value
        for key, value in sorted(clustered.stats.counters.items())
        if key.startswith("cluster.")
    }
    buckets = counters.get("cluster.representatives", 0)
    speedup = plain_wall / cluster_wall if cluster_wall > 0 else float("inf")
    results = {
        "assignment": assignment_name,
        "cohort_size": len(cohort),
        "distinct_structures": distinct,
        "variants_per_structure": variants,
        "buckets": buckets,
        "duplicate_rate": round(1 - buckets / len(cohort), 4),
        "plain_wall_seconds": round(plain_wall, 3),
        "cluster_wall_seconds": round(cluster_wall, 3),
        "plain_throughput_per_second": round(len(cohort) / plain_wall, 1),
        "cluster_throughput_per_second": round(len(cohort) / cluster_wall, 1),
        "speedup": round(speedup, 2),
        "byte_identical": identical,
        "counters": counters,
    }
    if verbose:
        print(f"cohort: {len(cohort)} submissions for {assignment_name} "
              f"({distinct} structures x {variants} renamed variants, "
              f"{100 * results['duplicate_rate']:.0f}% duplicate rate)")
        print(f"{'configuration':12s} {'wall s':>8s} {'subs/s':>9s} "
              f"{'speedup':>8s}")
        for label, wall in (("plain", plain_wall), ("cluster", cluster_wall)):
            print(f"{label:12s} {wall:8.3f} {len(cohort) / wall:9.1f} "
                  f"{plain_wall / wall:7.2f}x")
        print(f"cluster output byte-identical to plain: {identical}")
        print(f"buckets: {buckets}, "
              f"specialized: {counters.get('cluster.specialized', 0)}, "
              f"fallbacks: {counters.get('cluster.fallbacks', 0)}")
    return results


# -- pytest entry points -------------------------------------------------

def test_clustered_batch_byte_identical_and_faster():
    results = run_comparison(distinct=12, variants=10, verbose=False)
    assert results["byte_identical"], (
        "clustered reports differ from per-submission grading"
    )
    assert results["counters"].get("cluster.specialized", 0) > 0
    assert results["speedup"] >= QUICK_REQUIRED_SPEEDUP, (
        f"cluster speedup {results['speedup']:.2f}x "
        f"< {QUICK_REQUIRED_SPEEDUP}x on a duplicate-heavy cohort"
    )


def test_low_duplication_cohort_stays_identical():
    """One variant per structure: everything is a representative, the
    differential property must still hold (the documented worst case
    for enabling ``--cluster``)."""
    results = run_comparison(distinct=15, variants=1, verbose=False)
    assert results["byte_identical"]
    assert results["counters"].get("cluster.specialized", 0) == 0


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohort (CI smoke test); does not "
                             "rewrite BENCH_cluster.json")
    parser.add_argument("--assignment", default=ASSIGNMENT)
    parser.add_argument("--distinct", type=int, default=None,
                        help="distinct structures (default 100, "
                             "or 12 with --quick)")
    parser.add_argument("--variants", type=int, default=None,
                        help="renamed variants per structure "
                             "(default 100, or 10 with --quick)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_cluster.json")
    args = parser.parse_args(argv)
    distinct = args.distinct if args.distinct is not None else (
        12 if args.quick else 100
    )
    variants = args.variants if args.variants is not None else (
        10 if args.quick else 100
    )
    required = QUICK_REQUIRED_SPEEDUP if args.quick else REQUIRED_SPEEDUP
    results = run_comparison(args.assignment, distinct=distinct,
                             variants=variants)
    payload = {
        "benchmark": "cluster",
        "mode": "quick" if args.quick else "full",
        "required_speedup": required,
        **results,
    }
    if not args.quick and not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    if not results["byte_identical"]:
        print("FAIL: clustered output is not byte-identical to plain")
        return 1
    if results["speedup"] < required:
        print(f"FAIL: speedup {results['speedup']:.2f}x < {required}x")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
