"""Table I, column D: discrepancies between functional testing and the
pattern-based verdict.

A discrepancy is a submission where functional testing says correct but
the technique reports negative feedback, or vice versa (the paper's
definition).  The paper counts them over the full spaces; we count over
the deterministic sample and extrapolate, recording both next to the
paper's value.  The claim to reproduce is the *shape*: the assignments
the paper lists with D = 0 stay at (or near) zero, and the discrepancy-
rich assignments (print-order variants, interval lower bounds, the RIT
field-selector family) show a clearly non-zero rate caused by the same
submission classes the paper discusses.
"""

import pytest

from repro.kb import all_assignment_names, get_assignment
from repro.testing import run_tests_on_source

PAPER_D = {
    "assignment1": 24, "esc-LAB-3-P1-V1": 8, "esc-LAB-3-P2-V1": 592,
    "esc-LAB-3-P2-V2": 0, "esc-LAB-3-P3-V1": 1, "esc-LAB-3-P3-V2": 4,
    "esc-LAB-3-P4-V1": 1, "esc-LAB-3-P4-V2": 248,
    "mitx-derivatives": 0, "mitx-polynomials": 0,
    "rit-all-g-medals": 1872, "rit-medals-by-ath": 744,
}

#: Assignments the paper reports as discrepancy-free.
ZERO_D = {name for name, d in PAPER_D.items() if d == 0}


@pytest.mark.parametrize("name", all_assignment_names())
def test_discrepancy_rate(benchmark, name, cohorts, engines):
    assignment = get_assignment(name)
    engine = engines[name]
    cohort = cohorts[name]

    def count_discrepancies():
        count = 0
        for submission in cohort:
            positive = engine.grade(submission.source).is_positive
            passed = run_tests_on_source(
                submission.source, assignment.tests, step_budget=200_000
            ).passed
            if positive != passed:
                count += 1
        return count

    sample_d = benchmark.pedantic(count_discrepancies, rounds=2, iterations=1)
    space = assignment.space()
    extrapolated = round(sample_d / len(cohort) * space.size)
    benchmark.extra_info.update(
        paper_D=PAPER_D[name],
        sample_D=sample_d,
        sample_size=len(cohort),
        extrapolated_D=extrapolated,
        paper_rate=PAPER_D[name] / space.size,
        measured_rate=sample_d / len(cohort),
    )
    # exhaustively check the small discrepancy-free spaces
    if name in ZERO_D and space.size <= 1024:
        exhaustive = 0
        for index in range(space.size):
            source = space.submission(index).source
            positive = engine.grade(source).is_positive
            passed = run_tests_on_source(
                source, assignment.tests, step_budget=200_000
            ).passed
            if positive != passed:
                exhaustive += 1
        benchmark.extra_info["exhaustive_D"] = exhaustive
        assert exhaustive <= space.size * 0.02
