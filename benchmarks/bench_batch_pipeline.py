"""Batch pipeline benchmark: serial vs cached vs parallel+cached.

The MOOC workload the paper targets is duplicate-heavy — students
resubmit unchanged files and cohorts converge on identical solutions —
so the batch pipeline's content-keyed cache turns a large fraction of
the stream into replay.  This benchmark builds a synthetic cohort with
a controlled duplicate fraction (60% duplicates by default, well above
the 30% a real MOOC easily exceeds) and compares three configurations:

* ``serial``            — no cache, one submission at a time (baseline)
* ``serial+cache``      — dedupe/replay only
* ``parallel+cache``    — thread pool on top of the cache

asserting that parallel+cache achieves >= 2x the serial throughput and
that its reports are byte-identical to the serial baseline's.

It also gates the static-analysis layer's cost: on an uncached serial
run, the ``analysis`` phase (the ``repro.analysis`` submission checks)
must stay under :data:`ANALYSIS_OVERHEAD_LIMIT` of end-to-end batch
wall time.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_pipeline.py -q
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.core.pipeline import BatchGrader
from repro.kb import get_assignment
from repro.synth import sample_submissions

#: Fraction of the cohort that duplicates an earlier submission.
DUPLICATE_FRACTION = 0.6
#: Required speedup of parallel+cache over the serial baseline.
REQUIRED_SPEEDUP = 2.0
#: Ceiling on the analysis phase's share of end-to-end batch wall time.
ANALYSIS_OVERHEAD_LIMIT = 0.10


def build_cohort(assignment, size: int, seed: int = 11):
    """``size`` submissions of which ``DUPLICATE_FRACTION`` are repeats."""
    unique = max(1, round(size * (1 - DUPLICATE_FRACTION)))
    originals = sample_submissions(assignment.space(), unique, seed=seed)
    rng = random.Random(seed)
    cohort = [(f"s{i:04d}", originals[i].source) for i in range(unique)]
    while len(cohort) < size:
        i = len(cohort)
        cohort.append((f"s{i:04d}", rng.choice(originals).source))
    rng.shuffle(cohort)
    return cohort


def run_config(assignment, cohort, label, **grader_kwargs):
    """Grade the cohort once; returns (label, elapsed, result)."""
    grader = BatchGrader(assignment, **grader_kwargs)
    started = time.perf_counter()
    result = grader.grade_batch(cohort)
    return label, time.perf_counter() - started, result


def run_comparison(assignment_name="assignment1", size=240, workers=4,
                   verbose=True):
    assignment = get_assignment(assignment_name)
    cohort = build_cohort(assignment, size)
    duplicates = size - len({source for _, source in cohort})
    configs = [
        ("serial", dict(mode="serial", cache=False)),
        ("serial+cache", dict(mode="serial", cache=True)),
        ("parallel+cache", dict(mode="thread", workers=workers, cache=True)),
    ]
    rows = [run_config(assignment, cohort, label, **kwargs)
            for label, kwargs in configs]
    baseline = rows[0][1]
    if verbose:
        print(f"cohort: {size} submissions for {assignment_name}, "
              f"{duplicates} duplicates "
              f"({100 * duplicates / size:.0f}% >= 30% required)")
        print(f"{'configuration':16s} {'wall s':>8s} {'subs/s':>9s} "
              f"{'speedup':>8s} {'hit rate':>9s}")
        for label, elapsed, result in rows:
            print(f"{label:16s} {elapsed:8.3f} "
                  f"{result.stats.throughput:9.1f} "
                  f"{baseline / elapsed:7.2f}x "
                  f"{100 * result.stats.cache_hit_rate:8.1f}%")
    serial_result = rows[0][2]
    parallel_label, parallel_elapsed, parallel_result = rows[-1]
    speedup = baseline / parallel_elapsed
    identical = serial_result.rendered() == parallel_result.rendered()
    if verbose:
        print(f"parallel+cache output byte-identical to serial: {identical}")
        print(f"parallel+cache speedup over serial: {speedup:.2f}x "
              f"(required >= {REQUIRED_SPEEDUP:.1f}x)")
    return speedup, identical, duplicates / size, rows


def run_analysis_overhead(assignment_name="assignment1", size=120,
                          verbose=True):
    """Analysis-phase share of an uncached serial batch (the worst case:
    every submission is graded, nothing is replayed from a cache)."""
    assignment = get_assignment(assignment_name)
    cohort = build_cohort(assignment, size)
    _label, elapsed, result = run_config(
        assignment, cohort, "serial", mode="serial", cache=False
    )
    stats = result.stats.to_dict()
    analysis_ms = stats["phase_ms"].get("analysis", 0.0)
    share = (analysis_ms / 1000.0) / elapsed if elapsed > 0 else 0.0
    diagnostics = stats["counters"].get("analysis.diagnostics", 0)
    if verbose:
        print(f"analysis overhead: {analysis_ms:.1f} ms of "
              f"{elapsed * 1000:.1f} ms batch wall "
              f"({100 * share:.1f}%, limit "
              f"{100 * ANALYSIS_OVERHEAD_LIMIT:.0f}%); "
              f"{diagnostics} diagnostics over {size} submissions")
    return share, analysis_ms, diagnostics


# -- pytest entry points -------------------------------------------------

def test_analysis_phase_overhead_bounded():
    share, analysis_ms, _ = run_analysis_overhead(size=80, verbose=False)
    assert share < ANALYSIS_OVERHEAD_LIMIT, (
        f"analysis phase took {100 * share:.1f}% of batch wall time "
        f"({analysis_ms:.1f} ms), limit {100 * ANALYSIS_OVERHEAD_LIMIT:.0f}%"
    )


def test_duplicate_heavy_cohort_parallel_cached_speedup():
    speedup, identical, dup_rate, _ = run_comparison(size=120, verbose=False)
    assert dup_rate >= 0.30
    assert identical, "parallel+cache output differs from serial"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"parallel+cache speedup {speedup:.2f}x < {REQUIRED_SPEEDUP}x"
    )


def test_all_modes_byte_identical():
    assignment = get_assignment("assignment1")
    cohort = build_cohort(assignment, 40)
    cohort.append(("broken", "int x = ;"))
    outputs = [
        run_config(assignment, cohort, label, **kwargs)[2].rendered()
        for label, kwargs in [
            ("serial", dict(mode="serial", cache=False)),
            ("cache", dict(mode="serial", cache=True)),
            ("thread", dict(mode="thread", workers=4, cache=True)),
        ]
    ]
    assert outputs[0] == outputs[1] == outputs[2]


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohort (CI smoke test)")
    parser.add_argument("--assignment", default="assignment1")
    parser.add_argument("--size", type=int, default=None,
                        help="cohort size (default 240, or 80 with --quick)")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)
    size = args.size if args.size is not None else (80 if args.quick else 240)
    speedup, identical, dup_rate, _ = run_comparison(
        args.assignment, size=size, workers=args.workers
    )
    share, analysis_ms, _ = run_analysis_overhead(
        args.assignment, size=size
    )
    if share >= ANALYSIS_OVERHEAD_LIMIT:
        print(f"FAIL: analysis phase is {100 * share:.1f}% of batch "
              f"wall time (limit {100 * ANALYSIS_OVERHEAD_LIMIT:.0f}%)")
        return 1
    if not identical:
        print("FAIL: parallel output is not byte-identical to serial")
        return 1
    if dup_rate < 0.30:
        print(f"FAIL: duplicate rate {dup_rate:.0%} < 30%")
        return 1
    if speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < {REQUIRED_SPEEDUP}x")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
