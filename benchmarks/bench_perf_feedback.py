"""Performance-feedback benchmark: detection, false positives, overhead.

The cohort design mirrors the subsystem's premise: the slow variants
(:mod:`repro.synth.perf_models`) are functionally **correct**, so the
functional grader alone waves them through — only the two-sided perf
analyzer can flag them.  Four gates:

* ``detection``   — every seeded-slow submission gets at least one
  escalated (ERROR) perf diagnostic: 100% on the slow cohort;
* ``false positives`` — zero perf diagnostics across all reference
  solutions of all assignments *and* the seeded fast cohort;
* ``overhead``    — a ``--perf`` batch over the clean cohort costs
  less than 10% extra wall time over the same batch without it;
* ``compatibility`` — with perf disabled, reports are byte-identical
  to a grader that never heard of the analyzer.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_perf_feedback.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_feedback.py -q

Full-run results land in ``BENCH_perf_feedback.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.diagnostics import Severity
from repro.analysis.perf.analyzer import PerfAnalyzer
from repro.core.engine import FeedbackEngine
from repro.core.pipeline import BatchGrader
from repro.kb import all_assignment_names, get_assignment
from repro.synth.perf_models import (
    PERF_SPACES,
    sample_fast_cohort,
    sample_slow_cohort,
)

#: Slow/fast samples per supported assignment in each cohort.
FULL_COUNT = 8
QUICK_COUNT = 2

#: Timed batch repetitions for the overhead gate (best-of to damp
#: scheduler noise; the batches themselves are deterministic).
OVERHEAD_REPEATS = 3

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_perf_feedback.json"
)


def _perf_engine(assignment) -> FeedbackEngine:
    return FeedbackEngine(
        assignment, perf_analyzer=PerfAnalyzer(assignment)
    )


def run_detection(count: int):
    """Grade the seeded-slow cohorts; score escalated detections."""
    per_assignment = {}
    detected = total = 0
    for name in sorted(PERF_SPACES):
        engine = _perf_engine(get_assignment(name))
        hits = misses = 0
        for submission in sample_slow_cohort(name, count=count):
            # the slow variants pass the functional tests (asserted in
            # tests/synth/test_perf_models.py); detection means the
            # analyzer escalated at least one finding to an error
            report = engine.grade(submission.source)
            if any(d.severity is Severity.ERROR for d in report.perf):
                hits += 1
            else:
                misses += 1
        per_assignment[name] = {"detected": hits, "missed": misses}
        detected += hits
        total += hits + misses
    return {
        "cohort_size": total,
        "detected": detected,
        "rate": round(detected / total, 4) if total else 0.0,
        "per_assignment": per_assignment,
    }


def run_false_positives(count: int):
    """References of every assignment + fast cohorts: zero findings."""
    clean = flagged = 0
    offenders = []
    for name in all_assignment_names():
        assignment = get_assignment(name)
        engine = _perf_engine(assignment)
        sources = list(assignment.reference_solutions)
        if name in PERF_SPACES:
            sources += [
                s.source for s in sample_fast_cohort(name, count=count)
            ]
        for source in sources:
            report = engine.grade(source)
            if report.perf:
                flagged += 1
                offenders.append(
                    {"assignment": name,
                     "checks": [d.check for d in report.perf]}
                )
            else:
                clean += 1
    return {
        "cohort_size": clean + flagged,
        "false_positives": flagged,
        "offenders": offenders,
    }


def _clean_batch(count: int):
    """[(assignment_name, [(label, source), ...])] for the overhead and
    compatibility gates — clean submissions only, so timing differences
    are pure analyzer cost, not feedback-path divergence."""
    batches = []
    for name in sorted(PERF_SPACES):
        assignment = get_assignment(name)
        cohort = [
            (f"ref{i}", source)
            for i, source in enumerate(assignment.reference_solutions)
        ]
        cohort += [
            (f"fast{s.index}", s.source)
            for s in sample_fast_cohort(name, count=count)
        ]
        batches.append((name, cohort))
    return batches


def _time_batches(batches, perf: bool) -> float:
    best = None
    for _ in range(OVERHEAD_REPEATS):
        started = time.perf_counter()
        for name, cohort in batches:
            grader = BatchGrader(
                get_assignment(name), cache=False, perf=perf
            )
            grader.grade_batch(cohort)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def run_overhead(count: int):
    batches = _clean_batch(count)
    plain = _time_batches(batches, perf=False)
    with_perf = _time_batches(batches, perf=True)
    overhead = (with_perf - plain) / plain if plain else 0.0
    return {
        "submissions": sum(len(c) for _, c in batches),
        "plain_seconds": round(plain, 3),
        "perf_seconds": round(with_perf, 3),
        "overhead": round(overhead, 4),
    }


def run_compatibility(count: int):
    """Disabled perf must be invisible: byte-identical JSON payloads."""
    mismatches = 0
    compared = 0
    for name, cohort in _clean_batch(count):
        assignment = get_assignment(name)
        plain = BatchGrader(assignment, cache=False)
        explicit = BatchGrader(assignment, cache=False, perf=False)
        left = plain.grade_batch(cohort).reports
        right = explicit.grade_batch(cohort).reports
        for a, b in zip(left, right):
            compared += 1
            if (
                json.dumps(a.to_dict(), sort_keys=True)
                != json.dumps(b.to_dict(), sort_keys=True)
                or a.render() != b.render()
            ):
                mismatches += 1
    return {"compared": compared, "mismatches": mismatches}


def run_benchmark(count: int = FULL_COUNT, verbose: bool = True):
    results = {
        "detection": run_detection(count),
        "false_positives": run_false_positives(count),
        "overhead": run_overhead(count),
        "compatibility": run_compatibility(count),
    }
    if verbose:
        det = results["detection"]
        fps = results["false_positives"]
        ovh = results["overhead"]
        compat = results["compatibility"]
        print(f"detection:    {det['detected']}/{det['cohort_size']} "
              f"seeded-slow flagged ({det['rate']:.0%})")
        print(f"false pos:    {fps['false_positives']} across "
              f"{fps['cohort_size']} clean submissions")
        print(f"overhead:     {ovh['overhead']:+.1%} "
              f"({ovh['plain_seconds']}s -> {ovh['perf_seconds']}s over "
              f"{ovh['submissions']} submissions)")
        print(f"compat:       {compat['mismatches']} mismatches in "
              f"{compat['compared']} disabled-mode reports")
    return results


def gate(results) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    failures = []
    det = results["detection"]
    if det["rate"] < 1.0:
        failures.append(
            f"detection {det['rate']:.2%} < 100% "
            f"({det['detected']}/{det['cohort_size']})"
        )
    fps = results["false_positives"]
    if fps["false_positives"]:
        failures.append(
            f"{fps['false_positives']} false positive(s): "
            f"{fps['offenders']}"
        )
    ovh = results["overhead"]
    if ovh["overhead"] >= 0.10:
        failures.append(
            f"perf overhead {ovh['overhead']:.1%} >= 10%"
        )
    compat = results["compatibility"]
    if compat["mismatches"]:
        failures.append(
            f"{compat['mismatches']} disabled-mode report(s) not "
            f"byte-identical"
        )
    return failures


# -- pytest entry points -------------------------------------------------

def test_seeded_slow_cohort_is_fully_detected():
    results = run_detection(QUICK_COUNT)
    assert results["rate"] == 1.0, results


def test_clean_cohort_has_zero_false_positives():
    results = run_false_positives(QUICK_COUNT)
    assert results["false_positives"] == 0, results["offenders"]


def test_disabled_mode_is_byte_identical():
    results = run_compatibility(QUICK_COUNT)
    assert results["mismatches"] == 0, results


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohorts (CI smoke test); does not "
                             "rewrite BENCH_perf_feedback.json")
    parser.add_argument("--count", type=int, default=None,
                        help="slow/fast samples per assignment (default "
                             f"{FULL_COUNT}, or {QUICK_COUNT} with "
                             "--quick)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_perf_feedback.json")
    args = parser.parse_args(argv)
    count = args.count if args.count is not None else (
        QUICK_COUNT if args.quick else FULL_COUNT
    )
    results = run_benchmark(count)
    failures = gate(results)
    payload = {
        "benchmark": "perf_feedback",
        "mode": "quick" if args.quick else "full",
        "gate": "100% detection, 0 false positives, <10% overhead, "
                "byte-identical when disabled",
        "passed": not failures,
        **results,
    }
    if not args.quick and not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
