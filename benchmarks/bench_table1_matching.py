"""Table I, column M: average pattern-matching time per submission.

The paper reports 0.01s-0.25s per submission on 2006-era hardware; the
claim to reproduce is the *shape*: milliseconds per submission across
every assignment, with the RIT file-processing assignments the slowest.

Each benchmark grades one full sampled cohort and is normalized to
per-submission time via ``extra_info``.
"""

import pytest

from repro.kb import all_assignment_names, table1_expectations

PAPER_M_SECONDS = {
    "assignment1": 0.03, "esc-LAB-3-P1-V1": 0.04,
    "esc-LAB-3-P2-V1": 0.03, "esc-LAB-3-P2-V2": 0.01,
    "esc-LAB-3-P3-V1": 0.01, "esc-LAB-3-P3-V2": 0.03,
    "esc-LAB-3-P4-V1": 0.01, "esc-LAB-3-P4-V2": 0.03,
    "mitx-derivatives": 0.03, "mitx-polynomials": 0.01,
    "rit-all-g-medals": 0.13, "rit-medals-by-ath": 0.25,
}


@pytest.mark.parametrize("name", all_assignment_names())
def test_matching_time(benchmark, name, cohorts, engines):
    engine = engines[name]
    cohort = cohorts[name]

    def grade_cohort():
        positives = 0
        for submission in cohort:
            if engine.grade(submission.source).is_positive:
                positives += 1
        return positives

    benchmark.pedantic(grade_cohort, rounds=3, iterations=1)
    per_submission = benchmark.stats["mean"] / len(cohort)
    benchmark.extra_info.update(
        paper_M_seconds=PAPER_M_SECONDS[name],
        measured_M_seconds=round(per_submission, 5),
        cohort=len(cohort),
        P=table1_expectations(name)["P"],
        C=table1_expectations(name)["C"],
    )
    # the reproduction claim: personalized feedback in milliseconds
    assert per_submission < 0.5
