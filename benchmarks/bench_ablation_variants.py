"""Ablation: pattern variant groups (the Section VII extension).

Measures what the hierarchy buys and costs on Assignment 1:

* verdict quality — a cohort containing index-jumping submissions is
  graded with and without variant groups; the groups must eliminate the
  false negatives (the paper's third discrepancy class) while changing
  no other verdict;
* matching cost — trying every variant multiplies work by at most the
  group width, keeping grading in the milliseconds regime.
"""

import pytest

from repro.core import FeedbackEngine
from repro.kb import get_assignment
from repro.kb.extensions import (
    SKIP_INDEX_SUBMISSION,
    assignment1_with_variants,
)
from repro.synth import sample_submissions


@pytest.fixture(scope="module")
def cohort_with_jumpers():
    space = get_assignment("assignment1").space()
    cohort = [s.source for s in sample_submissions(space, 20, seed=9)]
    cohort.extend([SKIP_INDEX_SUBMISSION] * 5)
    return cohort


@pytest.mark.parametrize("kb", ["plain", "variants"])
def test_grading_cost_with_and_without_variants(
    benchmark, kb, cohort_with_jumpers
):
    assignment = (
        get_assignment("assignment1") if kb == "plain"
        else assignment1_with_variants()
    )
    engine = FeedbackEngine(assignment)

    def grade_all():
        return sum(
            1 for source in cohort_with_jumpers
            if engine.grade(source).is_positive
        )

    positives = benchmark.pedantic(grade_all, rounds=3, iterations=1)
    benchmark.extra_info.update(kb=kb, positives=positives)


def test_variants_fix_only_the_jumping_submissions(
    benchmark, cohort_with_jumpers
):
    plain = FeedbackEngine(get_assignment("assignment1"))
    upgraded = FeedbackEngine(assignment1_with_variants())

    def compare():
        flipped = []
        for source in cohort_with_jumpers:
            before = plain.grade(source).is_positive
            after = upgraded.grade(source).is_positive
            if before != after:
                flipped.append((before, after))
        return flipped

    flipped = benchmark.pedantic(compare, rounds=1, iterations=1)
    # exactly the five jumping submissions flip, all negative -> positive
    assert len(flipped) == 5
    assert all(not before and after for before, after in flipped)
