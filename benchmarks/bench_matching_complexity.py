"""Section IV: matching cost versus graph and pattern size.

The worst case is O(n^m), but the paper argues the practical cost is
governed by the type-partitioned search space and the connectivity-first
node ordering.  We grow synthetic submissions (more loop/if blocks →
larger EPDGs) and measure how matching one fixed pattern scales, plus
the cost of the full Assignment-1 pattern set at each size.
"""

import pytest

from repro.java import parse_submission
from repro.kb import get_pattern
from repro.matching import match_pattern
from repro.pdg import extract_epdg


def _synthetic_submission(blocks: int) -> str:
    """A method with ``blocks`` independent counting loops; every block
    adds ~5 EPDG nodes, only the first is the odd-access idiom."""
    parts = [
        "void assignment1(int[] a) {",
        "    int acc0 = 0;",
        "    for (int i0 = 0; i0 < a.length; i0++)",
        "        if (i0 % 2 == 1)",
        "            acc0 += a[i0];",
    ]
    for b in range(1, blocks):
        parts.extend([
            f"    int acc{b} = 0;",
            f"    for (int i{b} = 0; i{b} < a.length; i{b}++)",
            f"        if (i{b} > {b})",
            f"            acc{b} += {b};",
        ])
    parts.append("    System.out.println(acc0);")
    parts.append("}")
    return "\n".join(parts)


@pytest.mark.parametrize("blocks", [1, 4, 8, 16])
def test_matching_scales_with_graph_size(benchmark, blocks):
    graph = extract_epdg(
        parse_submission(_synthetic_submission(blocks)).methods()[0]
    )
    pattern = get_pattern("seq-odd-access")
    embeddings = benchmark(lambda: match_pattern(pattern, graph))
    assert len(embeddings) == 1  # only the first block matches
    benchmark.extra_info.update(
        blocks=blocks, graph_nodes=len(graph),
        pattern_nodes=len(pattern.nodes),
    )


@pytest.mark.parametrize("pattern_name", [
    "print-call",            # 1 node
    "counter-under-cond",    # 3 nodes
    "seq-odd-access",        # 6 nodes
    "record-position-read",  # 10 nodes
])
def test_matching_scales_with_pattern_size(benchmark, pattern_name):
    graph = extract_epdg(
        parse_submission(_synthetic_submission(8)).methods()[0]
    )
    pattern = get_pattern(pattern_name)
    benchmark(lambda: match_pattern(pattern, graph))
    benchmark.extra_info.update(
        pattern_nodes=len(pattern.nodes), graph_nodes=len(graph),
    )


def test_epdg_construction_is_linear(benchmark):
    sources = [_synthetic_submission(b) for b in (2, 4, 8, 16, 32)]
    units = [parse_submission(s).methods()[0] for s in sources]

    def build_all():
        return [len(extract_epdg(u)) for u in units]

    sizes = benchmark(build_all)
    assert sizes == sorted(sizes)
