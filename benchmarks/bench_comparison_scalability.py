"""Section VI-C, Scalability: our technique is input-independent; the
dynamic baselines are not.

The paper's claims:

* "Our technique took milliseconds on average in all of our experiments
  and is independent of the input values."
* CLARA "is able to deal with small but not large inputs" (it traces
  executions, so cost grows with input magnitude; at k = 100,000 it
  times out while functional testing takes milliseconds).
* Sketch/AutoGrader needs bounded inputs and explores the whole domain.

We sweep the input size of Assignment 1 (array length) and measure:
pattern matching (constant), functional testing (linear), and CLARA
trace matching (linear with a far larger constant, timing out at the
largest size under a fixed budget).
"""

import pytest

from repro.baselines import ClaraSim
from repro.core.assignment import FunctionalTest
from repro.kb import get_assignment

SIZES = [10, 100, 1000, 10_000]


def _input_test(size):
    array = [(i * 7) % 100 for i in range(size)]
    odd = sum(array[1::2])
    even = 1
    for v in array[0::2]:
        even *= v
    from repro.interp.values import wrap_int
    even = wrap_int(even)
    return FunctionalTest(
        "assignment1", (array,), expected_stdout=f"{odd}\n{even}\n",
    )


@pytest.mark.parametrize("size", SIZES)
def test_ours_is_input_independent(benchmark, size, engines):
    # the submission text does not change with the input, and neither
    # does static analysis: timing must be flat across the sweep
    assignment = get_assignment("assignment1")
    engine = engines["assignment1"]
    source = assignment.reference_solutions[0]
    benchmark(lambda: engine.grade(source))
    benchmark.extra_info.update(input_size=size, engine="patterns")
    assert benchmark.stats["mean"] < 0.5


@pytest.mark.parametrize("size", SIZES)
def test_functional_testing_grows_linearly(benchmark, size):
    assignment = get_assignment("assignment1")
    source = assignment.reference_solutions[0]
    test = _input_test(size)
    from repro.testing import run_tests_on_source

    result = benchmark.pedantic(
        lambda: run_tests_on_source(source, [test], step_budget=10_000_000),
        rounds=3, iterations=1,
    )
    benchmark.extra_info.update(input_size=size, engine="functional")
    assert result.passed


@pytest.mark.parametrize("size", SIZES)
def test_clara_tracing_grows_linearly(benchmark, size):
    assignment = get_assignment("assignment1")
    source = assignment.reference_solutions[0]
    sim = ClaraSim(assignment, inputs=[_input_test(size)],
                   step_budget=10_000_000)
    sim.fit([source])
    result = benchmark.pedantic(lambda: sim.match(source), rounds=3, iterations=1)
    benchmark.extra_info.update(input_size=size, engine="clara")
    assert result.matched


def test_clara_times_out_on_large_inputs_where_tests_do_not(
    benchmark, engines
):
    """The k = 100,000 claim, reproduced on the array workload: under a
    budget that functional testing fits comfortably, CLARA's trace
    collection blows past it."""
    from repro.testing import run_tests_on_source
    assignment = get_assignment("assignment1")
    source = assignment.reference_solutions[0]
    big = _input_test(100_000)
    budget = 3_000_000

    sim = ClaraSim(assignment, inputs=[_input_test(1000)],
                   step_budget=budget)
    sim.fit([source])
    slow = ClaraSim(assignment, inputs=[big], step_budget=200_000)
    slow._clusters = sim._clusters  # reuse fitted clusters

    def whole_scenario():
        # functional testing completes inside the budget
        tests_pass = run_tests_on_source(
            source, [big], step_budget=budget
        ).passed
        # our technique does not even look at the input
        ours_positive = engines["assignment1"].grade(source).is_positive
        # CLARA's per-event tracing overhead exhausts a budget that
        # plain execution fits into with room to spare
        clara = slow.match(source)
        return tests_pass, ours_positive, clara

    tests_pass, ours_positive, clara = benchmark.pedantic(
        whole_scenario, rounds=1, iterations=1
    )
    assert tests_pass and ours_positive and clara.timed_out
