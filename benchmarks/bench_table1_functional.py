"""Table I, column T: average functional-testing time per submission.

The paper reports 0.10s-0.35s per submission (JVM startup dominated).
Our interpreter has no VM startup, so absolute numbers are smaller; the
shape to reproduce is that functional testing is uniformly slower than —
or comparable to — pattern matching, and roughly constant across the
sampled cohort.
"""

import pytest

from repro.kb import all_assignment_names, get_assignment
from repro.testing import run_tests_on_source

PAPER_T_SECONDS = {
    "assignment1": 0.18, "esc-LAB-3-P1-V1": 0.20,
    "esc-LAB-3-P2-V1": 0.20, "esc-LAB-3-P2-V2": 0.17,
    "esc-LAB-3-P3-V1": 0.10, "esc-LAB-3-P3-V2": 0.19,
    "esc-LAB-3-P4-V1": 0.17, "esc-LAB-3-P4-V2": 0.26,
    "mitx-derivatives": 0.12, "mitx-polynomials": 0.12,
    "rit-all-g-medals": 0.32, "rit-medals-by-ath": 0.35,
}


@pytest.mark.parametrize("name", all_assignment_names())
def test_functional_testing_time(benchmark, name, cohorts):
    assignment = get_assignment(name)
    cohort = cohorts[name]

    def run_suite_over_cohort():
        passed = 0
        for submission in cohort:
            if run_tests_on_source(submission.source, assignment.tests,
                                   step_budget=200_000).passed:
                passed += 1
        return passed

    benchmark.pedantic(run_suite_over_cohort, rounds=3, iterations=1)
    per_submission = benchmark.stats["mean"] / len(cohort)
    benchmark.extra_info.update(
        paper_T_seconds=PAPER_T_SECONDS[name],
        measured_T_seconds=round(per_submission, 5),
        tests=len(assignment.tests),
    )
    assert per_submission < 1.0
