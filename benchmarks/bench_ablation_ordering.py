"""Ablation: the node-ordering heuristic of Algorithm 1.

The paper: "in practice, the performance depends on the size of the
search space and the processing order of the pattern nodes."  We compare
the connectivity-first ordering (default) against the paper's literal
line 11 (any unmatched node, declaration order) on the knowledge base's
heaviest workload: both must return identical embeddings, and the
heuristic must not be slower.
"""

import pytest

from repro.java import parse_submission
from repro.kb import get_assignment, get_pattern
from repro.matching import match_pattern
from repro.pdg import extract_epdg


def _rit_graph():
    assignment = get_assignment("rit-all-g-medals")
    return extract_epdg(
        parse_submission(assignment.reference_solutions[0])
        .method("countGoldMedals")
    )


@pytest.mark.parametrize("order", ["connectivity", "naive"])
def test_ordering_cost_on_record_pattern(benchmark, order):
    graph = _rit_graph()
    pattern = get_pattern("record-position-read")
    embeddings = benchmark(
        lambda: match_pattern(pattern, graph, order=order)
    )
    assert embeddings
    benchmark.extra_info.update(order=order)


@pytest.mark.parametrize("order", ["connectivity", "naive"])
def test_ordering_cost_on_odd_access(benchmark, order):
    assignment = get_assignment("assignment1")
    graph = extract_epdg(
        parse_submission(assignment.reference_solutions[0])
        .method("assignment1")
    )
    pattern = get_pattern("seq-odd-access")
    embeddings = benchmark(
        lambda: match_pattern(pattern, graph, order=order)
    )
    assert len(embeddings) == 1
    benchmark.extra_info.update(order=order)


def test_both_orderings_agree_on_the_whole_kb(benchmark):
    """Correctness of the ablation: orderings find the same occurrences.

    Algorithm 1 is inherently order-sensitive in its *variable* bindings
    (an under-constrained template binds γ at whichever node is matched
    first), so we compare the structural result — the sets of matched
    graph nodes — which both orderings must agree on.
    """
    from repro.kb import all_assignment_names

    cases = []
    for name in all_assignment_names():
        assignment = get_assignment(name)
        unit = parse_submission(assignment.reference_solutions[0])
        for method in assignment.expected_methods:
            graph = extract_epdg(unit.method(method.name))
            for pattern, _ in method.patterns:
                cases.append((pattern, graph))

    def occurrences(pattern, graph, order):
        return {
            frozenset(v for _, v in e.iota)
            for e in match_pattern(pattern, graph, order=order)
        }

    def compare_all():
        mismatches = 0
        for pattern, graph in cases:
            fast = occurrences(pattern, graph, "connectivity")
            naive = occurrences(pattern, graph, "naive")
            if fast != naive:
                mismatches += 1
        return mismatches

    assert benchmark.pedantic(compare_all, rounds=1, iterations=1) == 0
