"""Frontend benchmark: seed lexer/parser/builder vs the optimized frontend.

Three workloads cover the frontend performance pass end to end:

* ``frontend_cohort`` — a duplicate-heavy cohort (every distinct source
  resubmitted several times, the MOOC shape) across all twelve KB
  assignments.  The naive path is the frozen seed frontend vendored in
  ``_frontend_reference.py`` — char-at-a-time lexer, dataclass tokens,
  uncached printer/variable analysis, no frontend cache — run once per
  submission exactly like the seed engine did.  The optimized path is
  :meth:`repro.core.engine.FeedbackEngine.frontend`: the regex-dispatch
  lexer, parser fast paths, memoized printing/analysis, hash-consed EPDG
  contents, and the engine's source-keyed frontend cache.  Graphs must be
  structurally identical and the speedup at least
  :data:`REQUIRED_FRONTEND_SPEEDUP`; the micro-only speedup (cache
  disabled) is reported alongside.

* ``report_equivalence`` — every distinct source graded twice: through
  the optimized frontend and through reference-built EPDGs fed to the
  same matcher.  Renders and ``to_dict`` JSON must be byte-identical;
  parse-error messages must match the reference lexer/parser's exactly.

* ``warm_store`` — the persistent cache acceptance gate.  Two *separate
  processes* run ``repro.cli grade-batch --cache-dir`` over the same
  cohort; the second must grade nothing: 100% cache hits served from
  disk, zero ``match.*`` counter activity, and report payloads identical
  to the first run's.

Results are written to ``BENCH_frontend.json`` at the repository root,
including the per-phase cost breakdown (parse / epdg_build /
pattern_match / constraint_match / assignment_solve) that
``docs/PERFORMANCE.md`` cites.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_frontend.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_frontend.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import _frontend_reference as reference  # noqa: E402 - sibling module

from repro.core.engine import FeedbackEngine  # noqa: E402
from repro.instrumentation import collecting  # noqa: E402
from repro.java import parse_submission  # noqa: E402
from repro.kb import get_assignment  # noqa: E402
from repro.kb.registry import all_assignment_names  # noqa: E402
from repro.matching.submission import match_graphs  # noqa: E402

#: Required speedup of the optimized frontend (micro-optimizations plus
#: the engine frontend cache) over the seed frontend on the
#: duplicate-heavy cohort.
REQUIRED_FRONTEND_SPEEDUP = 3.0
#: Resubmission counts cycled over the distinct sources of a cohort:
#: most submissions are duplicates (mean factor 3.2), the shape MOOC
#: cohorts actually have.
DUPLICATION = (8, 4, 2, 1, 1)
#: Synthetic (error-model) variants sampled per assignment on top of the
#: reference solutions.
SYNTHETIC_PER_ASSIGNMENT = 4
#: Default JSON report location (repository root).
DEFAULT_JSON = Path(__file__).resolve().parents[1] / "BENCH_frontend.json"

#: Sources the reference frontend rejects — the error text (message and
#: position) must survive the rewrite byte-for-byte.
BROKEN_SOURCES = (
    "int f() { return 1 + ; }",
    "int f() { int x = 3;\n  /* never closed",
    'int f() { String s = "unterminated\n; }',
    "int f() { if (x > 0) { return 1; }",
    "int f() { int 9lives = 9; }",
)


def build_cohorts(synthetic_per_assignment=SYNTHETIC_PER_ASSIGNMENT):
    """``(assignment, duplicate-heavy source list)`` for every KB row."""
    from repro.synth import sample_submissions

    cohorts = []
    for name in all_assignment_names():
        assignment = get_assignment(name)
        distinct = list(assignment.reference_solutions)
        if assignment.space_factory and synthetic_per_assignment:
            distinct.extend(
                sample.source
                for sample in sample_submissions(
                    assignment.space(), synthetic_per_assignment, seed=7
                )
            )
        seen: set[str] = set()
        unique = [s for s in distinct if not (s in seen or seen.add(s))]
        cohort: list[str] = []
        for index, source in enumerate(unique):
            cohort.extend([source] * DUPLICATION[index % len(DUPLICATION)])
        cohorts.append((assignment, cohort))
    return cohorts


def _graph_snapshot(graphs):
    """Structural fingerprint of a method-name → EPDG mapping."""
    return {
        name: (
            tuple(
                (n.node_id, n.type.value, n.content,
                 tuple(sorted(n.defines)), tuple(sorted(n.uses)))
                for n in graph.nodes
            ),
            frozenset(
                (e.source, e.target, e.type.value) for e in graph.edges
            ),
        )
        for name, graph in graphs.items()
    }


def _timed(rounds, run):
    """Best-of-``rounds`` wall time and the (last) result of ``run``."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_frontend_cohort(rounds=3, verbose=True, cohorts=None):
    """Seed frontend vs optimized frontend over the duplicate cohort."""
    cohorts = cohorts or build_cohorts()

    def naive():
        out = []
        for assignment, cohort in cohorts:
            flag = assignment.synthesize_else_conditions
            for source in cohort:
                out.append(reference.extract_all_epdgs(
                    reference.parse_submission(source), flag
                ))
        return out

    def optimized(cache_size=None):
        out = []
        for assignment, cohort in cohorts:
            engine = (
                FeedbackEngine(assignment) if cache_size is None
                else FeedbackEngine(assignment, frontend_cache_size=cache_size)
            )
            for source in cohort:
                out.append(engine.frontend(source))
        return out

    naive_s, naive_graphs = _timed(rounds, naive)
    micro_s, _ = _timed(rounds, lambda: optimized(cache_size=0))
    optimized_s, optimized_graphs = _timed(rounds, optimized)
    identical = all(
        _graph_snapshot(a) == _graph_snapshot(b)
        for a, b in zip(naive_graphs, optimized_graphs)
    )
    submissions = sum(len(cohort) for _, cohort in cohorts)
    distinct = sum(len(set(cohort)) for _, cohort in cohorts)
    speedup = naive_s / optimized_s
    stats = {
        "submissions": submissions,
        "distinct_sources": distinct,
        "naive_seconds": round(naive_s, 6),
        "micro_seconds": round(micro_s, 6),
        "optimized_seconds": round(optimized_s, 6),
        "micro_speedup": round(naive_s / micro_s, 2),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_FRONTEND_SPEEDUP,
        "graphs_identical": identical,
    }
    if verbose:
        print(f"frontend cohort: {submissions} submissions "
              f"({distinct} distinct) across {len(cohorts)} assignments")
        print(f"  seed frontend        {naive_s * 1000:8.1f} ms")
        print(f"  optimized, no cache  {micro_s * 1000:8.1f} ms   "
              f"{stats['micro_speedup']:.1f}x")
        print(f"  optimized + cache    {optimized_s * 1000:8.1f} ms   "
              f"{speedup:.1f}x (required >= "
              f"{REQUIRED_FRONTEND_SPEEDUP:.1f}x)")
        print(f"  graphs structurally identical: {identical}")
    return stats


def run_report_equivalence(verbose=True, cohorts=None):
    """Reports through either frontend must be byte-identical."""
    cohorts = cohorts or build_cohorts()
    compared = 0
    identical = True
    for assignment, cohort in cohorts:
        engine = FeedbackEngine(assignment)
        flag = assignment.synthesize_else_conditions
        for source in dict.fromkeys(cohort):
            optimized_report = engine.grade(source)
            ref_graphs = reference.extract_all_epdgs(
                reference.parse_submission(source), flag
            )
            # the analysis checks need an AST; hand the reference graphs
            # the fast-parsed unit so diagnostics differ only if the
            # *graphs* differ (which is exactly what this gate detects)
            ref_report = engine.grade_graphs(
                ref_graphs, unit=parse_submission(source)
            )
            compared += 1
            if (
                optimized_report.render() != ref_report.render()
                or json.dumps(optimized_report.to_dict())
                != json.dumps(ref_report.to_dict())
            ):
                identical = False
    errors_identical = True
    engine = FeedbackEngine(get_assignment("assignment1"))
    for source in BROKEN_SOURCES:
        try:
            reference.parse_submission(source)
            errors_identical = False  # reference accepted a broken source
            continue
        except reference.JavaSyntaxError as error:
            expected = str(error)
        report = engine.grade(source)
        if report.parse_error != expected:
            errors_identical = False
    stats = {
        "reports_compared": compared,
        "byte_identical": identical,
        "parse_errors_compared": len(BROKEN_SOURCES),
        "parse_errors_identical": errors_identical,
    }
    if verbose:
        print(f"report equivalence: {compared} reports byte-identical: "
              f"{identical}; {len(BROKEN_SOURCES)} parse errors "
              f"identical: {errors_identical}")
    return stats


def _grade_batch_process(assignment, synthetic, cache_dir):
    """One ``repro.cli grade-batch --cache-dir`` run in a child process."""
    root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "grade-batch", assignment,
         "--synthetic", str(synthetic), "--seed", "11",
         "--cache-dir", cache_dir, "--json", "-"],
        cwd=root, env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(completed.stdout)


def _strip_from_cache(payload):
    return [
        {k: v for k, v in item.items() if k != "from_cache"}
        for item in payload["submissions"]
    ]


def run_warm_store(synthetic=40, verbose=True):
    """Second process against a warm ``--cache-dir`` grades nothing."""
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = _grade_batch_process("assignment1", synthetic, cache_dir)
        warm = _grade_batch_process("assignment1", synthetic, cache_dir)
    cold_stats, warm_stats = cold["stats"], warm["stats"]
    warm_counters = warm_stats["counters"]
    stats = {
        "submissions": warm_stats["submissions"],
        "cold_graded": cold_stats["graded"],
        "cold_store_writes": cold_stats["counters"].get(
            "cache.store_writes", 0
        ),
        "warm_graded": warm_stats["graded"],
        "warm_cache_hits": warm_stats["cache_hits"],
        "warm_store_hits": warm_counters.get("cache.store_hits", 0),
        "warm_match_cache_misses": warm_counters.get(
            "match.cache_misses", 0
        ),
        "warm_matcher_idle": not any(
            name.startswith("match.") for name in warm_counters
        ),
        "reports_identical": (
            _strip_from_cache(cold) == _strip_from_cache(warm)
        ),
        "phase_breakdown": {
            name: {
                "ms": cold_stats["phase_ms"][name],
                "calls": cold_stats["phase_calls"].get(name, 0),
            }
            for name in sorted(cold_stats["phase_ms"])
        },
    }
    if verbose:
        print(f"warm store: {stats['submissions']} submissions; cold run "
              f"graded {stats['cold_graded']} "
              f"({stats['cold_store_writes']} persisted)")
        print(f"  warm process graded {stats['warm_graded']}, "
              f"{stats['warm_cache_hits']} cache hits "
              f"({stats['warm_store_hits']} from disk), "
              f"match.cache_misses={stats['warm_match_cache_misses']}")
        print(f"  reports identical across processes: "
              f"{stats['reports_identical']}")
    return stats


def measure_assignment_solve():
    """Seconds spent in ``assignment_solve`` on a no-headers workload.

    Headers-enforced grading never invokes the assignment DP, so the
    per-phase table gets this number from the multi-method workload the
    matcher benchmark uses.
    """
    assignment = get_assignment("esc-LAB-3-P1-V1")
    source = (
        assignment.reference_solutions[0]
        .replace("fact", "m_fact")
        .replace("lab3p1", "m_drv")
    )
    engine = FeedbackEngine(assignment)
    graphs = engine.frontend(source)
    with collecting() as collector:
        match_graphs(graphs, assignment.expected_methods, False)
    return round(collector.seconds.get("assignment_solve", 0.0), 6)


def run_benchmark(quick=False, verbose=True):
    cohorts = build_cohorts(
        synthetic_per_assignment=2 if quick else SYNTHETIC_PER_ASSIGNMENT
    )
    frontend = run_frontend_cohort(
        rounds=2 if quick else 4, verbose=verbose, cohorts=cohorts
    )
    equivalence = run_report_equivalence(verbose=verbose, cohorts=cohorts)
    warm = run_warm_store(synthetic=16 if quick else 40, verbose=verbose)
    warm["phase_breakdown"]["assignment_solve"] = {
        "ms": round(1000 * measure_assignment_solve(), 3),
        "calls": 1,
        "note": "no-headers multi-method workload; "
                "not invoked when headers are enforced",
    }
    return {
        "benchmark": "frontend",
        "mode": "quick" if quick else "full",
        "workloads": {
            "frontend_cohort": frontend,
            "report_equivalence": equivalence,
            "warm_store": warm,
        },
    }


def check(report):
    """(ok, failures) against the benchmark's acceptance gates."""
    failures = []
    frontend = report["workloads"]["frontend_cohort"]
    equivalence = report["workloads"]["report_equivalence"]
    warm = report["workloads"]["warm_store"]
    if not frontend["graphs_identical"]:
        failures.append("optimized frontend builds different EPDGs")
    if frontend["speedup"] < REQUIRED_FRONTEND_SPEEDUP:
        failures.append(
            f"frontend speedup {frontend['speedup']:.2f}x < "
            f"{REQUIRED_FRONTEND_SPEEDUP}x"
        )
    if not equivalence["byte_identical"]:
        failures.append("reports differ between frontends")
    if not equivalence["parse_errors_identical"]:
        failures.append("parse-error text differs between frontends")
    if warm["warm_graded"] != 0:
        failures.append(
            f"warm process graded {warm['warm_graded']} submissions"
        )
    if warm["warm_cache_hits"] != warm["submissions"]:
        failures.append("warm process missed the cache")
    if warm["warm_match_cache_misses"] != 0 or not warm["warm_matcher_idle"]:
        failures.append("warm process invoked the matcher")
    if not warm["reports_identical"]:
        failures.append("warm-process reports differ from the cold run's")
    return not failures, failures


# -- pytest entry points -------------------------------------------------

def test_frontend_cohort_speedup_and_equivalence():
    cohorts = build_cohorts(synthetic_per_assignment=2)
    stats = run_frontend_cohort(rounds=2, verbose=False, cohorts=cohorts)
    assert stats["graphs_identical"], (
        "optimized frontend builds different EPDGs"
    )
    assert stats["speedup"] >= REQUIRED_FRONTEND_SPEEDUP, (
        f"speedup {stats['speedup']:.2f}x < {REQUIRED_FRONTEND_SPEEDUP}x"
    )


def test_reports_byte_identical():
    cohorts = build_cohorts(synthetic_per_assignment=2)
    stats = run_report_equivalence(verbose=False, cohorts=cohorts)
    assert stats["byte_identical"]
    assert stats["parse_errors_identical"]


def test_warm_store_second_process_grades_nothing():
    stats = run_warm_store(synthetic=8, verbose=False)
    assert stats["warm_graded"] == 0
    assert stats["warm_cache_hits"] == stats["submissions"]
    assert stats["warm_match_cache_misses"] == 0
    assert stats["warm_matcher_idle"]
    assert stats["reports_identical"]


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing rounds (CI smoke test)")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"report path (default {DEFAULT_JSON.name})")
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    ok, failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
