"""Campaign benchmark: million-submission streaming, bounded memory.

The paper's setting is a MOOC: cohorts of hundreds of thousands of
duplicate-heavy submissions, graded offline.  This benchmark drives the
streaming campaign runner (``repro grade-campaign``) end-to-end at that
scale and gates the properties that make it usable there:

* **Bounded memory** — a full synthetic campaign (10^6 submissions in
  the default run) streams through the shard pipeline in a child
  process whose peak RSS must stay under :data:`RSS_LIMIT_GB`.
* **Checkpoint → kill → resume** — a campaign SIGKILL'd mid-run resumes
  from its journal and finishes; a rerun over the completed journal
  grades *zero* submissions.
* **Backend equivalence** — the shard output files are byte-identical
  whether the store backend is sharded JSON or SQLite.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign.py -q

Writes ``BENCH_campaign.json`` next to the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.core.campaign import CampaignRunner, synthetic_stream
from repro.kb import get_assignment

#: Peak-RSS ceiling for the streaming campaign child process.
RSS_LIMIT_GB = 2.0
#: Cohort size for the full (checked-in) run.
FULL_COHORT = 1_000_000
#: Cohort size for the CI smoke run.
QUICK_COHORT = 10_000

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Child wrapper: run the CLI, then report the child's own peak RSS on
#: stderr (``ru_maxrss`` is KiB on Linux) so the parent never confuses
#: it with other children's high-water marks.
_WRAPPER = """\
import resource, sys
sys.path.insert(0, {src!r})
from repro.cli import main
code = main({argv!r})
print("BENCH_RSS_KB", resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
      file=sys.stderr)
sys.exit(code)
"""


def _campaign_argv(cache_dir, cohort, *, shard_size, campaign_id,
                   backend="sqlite", extra=()):
    return [
        "grade-campaign", "assignment1",
        "--synthetic", str(cohort),
        "--cache-dir", str(cache_dir),
        "--store-backend", backend,
        "--campaign-id", campaign_id,
        "--shard-size", str(shard_size),
        *extra,
    ]


def _run_cli(argv, json_out=None):
    """Run one CLI invocation in a child; returns (code, rss_kb, payload)."""
    argv = list(argv)
    if json_out is not None:
        argv += ["--json", str(json_out)]
    proc = subprocess.run(
        [sys.executable, "-c", _WRAPPER.format(src=_SRC, argv=argv)],
        capture_output=True, text=True,
    )
    rss_kb = 0
    for line in proc.stderr.splitlines():
        if line.startswith("BENCH_RSS_KB"):
            rss_kb = int(line.split()[1])
    payload = None
    if json_out is not None and Path(json_out).exists():
        payload = json.loads(Path(json_out).read_text())
    return proc.returncode, rss_kb, payload


# -- streaming scale + memory bound --------------------------------------


def run_streaming(cohort=FULL_COHORT, shard_size=2000, verbose=True):
    """One full synthetic campaign in a child; gates peak RSS."""
    with tempfile.TemporaryDirectory() as tmp:
        started = time.perf_counter()
        code, rss_kb, payload = _run_cli(
            _campaign_argv(Path(tmp) / "cache", cohort,
                           shard_size=shard_size, campaign_id="stream"),
            json_out=Path(tmp) / "result.json",
        )
        wall = time.perf_counter() - started
    assert code == 0, f"campaign exited {code}"
    assert payload is not None and payload["completed"]
    assert payload["submissions"] == cohort
    rss_gb = rss_kb / (1024 * 1024)
    row = {
        "cohort_size": cohort,
        "shard_size": shard_size,
        "shards": payload["shards_total"],
        "wall_seconds": round(wall, 3),
        "throughput_per_second": round(cohort / payload["wall_seconds"], 1),
        "graded": payload["stats"]["graded"],
        "cache_hits": payload["stats"]["cache_hits"],
        "peak_rss_gb": round(rss_gb, 3),
        "rss_limit_gb": RSS_LIMIT_GB,
        "rss_within_limit": rss_gb < RSS_LIMIT_GB,
    }
    if verbose:
        print(f"streaming: {cohort} submissions in {row['shards']} shards, "
              f"{row['wall_seconds']}s "
              f"({row['throughput_per_second']}/s), peak RSS "
              f"{rss_gb:.2f} GB (limit {RSS_LIMIT_GB} GB)")
    return row


# -- checkpoint -> kill -> resume ----------------------------------------


def run_kill_resume(cohort=20_000, shard_size=1000, verbose=True):
    """SIGKILL a campaign mid-run; resume must finish with no rework."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "cache"
        argv = _campaign_argv(cache, cohort, shard_size=shard_size,
                              campaign_id="drill")
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRAPPER.format(src=_SRC, argv=argv)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # wait for the first checkpoint to land, then kill -9
        from repro.core.storage import ResultStore

        assignment = get_assignment("assignment1")
        store = ResultStore(cache, assignment, backend="sqlite")
        deadline = time.monotonic() + 120
        checkpoints_at_kill = 0
        while time.monotonic() < deadline and proc.poll() is None:
            n = 0
            while store.get_campaign(f"drill/shard-{n:08d}") is not None:
                n += 1
            if n >= 1:
                checkpoints_at_kill = n
                break
            time.sleep(0.005)
        killed = proc.poll() is None
        if killed:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)

        code, _, resumed = _run_cli(argv, json_out=Path(tmp) / "r1.json")
        assert code == 0 and resumed["completed"]
        code, _, rerun = _run_cli(argv, json_out=Path(tmp) / "r2.json")
        assert code == 0 and rerun["completed"]
    row = {
        "cohort_size": cohort,
        "killed_mid_run": killed,
        "checkpoints_at_kill": checkpoints_at_kill,
        "resume_completed": resumed["completed"],
        "resume_shards_resumed": resumed["shards_resumed"],
        "resume_shards_graded": resumed["shards_graded"],
        "rerun_graded_submissions": rerun["run_stats"]["graded"],
        "rerun_shards_resumed": rerun["shards_resumed"],
        "zero_regrades_on_rerun": rerun["run_stats"]["graded"] == 0,
    }
    # shards checkpointed before the kill were never regraded
    assert resumed["shards_resumed"] >= checkpoints_at_kill
    assert rerun["run_stats"]["graded"] == 0
    assert rerun["shards_resumed"] == rerun["shards_total"]
    if verbose:
        print(f"kill/resume: killed={killed} with "
              f"{checkpoints_at_kill} checkpoints; resume graded "
              f"{resumed['shards_graded']} shards, resumed "
              f"{resumed['shards_resumed']}; rerun regraded "
              f"{rerun['run_stats']['graded']} submissions")
    return row


# -- backend byte-identity ----------------------------------------------


def run_backend_identity(cohort=2000, shard_size=500, verbose=True):
    """Shard outputs must be byte-identical across store backends."""
    assignment = get_assignment("assignment1")
    submissions = list(synthetic_stream(assignment, cohort, seed=5))
    outputs = {}
    with tempfile.TemporaryDirectory() as tmp:
        for backend in ("json", "sqlite"):
            out = Path(tmp) / f"out-{backend}"
            runner = CampaignRunner(
                assignment, Path(tmp) / f"cache-{backend}",
                shard_size=shard_size, store_backend=backend,
            )
            runner.run(submissions, campaign_id="ident", output_dir=out)
            outputs[backend] = b"".join(
                path.read_bytes() for path in sorted(out.glob("*.jsonl"))
            )
    identical = outputs["json"] == outputs["sqlite"]
    assert identical and outputs["json"]
    row = {
        "cohort_size": cohort,
        "output_bytes": len(outputs["json"]),
        "byte_identical": identical,
    }
    if verbose:
        print(f"backend identity: {cohort} submissions, "
              f"{row['output_bytes']} output bytes, "
              f"identical={identical}")
    return row


# -- pytest entry points -------------------------------------------------


def test_kill_resume_zero_regrades():
    row = run_kill_resume(cohort=2000, shard_size=200, verbose=False)
    assert row["resume_completed"]
    assert row["zero_regrades_on_rerun"]


def test_outputs_byte_identical_between_backends():
    row = run_backend_identity(cohort=400, shard_size=100, verbose=False)
    assert row["byte_identical"]


# -- standalone entry point ----------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohort (CI smoke test)")
    parser.add_argument("--cohort", type=int, default=None,
                        help=f"streaming cohort size (default {FULL_COHORT}, "
                             f"or {QUICK_COHORT} with --quick)")
    args = parser.parse_args(argv)
    quick = args.quick
    cohort = args.cohort or (QUICK_COHORT if quick else FULL_COHORT)

    streaming = run_streaming(
        cohort=cohort, shard_size=500 if quick else 2000
    )
    kill_resume = run_kill_resume(
        cohort=10_000 if quick else 20_000,
        shard_size=500 if quick else 1000,
    )
    identity = run_backend_identity(cohort=500 if quick else 2000,
                                    shard_size=100 if quick else 500)

    report = {
        "benchmark": "campaign",
        "mode": "quick" if quick else "full",
        "streaming": streaming,
        "kill_resume": kill_resume,
        "backend_identity": identity,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if not streaming["rss_within_limit"]:
        print(f"FAIL: peak RSS {streaming['peak_rss_gb']} GB >= "
              f"{RSS_LIMIT_GB} GB")
        return 1
    if not kill_resume["zero_regrades_on_rerun"]:
        print("FAIL: rerun over a completed journal regraded submissions")
        return 1
    if not identity["byte_identical"]:
        print("FAIL: shard outputs differ between store backends")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
