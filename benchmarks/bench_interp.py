"""Execution engine benchmark: closure-compiled interpreter vs. the
seed tree-walker.

The workload models what actually dominates campaign and repair wall
time: running a functional-test suite again and again over a
*duplicate-heavy* cohort (real MOOC cohorts repeat identical sources;
the repair engine re-verifies every candidate against the same suite).
For each of the twelve assignments we sample correct and seeded-defect
variants from the synthetic error model, duplicate each one several
times, and run the full test ladder repeatedly through

* the **reference** engine — the pre-rewrite tree-walking interpreter,
  vendored verbatim in ``benchmarks/_interp_reference.py``; and
* the **compiled** engine — ``repro.interp`` after the closure
  compilation pass, with the source-keyed compiled-program cache on.

Both engines see identical parsed units (parsing is frontend-cached in
the production pipeline, so it is hoisted out of the timed region for
both sides equally).  The gate requires:

* byte-identical outcomes — stdout, return value, step count, and
  error text per test, with the same skip-after-budget-exhaustion
  semantics as :func:`repro.testing.functional.run_tests`; and
* an end-to-end speedup of at least 3x on the full workload
  (a lower bar under ``--quick``, which runs a smaller cohort on noisy
  CI machines and does not rewrite the checked-in results).

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_interp.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_interp.py -q

Full-run results land in ``BENCH_interp.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path

from repro.errors import BudgetExceededError, JavaRuntimeError, ReproError
from repro.interp import Interpreter, clear_program_cache, program_cache_stats
from repro.interp.values import JavaArray, JavaChar
from repro.java import parse_submission
from repro.kb import all_assignment_names, get_assignment
from repro.synth import sample_submissions
from repro.testing.functional import _materialize_argument

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE.parent / "BENCH_interp.json"

_spec = importlib.util.spec_from_file_location(
    "_interp_reference", _HERE / "_interp_reference.py"
)
assert _spec is not None and _spec.loader is not None
reference = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = reference
_spec.loader.exec_module(reference)

#: Step budget per test run.  Small enough that the seeded defects which
#: loop forever stay affordable on the (slow) reference engine, large
#: enough that every terminating variant finishes untouched.
STEP_BUDGET = 20_000

#: Distinct variants sampled per assignment / duplicates of each /
#: times the whole suite is re-run over the cohort.
FULL_SHAPE = (8, 3, 5)
QUICK_SHAPE = (3, 2, 2)

#: Required end-to-end speedup.  The full run gates the tentpole's 3x;
#: the CI smoke run tolerates shared-runner noise on a smaller cohort.
FULL_SPEEDUP = 3.0
QUICK_SPEEDUP = 1.5


def _canonical(value):
    """Return values compared structurally (arrays by contents)."""
    if isinstance(value, JavaArray):
        return ("array", value.element_type,
                tuple(_canonical(v) for v in value.elements))
    if isinstance(value, JavaChar):
        return ("char", value.char)
    return value


def _run_suite(make_interpreter, unit, tests):
    """One pass of the test ladder with ``run_tests`` skip semantics.

    Returns the per-test outcome tuples the identity gate compares:
    ``("ok", stdout, return, steps)`` / ``("error", message)`` /
    ``("skipped", message)``.
    """
    outcomes = []
    timed_out = False
    for test in tests:
        if timed_out:
            outcomes.append(
                ("skipped", "skipped: earlier test exceeded the step budget")
            )
            continue
        arguments = [_materialize_argument(a) for a in test.arguments]
        interpreter = make_interpreter(unit, test)
        try:
            execution = interpreter.run(test.method, arguments)
        except BudgetExceededError as error:
            timed_out = True
            outcomes.append(("error", str(error)))
            continue
        except (JavaRuntimeError, ReproError) as error:
            outcomes.append(("error", str(error)))
            continue
        outcomes.append((
            "ok",
            execution.stdout,
            _canonical(execution.return_value),
            execution.steps,
        ))
    return outcomes


def build_cohort(variants: int, duplicates: int, seed: int = 17):
    """``[(assignment_name, source)]`` over all twelve assignments.

    Each sampled variant (the reference solution plus a seeded mix of
    correct and defective options) appears ``duplicates`` times — the
    duplicate-heavy shape that lets the compiled-program cache pay off.
    """
    cohort = []
    for name in all_assignment_names():
        space = get_assignment(name).space()
        for submission in sample_submissions(space, variants, seed=seed):
            for _ in range(duplicates):
                cohort.append((name, submission.source))
    return cohort


def run_comparison(variants, duplicates, ladder, verbose=True):
    """Time both engines over the cohort; returns the result dict."""
    cohort = build_cohort(variants, duplicates)
    tests_by_name = {
        name: get_assignment(name).tests for name in all_assignment_names()
    }
    # parsing is frontend-cached in production: hoist it for both sides
    units = {}
    for name, source in cohort:
        if source not in units:
            units[source] = parse_submission(source)

    started = time.perf_counter()
    reference_outcomes = []
    for name, source in cohort * ladder:
        reference_outcomes.append(_run_suite(
            lambda unit, t: reference.Interpreter(
                unit, files=t.files_dict(), stdin=t.stdin,
                step_budget=STEP_BUDGET,
            ),
            units[source], tests_by_name[name],
        ))
    reference_wall = time.perf_counter() - started

    # fresh parses for the compiled side: the program cache must earn
    # its hits through the source key, not through shared unit memos
    units = {}
    for name, source in cohort:
        if source not in units:
            units[source] = parse_submission(source)
    clear_program_cache()
    started = time.perf_counter()
    compiled_outcomes = []
    for name, source in cohort * ladder:
        compiled_outcomes.append(_run_suite(
            lambda unit, t, key=source: Interpreter(
                unit, files=t.files_dict(), stdin=t.stdin,
                step_budget=STEP_BUDGET, cache_key=key,
            ),
            units[source], tests_by_name[name],
        ))
    compiled_wall = time.perf_counter() - started

    identical = reference_outcomes == compiled_outcomes
    divergences = sum(
        1 for a, b in zip(reference_outcomes, compiled_outcomes) if a != b
    )
    cache = program_cache_stats()
    results = {
        "assignments": len(all_assignment_names()),
        "cohort_size": len(cohort),
        "unique_sources": len(units),
        "ladder": ladder,
        "suite_runs": len(cohort) * ladder,
        "step_budget": STEP_BUDGET,
        "reference_wall_seconds": round(reference_wall, 3),
        "compiled_wall_seconds": round(compiled_wall, 3),
        "speedup": round(reference_wall / compiled_wall, 2)
        if compiled_wall else 0.0,
        "identical_outcomes": identical,
        "divergent_suites": divergences,
        "compile_cache": {
            "hits": cache["hits"], "misses": cache["misses"],
        },
    }
    if verbose:
        print(f"cohort: {results['cohort_size']} submissions "
              f"({results['unique_sources']} unique) x ladder {ladder} "
              f"over {results['assignments']} assignments")
        print(f"reference: {reference_wall:8.3f}s")
        print(f"compiled:  {compiled_wall:8.3f}s  "
              f"(cache {cache['hits']} hits / {cache['misses']} misses)")
        print(f"speedup:   {results['speedup']:.2f}x   identical outcomes: "
              f"{identical}")
    return results


def gate(results, minimum_speedup) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    failures = []
    if not results["identical_outcomes"]:
        failures.append(
            f"{results['divergent_suites']} suite runs diverged from the "
            "reference tree-walker"
        )
    if results["speedup"] < minimum_speedup:
        failures.append(
            f"speedup {results['speedup']:.2f}x < required "
            f"{minimum_speedup:.1f}x"
        )
    return failures


# -- pytest entry points -------------------------------------------------

def test_compiled_engine_is_byte_identical():
    variants, duplicates, ladder = QUICK_SHAPE
    results = run_comparison(variants, duplicates, ladder, verbose=False)
    assert results["identical_outcomes"], (
        f"{results['divergent_suites']} divergent suites"
    )


def test_compiled_engine_reuses_cached_programs():
    variants, duplicates, ladder = QUICK_SHAPE
    results = run_comparison(variants, duplicates, ladder, verbose=False)
    cache = results["compile_cache"]
    assert cache["misses"] == results["unique_sources"]
    assert cache["hits"] > cache["misses"]


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohort (CI smoke test); does not "
                             "rewrite BENCH_interp.json")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_interp.json")
    args = parser.parse_args(argv)
    variants, duplicates, ladder = QUICK_SHAPE if args.quick else FULL_SHAPE
    minimum = QUICK_SPEEDUP if args.quick else FULL_SPEEDUP
    results = run_comparison(variants, duplicates, ladder)
    failures = gate(results, minimum)
    payload = {
        "benchmark": "interp",
        "mode": "quick" if args.quick else "full",
        "gate": f">={minimum:.1f}x speedup with byte-identical outcomes",
        "passed": not failures,
        **results,
    }
    if not args.quick and not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
