"""Vendored reference interpreter: the pre-compilation tree-walker.

This is a frozen copy of ``repro.interp.interpreter`` as it stood before
the closure-compilation rewrite.  The differential tests
(``tests/interp/test_differential.py``) and ``benchmarks/bench_interp.py``
execute submissions through BOTH engines and require byte-identical
outcomes, stdout, traces, error text, and step counts, so this file is
the semantic ground truth for the compiled runtime.

Do not "fix" or optimize it: its value is that it does not change.  It
imports the live ``values``/``stdlib``/``tracing``/``ast`` modules — the
compiled engine shares those layers, so freezing them here would hide
nothing; what is frozen is the evaluation strategy itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, JavaRuntimeError
from repro.interp import stdlib
from repro.interp.tracing import Tracer
from repro.interp.values import (
    JavaArray,
    JavaChar,
    java_div,
    java_rem,
    java_str,
    numeric_value,
    wrap_int,
)
from repro.java import ast

DEFAULT_STEP_BUDGET = 1_000_000
# Each Java-level call consumes several Python frames; 100 keeps us well
# inside CPython's default recursion limit while being far deeper than
# any intro-course program legitimately recurses.
_MAX_CALL_DEPTH = 100


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _ClassRef:
    """Sentinel for a static class reference (``Math``, ``Integer``...)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class _SystemOut:
    """Sentinel for the ``System.out`` stream object."""


_SYSTEM_OUT = _SystemOut()
_STATIC_CLASSES = frozenset({"Math", "Integer", "String", "Character", "System"})


class _Environment:
    """A chain of lexical scopes for one method frame."""

    def __init__(self):
        self._scopes: list[dict[str, object]] = [{}]

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        self._scopes.pop()

    def declare(self, name: str, value) -> None:
        self._scopes[-1][name] = value

    def lookup(self, name: str):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise JavaRuntimeError(f"undefined variable {name}")

    def assign(self, name: str, value) -> None:
        for scope in reversed(self._scopes):
            if name in scope:
                scope[name] = value
                return
        raise JavaRuntimeError(f"undefined variable {name}")

    def contains(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    def flat(self) -> dict[str, object]:
        merged: dict[str, object] = {}
        for scope in self._scopes:
            merged.update(scope)
        return merged


@dataclass
class ExecutionResult:
    """Outcome of running one method: stdout, return value, step count."""

    stdout: str
    return_value: object
    steps: int
    tracer: Tracer | None = None


class Interpreter:
    """Executes methods of a parsed submission.

    Parameters
    ----------
    unit:
        The parsed submission whose methods may call each other.
    files:
        Virtual filesystem served to ``new Scanner(new File(name))``.
    stdin:
        Text served to ``new Scanner(System.in)``.
    step_budget:
        Maximum statements/iterations before the run is declared
        non-terminating.
    tracer:
        Optional :class:`Tracer` receiving assignment/output events.
    """

    def __init__(
        self,
        unit: ast.CompilationUnit,
        files: stdlib.VirtualFileSystem | dict[str, str] | None = None,
        stdin: str = "",
        step_budget: int = DEFAULT_STEP_BUDGET,
        tracer: Tracer | None = None,
    ):
        self._unit = unit
        if isinstance(files, dict):
            files = stdlib.VirtualFileSystem(files)
        self._files = files or stdlib.VirtualFileSystem()
        self._stdin = stdin
        self._budget = step_budget
        self._steps = 0
        self._output: list[str] = []
        self._tracer = tracer
        self._call_depth = 0
        self._methods: dict[tuple[str, int], ast.MethodDecl] = {}
        for method in unit.methods():
            self._methods[(method.name, method.arity)] = method
        self._current_method = ""

    # ------------------------------------------------------------------
    # public API

    def run(self, method_name: str, arguments: list) -> ExecutionResult:
        """Run ``method_name`` with ``arguments`` and collect the result."""
        self._steps = 0
        self._output = []
        try:
            value = self._invoke(method_name, list(arguments))
        except RecursionError:
            # belt-and-braces: the Java-level depth cap should fire first
            raise BudgetExceededError(
                "StackOverflowError: interpreter recursion limit"
            ) from None
        return ExecutionResult(
            stdout="".join(self._output),
            return_value=value,
            steps=self._steps,
            tracer=self._tracer,
        )

    @property
    def stdout(self) -> str:
        return "".join(self._output)

    # ------------------------------------------------------------------
    # method invocation

    def _invoke(self, name: str, arguments: list):
        key = (name, len(arguments))
        if key not in self._methods:
            raise JavaRuntimeError(
                f"no method {name}/{len(arguments)} in submission"
            )
        if self._call_depth >= _MAX_CALL_DEPTH:
            raise BudgetExceededError(
                f"StackOverflowError: call depth exceeded invoking {name}"
            )
        method = self._methods[key]
        env = _Environment()
        for parameter, argument in zip(method.parameters, arguments):
            env.declare(parameter.name, argument)
            self._trace_assign(parameter.name, argument)
        previous_method = self._current_method
        self._current_method = method.name
        self._call_depth += 1
        try:
            self._exec_block(method.body, env)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._call_depth -= 1
            self._current_method = previous_method
        return None

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._budget:
            raise BudgetExceededError(
                f"step budget of {self._budget} exceeded (non-terminating?)"
            )

    def _trace_assign(self, name: str, value) -> None:
        if self._tracer is not None:
            self._tracer.on_assign(self._current_method, name, value)

    def _emit(self, text: str) -> None:
        self._output.append(text)
        if self._tracer is not None:
            self._tracer.on_output(self._current_method, text)

    # ------------------------------------------------------------------
    # statements

    def _exec_block(self, block: ast.Block, env: _Environment) -> None:
        env.push()
        try:
            for statement in block.statements:
                self._exec(statement, env)
        finally:
            env.pop()

    def _exec(self, node: ast.Statement, env: _Environment) -> None:
        self._tick()
        if isinstance(node, ast.Block):
            self._exec_block(node, env)
        elif isinstance(node, ast.LocalVarDecl):
            self._exec_decl(node, env)
        elif isinstance(node, ast.ExpressionStatement):
            self._eval(node.expression, env)
        elif isinstance(node, ast.If):
            if self._truth(self._eval(node.condition, env)):
                self._exec(node.then_branch, env)
            elif node.else_branch is not None:
                self._exec(node.else_branch, env)
        elif isinstance(node, ast.While):
            while self._truth(self._eval(node.condition, env)):
                self._tick()
                try:
                    self._exec(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(node, ast.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec(node.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truth(self._eval(node.condition, env)):
                    break
        elif isinstance(node, ast.For):
            env.push()
            try:
                for init in node.init:
                    self._exec(init, env)
                while node.condition is None or self._truth(
                    self._eval(node.condition, env)
                ):
                    self._tick()
                    try:
                        self._exec(node.body, env)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        pass
                    for update in node.update:
                        self._eval(update, env)
            finally:
                env.pop()
        elif isinstance(node, ast.ForEach):
            iterable = self._eval(node.iterable, env)
            if isinstance(iterable, JavaArray):
                elements = list(iterable.elements)
            elif isinstance(iterable, str):
                elements = [JavaChar(ch) for ch in iterable]
            else:
                raise JavaRuntimeError(
                    f"cannot iterate over {java_str(iterable)}"
                )
            env.push()
            try:
                env.declare(node.name, None)
                for element in elements:
                    self._tick()
                    env.assign(node.name, element)
                    self._trace_assign(node.name, element)
                    try:
                        self._exec(node.body, env)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        continue
            finally:
                env.pop()
        elif isinstance(node, ast.Break):
            raise _BreakSignal()
        elif isinstance(node, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(node, ast.Return):
            value = None if node.value is None else self._eval(node.value, env)
            raise _ReturnSignal(value)
        elif isinstance(node, ast.Switch):
            self._exec_switch(node, env)
        elif isinstance(node, ast.EmptyStatement):
            pass
        else:
            raise JavaRuntimeError(
                f"cannot execute statement {type(node).__name__}"
            )

    def _exec_decl(self, node: ast.LocalVarDecl, env: _Environment) -> None:
        for declarator in node.declarators:
            if declarator.initializer is None:
                dimensions = node.type.dimensions + declarator.extra_dimensions
                value = None if dimensions else _default_value(node.type.name)
            elif isinstance(declarator.initializer, ast.ArrayInitializer):
                value = self._array_from_initializer(
                    declarator.initializer, node.type.name, env
                )
            else:
                value = self._coerce_decl(
                    self._eval(declarator.initializer, env),
                    node.type,
                    declarator.extra_dimensions,
                )
            env.declare(declarator.name, value)
            self._trace_assign(declarator.name, value)

    def _coerce_decl(self, value, decl_type: ast.Type, extra_dims: int):
        if decl_type.dimensions + extra_dims > 0:
            return value
        if decl_type.name in ("double", "float") and isinstance(value, int) \
                and not isinstance(value, bool):
            return float(value)
        if decl_type.name in ("int", "short", "byte") and isinstance(value, JavaChar):
            return value.code
        return value

    def _exec_switch(self, node: ast.Switch, env: _Environment) -> None:
        selector = self._eval(node.selector, env)
        matched = False
        try:
            for case in node.cases:
                if not matched:
                    for label in case.labels:
                        if label is None:
                            matched = True
                            break
                        label_value = self._eval(label, env)
                        if self._equals(selector, label_value):
                            matched = True
                            break
                if matched:
                    for statement in case.statements:
                        self._exec(statement, env)
        except _BreakSignal:
            pass

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, node: ast.Expression, env: _Environment):
        if isinstance(node, ast.Literal):
            if node.kind == "char":
                return JavaChar(str(node.value))
            return node.value
        if isinstance(node, ast.Name):
            if env.contains(node.identifier):
                return env.lookup(node.identifier)
            if node.identifier in _STATIC_CLASSES:
                return _ClassRef(node.identifier)
            raise JavaRuntimeError(f"undefined variable {node.identifier}")
        if isinstance(node, ast.FieldAccess):
            return self._eval_field(node, env)
        if isinstance(node, ast.ArrayAccess):
            array = self._eval(node.array, env)
            index = self._int_index(self._eval(node.index, env))
            if not isinstance(array, JavaArray):
                raise JavaRuntimeError("NullPointerException: not an array")
            return array.get(index)
        if isinstance(node, ast.MethodCall):
            return self._eval_call(node, env)
        if isinstance(node, ast.ObjectCreation):
            return self._eval_creation(node, env)
        if isinstance(node, ast.ArrayCreation):
            return self._eval_array_creation(node, env)
        if isinstance(node, ast.ArrayInitializer):
            return self._array_from_initializer(node, "int", env)
        if isinstance(node, ast.Unary):
            return self._eval_unary(node, env)
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, env)
        if isinstance(node, ast.Ternary):
            if self._truth(self._eval(node.condition, env)):
                return self._eval(node.if_true, env)
            return self._eval(node.if_false, env)
        if isinstance(node, ast.Assignment):
            return self._eval_assignment(node, env)
        if isinstance(node, ast.Cast):
            return self._eval_cast(node, env)
        raise JavaRuntimeError(f"cannot evaluate {type(node).__name__}")

    def _eval_field(self, node: ast.FieldAccess, env: _Environment):
        if isinstance(node.target, ast.Name):
            base = node.target.identifier
            if base == "System" and node.name == "out":
                return _SYSTEM_OUT
            if base == "System" and node.name == "in":
                return "<stdin>"
            if base == "Integer" and node.name == "MAX_VALUE":
                return 2 ** 31 - 1
            if base == "Integer" and node.name == "MIN_VALUE":
                return -(2 ** 31)
            if base == "Math" and node.name == "PI":
                return math.pi
            if base == "Math" and node.name == "E":
                return math.e
        target = self._eval(node.target, env)
        if isinstance(target, JavaArray) and node.name == "length":
            return target.length
        if isinstance(target, str) and node.name == "length":
            # students sometimes write s.length on strings; real Java would
            # reject it, we surface a runtime error with a clear message
            raise JavaRuntimeError("String has no field length (use length())")
        raise JavaRuntimeError(
            f"unknown field {node.name} on {java_str(target)}"
        )

    def _eval_call(self, node: ast.MethodCall, env: _Environment):
        arguments = [self._eval(argument, env) for argument in node.arguments]
        if node.target is None:
            return self._invoke(node.name, arguments)
        target = self._eval(node.target, env)
        if isinstance(target, _SystemOut):
            return self._print_call(node.name, arguments)
        if isinstance(target, stdlib.ScannerObject):
            return stdlib.call_scanner(target, node.name, arguments)
        if isinstance(target, stdlib.StringBuilderObject):
            return target.call(node.name, arguments)
        if isinstance(target, str):
            return stdlib.call_string(target, node.name, arguments)
        if isinstance(target, _ClassRef):
            if target.name == "Math":
                return stdlib.call_math(node.name, arguments)
            if target.name == "Integer":
                return stdlib.call_integer(node.name, arguments)
            if target.name == "String":
                return stdlib.call_string_static(node.name, arguments)
            if target.name == "Character":
                return stdlib.call_character(node.name, arguments)
        raise JavaRuntimeError(
            f"cannot call {node.name} on {java_str(target)}"
        )

    def _print_call(self, name: str, arguments: list):
        if name == "println":
            text = java_str(arguments[0]) if arguments else ""
            self._emit(text + "\n")
            return None
        if name == "print":
            self._emit(java_str(arguments[0]))
            return None
        if name == "printf":
            template = arguments[0]
            values = [
                v.char if isinstance(v, JavaChar) else v for v in arguments[1:]
            ]
            try:
                self._emit(template % tuple(values))
            except (TypeError, ValueError) as error:
                raise JavaRuntimeError(f"IllegalFormatException: {error}")
            return None
        raise JavaRuntimeError(f"System.out has no method {name}")

    def _eval_creation(self, node: ast.ObjectCreation, env: _Environment):
        arguments = [self._eval(argument, env) for argument in node.arguments]
        name = node.type.name
        if name in ("Scanner", "java.util.Scanner"):
            source = arguments[0] if arguments else "<stdin>"
            if isinstance(source, stdlib.FileObject):
                return stdlib.ScannerObject(self._files.read(source.name))
            if source == "<stdin>":
                return stdlib.ScannerObject(self._stdin)
            if isinstance(source, str):
                return stdlib.ScannerObject(source)
            raise JavaRuntimeError("unsupported Scanner source")
        if name in ("File", "java.io.File"):
            return stdlib.FileObject(str(arguments[0]))
        if name == "String":
            return str(arguments[0]) if arguments else ""
        if name in ("StringBuilder", "StringBuffer"):
            initial = ""
            if arguments and isinstance(arguments[0], str):
                initial = arguments[0]
            return stdlib.StringBuilderObject(initial)
        raise JavaRuntimeError(f"cannot instantiate {name}")

    def _eval_array_creation(self, node: ast.ArrayCreation, env: _Environment):
        if node.initializer is not None:
            return self._array_from_initializer(
                node.initializer, node.type.name, env
            )
        if not node.dimensions:
            raise JavaRuntimeError("array creation without dimensions")
        lengths = [
            self._int_index(self._eval(d, env)) for d in node.dimensions
        ]
        return self._make_array(node.type.name, lengths, node.type.dimensions)

    def _make_array(self, element: str, lengths: list[int], dims: int):
        if not lengths:
            return None
        if len(lengths) == 1:
            if dims > 1:
                return JavaArray("array", [None] * lengths[0])
            return JavaArray.of_length(element, lengths[0])
        outer = JavaArray(
            "array",
            [
                self._make_array(element, lengths[1:], dims - 1)
                for _ in range(lengths[0])
            ],
        )
        return outer

    def _array_from_initializer(
        self, node: ast.ArrayInitializer, element: str, env: _Environment
    ) -> JavaArray:
        values = []
        for item in node.elements:
            if isinstance(item, ast.ArrayInitializer):
                values.append(self._array_from_initializer(item, element, env))
            else:
                value = self._eval(item, env)
                if element in ("double", "float") and isinstance(value, int) \
                        and not isinstance(value, bool):
                    value = float(value)
                values.append(value)
        return JavaArray(element, values)

    def _eval_unary(self, node: ast.Unary, env: _Environment):
        if node.operator in ("++", "--"):
            old = self._eval(node.operand, env)
            number = numeric_value(old)
            if number is None:
                raise JavaRuntimeError(f"cannot {node.operator} {java_str(old)}")
            delta = 1 if node.operator == "++" else -1
            new = number + delta
            if isinstance(number, int):
                new = wrap_int(new)
            self._store(node.operand, new, env)
            return new if node.prefix else old
        value = self._eval(node.operand, env)
        if node.operator == "!":
            return not self._truth(value)
        number = numeric_value(value)
        if number is None:
            raise JavaRuntimeError(
                f"cannot apply {node.operator} to {java_str(value)}"
            )
        if node.operator == "-":
            return wrap_int(-number) if isinstance(number, int) else -number
        if node.operator == "+":
            return number
        if node.operator == "~":
            if not isinstance(number, int):
                raise JavaRuntimeError("~ requires an integer")
            return wrap_int(~number)
        raise JavaRuntimeError(f"unknown unary operator {node.operator}")

    def _eval_binary(self, node: ast.Binary, env: _Environment):
        operator = node.operator
        if operator == "&&":
            return self._truth(self._eval(node.left, env)) and self._truth(
                self._eval(node.right, env)
            )
        if operator == "||":
            return self._truth(self._eval(node.left, env)) or self._truth(
                self._eval(node.right, env)
            )
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return self._binary_value(operator, left, right)

    def _binary_value(self, operator: str, left, right):
        if operator == "+" and (isinstance(left, str) or isinstance(right, str)):
            return java_str(left) + java_str(right)
        if operator == "==":
            return self._equals(left, right)
        if operator == "!=":
            return not self._equals(left, right)
        if operator in ("&", "|", "^"):
            if isinstance(left, bool) and isinstance(right, bool):
                if operator == "&":
                    return left and right
                if operator == "|":
                    return left or right
                return left != right
            left_number, right_number = self._two_ints(operator, left, right)
            if operator == "&":
                return wrap_int(left_number & right_number)
            if operator == "|":
                return wrap_int(left_number | right_number)
            return wrap_int(left_number ^ right_number)
        if operator in ("<<", ">>", ">>>"):
            left_number, right_number = self._two_ints(operator, left, right)
            shift = right_number & 31
            if operator == "<<":
                return wrap_int(left_number << shift)
            if operator == ">>":
                return wrap_int(left_number >> shift)
            return wrap_int((left_number & 0xFFFFFFFF) >> shift)
        left_number = numeric_value(left)
        right_number = numeric_value(right)
        if left_number is None or right_number is None:
            raise JavaRuntimeError(
                f"cannot apply {operator} to "
                f"{java_str(left)} and {java_str(right)}"
            )
        if operator == "<":
            return left_number < right_number
        if operator == "<=":
            return left_number <= right_number
        if operator == ">":
            return left_number > right_number
        if operator == ">=":
            return left_number >= right_number
        both_int = isinstance(left_number, int) and isinstance(right_number, int)
        if operator == "+":
            result = left_number + right_number
        elif operator == "-":
            result = left_number - right_number
        elif operator == "*":
            result = left_number * right_number
        elif operator == "/":
            if both_int:
                return java_div(left_number, right_number)
            if right_number == 0:
                if left_number == 0:
                    return float("nan")
                return math.copysign(float("inf"), left_number)
            return left_number / right_number
        elif operator == "%":
            if both_int:
                return java_rem(left_number, right_number)
            if right_number == 0:
                return float("nan")
            return math.fmod(left_number, right_number)
        else:
            raise JavaRuntimeError(f"unknown operator {operator}")
        return wrap_int(result) if both_int else float(result)

    def _two_ints(self, operator: str, left, right) -> tuple[int, int]:
        left_number = numeric_value(left)
        right_number = numeric_value(right)
        if not isinstance(left_number, int) or not isinstance(right_number, int):
            raise JavaRuntimeError(f"{operator} requires integers")
        return left_number, right_number

    def _eval_assignment(self, node: ast.Assignment, env: _Environment):
        if node.operator == "=":
            value = self._eval(node.value, env)
        else:
            current = self._eval(node.target, env)
            operator = node.operator[:-1]
            value = self._binary_value(operator, current, self._eval(node.value, env))
            # compound assignment to an int variable narrows the result,
            # e.g. `int x; x += 1.5` keeps x an int in Java
            if isinstance(current, int) and not isinstance(current, bool) \
                    and isinstance(value, float):
                value = wrap_int(int(value))
        self._store(node.target, value, env)
        return value

    def _store(self, target: ast.Expression, value, env: _Environment) -> None:
        if isinstance(target, ast.Name):
            current = env.lookup(target.identifier)
            if isinstance(current, float) and isinstance(value, int) \
                    and not isinstance(value, bool):
                value = float(value)
            env.assign(target.identifier, value)
            self._trace_assign(target.identifier, value)
            return
        if isinstance(target, ast.ArrayAccess):
            array = self._eval(target.array, env)
            index = self._int_index(self._eval(target.index, env))
            if not isinstance(array, JavaArray):
                raise JavaRuntimeError("NullPointerException: not an array")
            if array.element_type in ("double", "float") and isinstance(value, int) \
                    and not isinstance(value, bool):
                value = float(value)
            array.set(index, value)
            if isinstance(target.array, ast.Name):
                self._trace_assign(target.array.identifier, array)
            return
        raise JavaRuntimeError(
            f"cannot assign to {type(target).__name__}"
        )

    def _eval_cast(self, node: ast.Cast, env: _Environment):
        value = self._eval(node.expression, env)
        name = node.type.name
        if name in ("int", "short", "byte", "long"):
            number = numeric_value(value)
            if number is None:
                raise JavaRuntimeError(f"cannot cast {java_str(value)} to {name}")
            return wrap_int(int(number))
        if name in ("double", "float"):
            number = numeric_value(value)
            if number is None:
                raise JavaRuntimeError(f"cannot cast {java_str(value)} to {name}")
            return float(number)
        if name == "char":
            number = numeric_value(value)
            if number is None:
                raise JavaRuntimeError("cannot cast to char")
            return JavaChar(chr(int(number) & 0xFFFF))
        return value

    # ------------------------------------------------------------------
    # helpers

    def _truth(self, value) -> bool:
        if isinstance(value, bool):
            return value
        raise JavaRuntimeError(
            f"condition must be boolean, got {java_str(value)}"
        )

    def _equals(self, left, right) -> bool:
        left_number = numeric_value(left)
        right_number = numeric_value(right)
        if left_number is not None and right_number is not None:
            return left_number == right_number
        # Strings compare by value: models the common student assumption
        # (and constant-pool interning) without a full reference model.
        return left == right

    def _int_index(self, value) -> int:
        number = numeric_value(value)
        if not isinstance(number, int):
            raise JavaRuntimeError(f"array index must be int, got {java_str(value)}")
        return number


def _default_value(type_name: str):
    if type_name in ("int", "long", "short", "byte"):
        return 0
    if type_name in ("double", "float"):
        return 0.0
    if type_name == "boolean":
        return False
    if type_name == "char":
        return JavaChar("\0")
    return None


def run_method(
    unit: ast.CompilationUnit,
    method_name: str,
    arguments: list,
    files: dict[str, str] | None = None,
    stdin: str = "",
    step_budget: int = DEFAULT_STEP_BUDGET,
    trace: bool = False,
) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run one method."""
    tracer = Tracer() if trace else None
    interpreter = Interpreter(
        unit, files=files, stdin=stdin, step_budget=step_budget, tracer=tracer
    )
    return interpreter.run(method_name, arguments)
