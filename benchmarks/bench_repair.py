"""Repair channel benchmark: repro.repair vs AutoGrader and CLARA.

The cohort is a set of seeded-defect submissions for one assignment,
half drawn directly from the error-model space (every baseline's home
turf) and half alpha-renamed copies of those (the realistic case: a
student's identifiers are their own).  Each system proposes a fix and
we score:

* ``coverage``  — fraction of defects for which the system produced an
  actionable repair suggestion at all;
* ``precision`` — fraction of produced suggestions whose repaired
  program actually passes the assignment's functional tests (machine
  verification; the repair channel runs this gate *before* emitting, so
  its precision is 1.0 by construction).

AutoGrader's search lives in choice-point coordinates, so it simply
cannot address the renamed half (no index to decode); CLARA matches
traces and proposes the nearest correct cluster's text, which verifies
but speaks the cluster's identifiers, not the student's.  The repair
channel aligns EPDGs and substitutes the student's names back, so it
must cover at least as much as the better baseline without giving up
precision — that is this benchmark's gate.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_repair.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_repair.py -q

Full-run results land in ``BENCH_repair.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.baselines import AutoGraderSim, ClaraSim
from repro.cluster import rename_submission
from repro.cluster.audit import audit_assignment
from repro.cluster.fingerprint import fingerprint_source
from repro.java import parse_submission
from repro.kb import get_assignment
from repro.pdg.builder import extract_all_epdgs
from repro.repair import RepairConfig, RepairCorpus, RepairEngine
from repro.synth import sample_submissions
from repro.testing import run_tests_on_source

#: Default benchmark assignment: a real error-model space (AutoGrader
#: needs one) with fast functional tests.
ASSIGNMENT = "assignment1"

#: In-space defects in the full cohort (each also appears renamed).
FULL_DEFECTS = 24
QUICK_DEFECTS = 5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_repair.json"


def build_cohort(assignment, defects: int, seed: int = 11):
    """Seeded-defect cohort: ``[(label, source, space_index | None)]``.

    Failing submissions are sampled from the assignment's space (these
    carry their index, so AutoGrader can search from them), and each one
    is duplicated under an alpha-renaming of its renameable spellings —
    functionally the same defect, but outside the space's literal text,
    the way real students actually write.
    """
    space = assignment.space()
    audit = audit_assignment(assignment)
    cohort = []
    oversample = max(defects * 6, 64)
    for sample in sample_submissions(space, oversample, seed=seed):
        if len(cohort) >= 2 * defects:
            break
        if run_tests_on_source(sample.source, assignment.tests).passed:
            continue
        cohort.append((f"d{sample.index}", sample.source, sample.index))
        sprint = fingerprint_source(sample.source, audit)
        if sprint is None:
            continue
        renaming = {
            name: f"w{j}_{name}"
            for j, name in enumerate(sorted(sprint.spellings))
        }
        renamed = rename_submission(sample.source, renaming)
        cohort.append((f"d{sample.index}r", renamed, None))
    return cohort


def _verified(source, assignment) -> bool:
    return run_tests_on_source(source, assignment.tests).passed


def run_comparison(assignment_name=ASSIGNMENT, defects=FULL_DEFECTS,
                   seed=11, verbose=True):
    """Score all three systems on one cohort; returns the result dict."""
    assignment = get_assignment(assignment_name)
    cohort = build_cohort(assignment, defects, seed=seed)
    corpus = RepairCorpus.build(assignment)
    correct_sources = [entry.source for entry in corpus.entries]

    # -- repro.repair ----------------------------------------------------
    repairer = RepairEngine(
        assignment, corpus=corpus,
        config=RepairConfig(budget_seconds=30.0),
    )
    ours_produced = ours_verified = 0
    started = time.perf_counter()
    for _, source, _ in cohort:
        graphs = extract_all_epdgs(
            parse_submission(source),
            assignment.synthesize_else_conditions,
        )
        suggestions = repairer.suggest(graphs)
        if suggestions:
            ours_produced += 1
            if _verified(suggestions[0].repaired_source, assignment):
                ours_verified += 1
    ours_wall = time.perf_counter() - started

    # -- AutoGrader ------------------------------------------------------
    sim = AutoGraderSim(assignment)
    ag_produced = ag_verified = 0
    started = time.perf_counter()
    for _, _, index in cohort:
        if index is None:
            continue  # renamed defects have no choice-point coordinates
        result = sim.repair_source_in_space(index)
        if result.repaired and result.repairs:
            ag_produced += 1
            ag_verified += 1  # its search oracle is the test suite
    ag_wall = time.perf_counter() - started

    # -- CLARA -----------------------------------------------------------
    clara = ClaraSim(assignment)
    clara.fit(correct_sources)
    clara_produced = clara_verified = 0
    started = time.perf_counter()
    for _, source, _ in cohort:
        result = clara.match(source)
        if result.repairs and result.cluster_index is not None:
            clara_produced += 1
            # the implied repaired program is the nearest cluster's text
            nearest = clara._clusters[result.cluster_index]["source"]
            if _verified(nearest, assignment):
                clara_verified += 1
    clara_wall = time.perf_counter() - started

    size = len(cohort)

    def scores(produced, verified, wall):
        return {
            "coverage": round(produced / size, 4) if size else 0.0,
            "precision": round(verified / produced, 4) if produced else 1.0,
            "wall_seconds": round(wall, 3),
            "produced": produced,
        }

    results = {
        "assignment": assignment_name,
        "cohort_size": size,
        "in_space_defects": sum(1 for _, _, i in cohort if i is not None),
        "renamed_defects": sum(1 for _, _, i in cohort if i is None),
        "corpus_size": len(corpus),
        "ours": scores(ours_produced, ours_verified, ours_wall),
        "autograder": scores(ag_produced, ag_verified, ag_wall),
        "clara": scores(clara_produced, clara_verified, clara_wall),
    }
    if verbose:
        print(f"cohort: {size} seeded defects for {assignment_name} "
              f"({results['in_space_defects']} in-space, "
              f"{results['renamed_defects']} renamed), "
              f"corpus of {len(corpus)} verified solutions")
        print(f"{'system':12s} {'coverage':>9s} {'precision':>10s} "
              f"{'wall s':>8s}")
        for name in ("ours", "autograder", "clara"):
            row = results[name]
            print(f"{name:12s} {row['coverage']:9.2%} "
                  f"{row['precision']:10.2%} {row['wall_seconds']:8.3f}")
    return results


def gate(results) -> list[str]:
    """The acceptance gate; returns failure messages (empty = pass)."""
    ours = results["ours"]
    best_coverage = max(
        results["autograder"]["coverage"], results["clara"]["coverage"]
    )
    best_precision = max(
        results["autograder"]["precision"], results["clara"]["precision"]
    )
    failures = []
    if ours["coverage"] < best_coverage:
        failures.append(
            f"coverage {ours['coverage']:.2%} < best baseline "
            f"{best_coverage:.2%}"
        )
    if ours["precision"] < best_precision:
        failures.append(
            f"precision {ours['precision']:.2%} < best baseline "
            f"{best_precision:.2%}"
        )
    return failures


# -- pytest entry points -------------------------------------------------

def test_repair_covers_at_least_the_best_baseline():
    results = run_comparison(defects=QUICK_DEFECTS, verbose=False)
    assert not gate(results), gate(results)


def test_every_emitted_suggestion_is_verified():
    """Precision 1.0 is structural: the engine re-runs the functional
    tests on every repaired source before emitting."""
    results = run_comparison(defects=QUICK_DEFECTS, verbose=False)
    assert results["ours"]["precision"] == 1.0
    assert results["ours"]["produced"] > 0


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohort (CI smoke test); does not "
                             "rewrite BENCH_repair.json")
    parser.add_argument("--assignment", default=ASSIGNMENT)
    parser.add_argument("--defects", type=int, default=None,
                        help="in-space defects (default "
                             f"{FULL_DEFECTS}, or {QUICK_DEFECTS} with "
                             "--quick); each also appears renamed")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_repair.json")
    args = parser.parse_args(argv)
    defects = args.defects if args.defects is not None else (
        QUICK_DEFECTS if args.quick else FULL_DEFECTS
    )
    results = run_comparison(args.assignment, defects=defects)
    failures = gate(results)
    payload = {
        "benchmark": "repair",
        "mode": "quick" if args.quick else "full",
        "gate": "coverage >= best baseline at >= precision",
        "passed": not failures,
        **results,
    }
    if not args.quick and not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
