"""Shared benchmark fixtures and the sampled synthetic cohorts.

Benchmarks regenerate the paper's Table I and the Section VI-C
comparisons.  Spaces with millions of programs are sampled
deterministically (seeded) so every run measures the same submissions;
EXPERIMENTS.md records the paper-vs-measured numbers.
"""

from __future__ import annotations

import pytest

from repro.core import FeedbackEngine
from repro.kb import all_assignment_names, get_assignment
from repro.synth import sample_submissions

#: Submissions sampled per assignment for timing benchmarks.
SAMPLE = 30


@pytest.fixture(scope="session", params=all_assignment_names())
def bench_assignment(request):
    return get_assignment(request.param)


@pytest.fixture(scope="session")
def cohorts():
    """Materialized sample cohort per assignment (cached per session)."""
    result = {}
    for name in all_assignment_names():
        assignment = get_assignment(name)
        result[name] = sample_submissions(assignment.space(), SAMPLE, seed=1)
    return result


@pytest.fixture(scope="session")
def engines():
    return {
        name: FeedbackEngine(get_assignment(name))
        for name in all_assignment_names()
    }
