"""Grading service benchmark: concurrent load against ``repro.serve``.

Three scenarios, mirroring the service's design goals:

* **throughput** (closed loop) — a duplicate-heavy synthetic cohort
  (the same :func:`bench_batch_pipeline.build_cohort` workload the
  batch benchmark uses) is graded through real HTTP by a fixed pool of
  concurrent clients; every served report must be byte-identical to
  what the offline :class:`~repro.core.pipeline.BatchGrader` produces
  for the same source.
* **overload** (open loop) — a burst far beyond the admission capacity
  is fired without waiting; the excess must be refused with ``429``
  and every refusal must carry a ``Retry-After`` hint.
* **hang** — one deliberately wedged submission (the ``debug_sleep``
  hook stands in for a matcher-hostile pathological input) is sent
  alongside healthy traffic; the hard deadline must kill it while
  every healthy request completes normally.
* **scaleout** (full runs only) — a cache-defeating unique-submission
  workload against the consistent-hash shard router at 1, 2, and 4
  shards sharing one SQLite store; throughput must scale near-linearly
  (>= 0.7x ideal) up to the host's core count.

Results land in ``BENCH_serve.json`` at the repo root.

Run standalone (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys
import time
from pathlib import Path

from bench_batch_pipeline import build_cohort
from repro.core.pipeline import BatchGrader
from repro.kb import get_assignment
from repro.serve import GradingService, ServiceConfig

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Closed-loop client concurrency for the throughput scenario.
CLIENT_CONCURRENCY = 16


# -- minimal asyncio HTTP client ------------------------------------------

async def http_request(host, port, method, path, body=None):
    """One request on a fresh connection; response framed by length."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        return status, headers, raw
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()


async def grade_request(service, assignment_name, body):
    status, headers, raw = await http_request(
        service.config.host, service.port,
        "POST", f"/assignments/{assignment_name}/grade", body,
    )
    return status, headers, json.loads(raw)


@contextlib.asynccontextmanager
async def started_service(**overrides):
    kwargs = dict(port=0, pool_mode="process", debug_hooks=True)
    kwargs.update(overrides)
    service = GradingService(ServiceConfig(**kwargs))
    await service.start()
    try:
        yield service
    finally:
        await service.drain()


# -- scenario 1: closed-loop throughput + byte-identical reports ----------

async def _run_throughput(cohort, workers):
    async with started_service(workers=workers) as service:
        queue: asyncio.Queue = asyncio.Queue()
        for item in cohort:
            queue.put_nowait(item)
        served: dict[str, dict] = {}
        statuses: list[int] = []

        async def client():
            while True:
                try:
                    label, source = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, _, payload = await grade_request(
                    service, "assignment1",
                    {"source": source, "label": label},
                )
                statuses.append(status)
                served[label] = payload["report"]

        started = time.perf_counter()
        await asyncio.gather(
            *[client() for _ in range(CLIENT_CONCURRENCY)]
        )
        elapsed = time.perf_counter() - started
        _, _, raw = await http_request(
            service.config.host, service.port, "GET", "/metrics"
        )
        metrics = json.loads(raw)
    return served, statuses, elapsed, metrics


def run_throughput(size=240, workers=4, verbose=True):
    """Serve a duplicate-heavy cohort; compare against offline grading."""
    assignment = get_assignment("assignment1")
    cohort = build_cohort(assignment, size)
    offline = BatchGrader(assignment, mode="serial", cache=True)
    offline_reports = {
        item.label: item.report.to_dict()
        for item in offline.grade_batch(cohort).items
    }
    served, statuses, elapsed, metrics = asyncio.run(
        _run_throughput(cohort, workers)
    )
    identical = served == offline_reports
    summary = {
        "cohort_size": size,
        "workers": workers,
        "client_concurrency": CLIENT_CONCURRENCY,
        "wall_seconds": round(elapsed, 3),
        "throughput_per_second": round(size / elapsed, 1),
        "all_http_200": all(status == 200 for status in statuses),
        "byte_identical_to_offline": identical,
        "cache_hits": metrics["serve"]["serve.cache_hits"],
        "latency_ms": metrics["latency_ms"],
    }
    if verbose:
        print(f"throughput: {size} submissions via "
              f"{CLIENT_CONCURRENCY} clients / {workers} workers "
              f"in {elapsed:.2f}s ({size / elapsed:.1f}/s, "
              f"{summary['cache_hits']} cache hits)")
        print(f"  p50={summary['latency_ms']['p50_ms']}ms "
              f"p95={summary['latency_ms']['p95_ms']}ms "
              f"p99={summary['latency_ms']['p99_ms']}ms")
        print(f"  served reports byte-identical to offline: {identical}")
    return summary


# -- scenario 2: open-loop overload → 429 + Retry-After -------------------

async def _run_overload(burst, queue_capacity):
    async with started_service(
        workers=2, queue_capacity=queue_capacity
    ) as service:
        source = get_assignment("assignment1").reference_solutions[0]
        tasks = [
            asyncio.create_task(grade_request(
                service, "assignment1",
                {
                    # unique sources defeat the result cache, so every
                    # request needs a worker and the queue really fills
                    "source": source + f"//burst{i}",
                    "debug_sleep_seconds": 0.2,
                },
            ))
            for i in range(burst)
        ]
        return await asyncio.gather(*tasks)


def run_overload(burst=40, queue_capacity=4, verbose=True):
    """Fire a burst past admission capacity; count explicit refusals."""
    results = asyncio.run(_run_overload(burst, queue_capacity))
    accepted = sum(1 for status, _, _ in results if status == 200)
    rejected = [
        (status, headers) for status, headers, _ in results
        if status == 429
    ]
    other = [
        status for status, _, _ in results if status not in (200, 429)
    ]
    retry_after_ok = all(
        int(headers.get("retry-after", "0")) >= 1
        for _, headers in rejected
    )
    summary = {
        "burst": burst,
        "admission_capacity": 2 + queue_capacity,
        "accepted_200": accepted,
        "rejected_429": len(rejected),
        "other_statuses": other,
        "all_429s_have_retry_after": retry_after_ok,
    }
    if verbose:
        print(f"overload: burst of {burst} against capacity "
              f"{summary['admission_capacity']} -> {accepted} accepted, "
              f"{len(rejected)} refused with 429 "
              f"(Retry-After on all: {retry_after_ok})")
    return summary


# -- scenario 3: hung submission killed, healthy traffic unharmed ---------

async def _run_hang(healthy):
    async with started_service(workers=2) as service:
        source = get_assignment("assignment1").reference_solutions[0]
        started = time.perf_counter()
        hang_task = asyncio.create_task(grade_request(
            service, "assignment1",
            {
                "source": source + "//wedged",
                "debug_sleep_seconds": 60,
                "deadline_seconds": 0.5,
            },
        ))
        healthy_tasks = [
            asyncio.create_task(grade_request(
                service, "assignment1",
                {"source": source + f"//healthy{i}"},
            ))
            for i in range(healthy)
        ]
        hang_result = await hang_task
        hang_seconds = time.perf_counter() - started
        healthy_results = await asyncio.gather(*healthy_tasks)
        _, _, raw = await http_request(
            service.config.host, service.port, "GET", "/metrics"
        )
        metrics = json.loads(raw)
    return hang_result, hang_seconds, healthy_results, metrics


def run_hang(healthy=8, verbose=True):
    """One wedged submission + healthy traffic on the same service."""
    hang_result, hang_seconds, healthy_results, metrics = asyncio.run(
        _run_hang(healthy)
    )
    hang_status, _, hang_payload = hang_result
    summary = {
        "hang_http_status": hang_status,
        "hang_report_status": hang_payload["report"]["status"],
        "hang_wall_seconds": round(hang_seconds, 3),
        "healthy_requests": healthy,
        "healthy_all_ok": all(
            status == 200 and payload["report"]["status"] == "ok"
            for status, _, payload in healthy_results
        ),
        "deadline_kills": metrics["serve"]["serve.deadline_kills"],
        "worker_respawns": metrics["serve"]["serve.worker_respawns"],
    }
    if verbose:
        print(f"hang: wedged submission answered {hang_status} "
              f"({hang_payload['report']['status']}) in "
              f"{hang_seconds:.2f}s; {healthy} healthy requests ok: "
              f"{summary['healthy_all_ok']} "
              f"(kills={summary['deadline_kills']}, "
              f"respawns={summary['worker_respawns']})")
    return summary


# -- scenario 4: multi-shard scale-out ------------------------------------

async def _run_scaleout_pass(shards, cohort, concurrency, cache_dir):
    """One router pass: ``shards`` forked services behind one port."""
    from repro.serve import ShardRouter

    router = ShardRouter(
        ServiceConfig(
            port=0, workers=1, pool_mode="inline",
            cache_dir=cache_dir, store_backend="sqlite",
        ),
        shards=shards,
    )
    await router.start()
    try:
        queue: asyncio.Queue = asyncio.Queue()
        for item in cohort:
            queue.put_nowait(item)
        statuses: list[int] = []

        async def client():
            while True:
                try:
                    label, source = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, _, _ = await http_request(
                    router.config.host, router.port,
                    "POST", "/assignments/assignment1/grade",
                    {"source": source, "label": label},
                )
                statuses.append(status)

        started = time.perf_counter()
        await asyncio.gather(*[client() for _ in range(concurrency)])
        elapsed = time.perf_counter() - started
    finally:
        await router.drain()
    return elapsed, statuses


def run_scaleout(requests=96, concurrency=16, verbose=True):
    """Throughput of 1 -> 2 -> 4 shard routers on unique submissions.

    The workload defeats the result caches (every source is distinct)
    so each request costs real grading CPU, which is what shards are
    supposed to parallelize.  The near-linear gate only applies up to
    the host's core count — forking four shards onto one core measures
    context-switching, not scaling — so it compares shard count
    ``min(4, cpu_count)`` against the single-shard baseline and
    records the rest ungated.
    """
    import os
    import tempfile

    source = get_assignment("assignment1").reference_solutions[0]
    cpu_count = os.cpu_count() or 1
    gate_shards = min(4, cpu_count)
    rows = []
    for shards in (1, 2, 4):
        cohort = [
            (f"s{shards}-{i:04d}", source + f"//unique-{shards}-{i}")
            for i in range(requests)
        ]
        with tempfile.TemporaryDirectory() as tmp:
            elapsed, statuses = asyncio.run(
                _run_scaleout_pass(shards, cohort, concurrency, tmp)
            )
        rows.append({
            "shards": shards,
            "wall_seconds": round(elapsed, 3),
            "throughput_per_second": round(requests / elapsed, 1),
            "all_http_200": all(status == 200 for status in statuses),
        })
        if verbose:
            print(f"scaleout: {shards} shard(s) served {requests} unique "
                  f"submissions in {elapsed:.2f}s "
                  f"({requests / elapsed:.1f}/s)")
    baseline = rows[0]["throughput_per_second"]
    gated = next(row for row in rows if row["shards"] == gate_shards)
    speedup = gated["throughput_per_second"] / baseline if baseline else 0.0
    required = 0.7 * gate_shards
    summary = {
        "requests_per_pass": requests,
        "client_concurrency": concurrency,
        "cpu_count": cpu_count,
        "gate_shards": gate_shards,
        "gated_speedup": round(speedup, 2),
        "required_speedup": round(required, 2),
        "near_linear": speedup >= required,
        "passes": rows,
    }
    if verbose:
        print(f"scaleout: {gate_shards}-shard speedup {speedup:.2f}x over "
              f"1 shard (required >= {required:.2f}x at "
              f"cpu_count={cpu_count})")
    return summary


# -- pytest entry points -------------------------------------------------

def test_served_reports_match_offline():
    summary = run_throughput(size=60, workers=2, verbose=False)
    assert summary["all_http_200"]
    assert summary["byte_identical_to_offline"]
    assert summary["cache_hits"] > 0  # duplicate-heavy by construction


def test_overload_emits_429s_with_retry_after():
    summary = run_overload(burst=24, queue_capacity=2, verbose=False)
    assert summary["rejected_429"] > 0
    assert summary["all_429s_have_retry_after"]
    assert summary["accepted_200"] >= 4  # admitted work still finishes
    assert not summary["other_statuses"]


def test_hung_submission_killed_while_others_complete():
    summary = run_hang(healthy=4, verbose=False)
    assert summary["hang_http_status"] == 504
    assert summary["hang_report_status"] == "timeout"
    assert summary["hang_wall_seconds"] < 10.0
    assert summary["healthy_all_ok"]
    assert summary["deadline_kills"] == 1


# -- standalone entry point ----------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cohort / burst (CI smoke test)")
    parser.add_argument("--size", type=int, default=None,
                        help="cohort size (default 240, or 60 with --quick)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_serve.json")
    args = parser.parse_args(argv)
    quick = args.quick
    size = args.size if args.size is not None else (60 if quick else 240)

    throughput = run_throughput(
        size=size, workers=2 if quick else args.workers
    )
    overload = run_overload(
        burst=24 if quick else 40, queue_capacity=2 if quick else 4
    )
    hang = run_hang(healthy=4 if quick else 8)
    # forking 3 router fleets is too heavy for the CI smoke run
    scaleout = None if quick else run_scaleout()

    results = {
        "benchmark": "serve",
        "mode": "quick" if quick else "full",
        "throughput": throughput,
        "overload": overload,
        "hang": hang,
    }
    if scaleout is not None:
        results["scaleout"] = scaleout
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")

    failures = []
    if not throughput["byte_identical_to_offline"]:
        failures.append("served reports differ from offline grading")
    if not throughput["all_http_200"]:
        failures.append("throughput scenario saw non-200 responses")
    if not overload["rejected_429"]:
        failures.append("overload produced no 429s")
    if not overload["all_429s_have_retry_after"]:
        failures.append("a 429 lacked Retry-After")
    if hang["hang_http_status"] != 504 or not hang["healthy_all_ok"]:
        failures.append("hang scenario misbehaved")
    if scaleout is not None and not scaleout["near_linear"]:
        failures.append(
            f"scale-out speedup {scaleout['gated_speedup']}x < "
            f"{scaleout['required_speedup']}x at "
            f"{scaleout['gate_shards']} shards"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    print("PASS" if not failures else f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
