"""Frozen seed frontend: the pre-optimization lexer, parser, and builder.

This module is the frontend benchmark's *naive reference path* -- a
verbatim-behavior copy of the character-at-a-time lexer, the Token-object
parser helpers, and the re-printing EPDG builder as they existed before
the frontend performance pass (commit ffe7ed2).  It plays the same role
``strategy="permutation"`` plays for the matcher benchmark: a frozen
baseline the optimized frontend must match byte-for-byte (token streams,
ASTs via the canonical printer, EPDG text) while beating it on wall time.

Only ``benchmarks/bench_frontend.py`` and the differential tests import
this module.  Do not "fix" or optimize it; its value is that it does not
change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import JavaSyntaxError, ReproError
from repro.java import ast
from repro.pdg.negation import negate_condition
from repro.pdg.graph import EdgeType, Epdg, GraphNode, NodeType


# ======================================================================
# seed lexer (repro/java/lexer.py at ffe7ed2)
# ======================================================================

class TokenType(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "int"
    LONG_LITERAL = "long"
    DOUBLE_LITERAL = "double"
    STRING_LITERAL = "string"
    CHAR_LITERAL = "char"
    BOOL_LITERAL = "boolean"
    NULL_LITERAL = "null"
    OPERATOR = "operator"
    SEPARATOR = "separator"
    EOF = "eof"


#: Reserved words recognized as keywords (subset relevant to intro courses).
KEYWORDS = frozenset(
    {
        "abstract", "assert", "boolean", "break", "byte", "case", "catch",
        "char", "class", "const", "continue", "default", "do", "double",
        "else", "enum", "extends", "final", "finally", "float", "for",
        "goto", "if", "implements", "import", "instanceof", "int",
        "interface", "long", "native", "new", "package", "private",
        "protected", "public", "return", "short", "static", "strictfp",
        "super", "switch", "synchronized", "this", "throw", "throws",
        "transient", "try", "void", "volatile", "while",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?", ":",
)

_SEPARATORS = frozenset("(){}[];,.@")

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f",
    "0": "\0", "'": "'", '"': '"', "\\": "\\",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass scanner over a Java source string."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list ending in EOF."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    # ------------------------------------------------------------------
    # scanning machinery

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos:self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _error(self, message: str) -> JavaSyntaxError:
        return JavaSyntaxError(message, self._line, self._column)

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self._line, self._column
        if self._pos >= len(self._source):
            return Token(TokenType.EOF, "", line, column)
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch in "_$":
            return self._word(line, column)
        if ch == '"':
            return self._string(line, column)
        if ch == "'":
            return self._char(line, column)
        if ch in _SEPARATORS:
            self._advance()
            return Token(TokenType.SEPARATOR, ch, line, column)
        for op in _OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (
            self._peek().isalnum() or self._peek() in "_$"
        ):
            self._advance()
        text = self._source[start:self._pos]
        if text in ("true", "false"):
            return Token(TokenType.BOOL_LITERAL, text, line, column)
        if text == "null":
            return Token(TokenType.NULL_LITERAL, text, line, column)
        if text in KEYWORDS:
            return Token(TokenType.KEYWORD, text, line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self._pos
        is_double = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF_":
                self._advance()
        else:
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_double = True
                self._advance()
                while self._peek().isdigit() or self._peek() == "_":
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_double = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        if self._peek() and self._peek() in "dDfF":
            self._advance()
            text = self._source[start:self._pos]
            return Token(TokenType.DOUBLE_LITERAL, text, line, column)
        if self._peek() and self._peek() in "lL":
            self._advance()
            text = self._source[start:self._pos]
            return Token(TokenType.LONG_LITERAL, text, line, column)
        text = self._source[start:self._pos]
        token_type = TokenType.DOUBLE_LITERAL if is_double else TokenType.INT_LITERAL
        return Token(token_type, text, line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\n":
                raise self._error("newline in string literal")
            if ch == "\\":
                escape = self._advance()
                if escape not in _ESCAPES:
                    raise self._error(f"unsupported escape \\{escape}")
                chars.append(_ESCAPES[escape])
            else:
                chars.append(ch)
        return Token(TokenType.STRING_LITERAL, "".join(chars), line, column)

    def _char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        ch = self._advance()
        if ch == "\\":
            escape = self._advance()
            if escape not in _ESCAPES:
                raise self._error(f"unsupported escape \\{escape}")
            ch = _ESCAPES[escape]
        if self._advance() != "'":
            raise self._error("unterminated char literal")
        return Token(TokenType.CHAR_LITERAL, ch, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the token list (ending with EOF)."""
    return Lexer(source).tokens()


# ======================================================================
# seed parser (repro/java/parser.py at ffe7ed2)
# ======================================================================

#: Primitive type keywords accepted in declarations.
PRIMITIVE_TYPES = frozenset(
    {"boolean", "byte", "char", "short", "int", "long", "float", "double"}
)

_MODIFIERS = frozenset(
    {"public", "private", "protected", "static", "final", "abstract",
     "synchronized", "native", "strictfp", "transient", "volatile"}
)

#: Binary operator precedence (higher binds tighter), per the JLS.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPERATORS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}
)


class Parser:
    """Parses a token stream produced by :mod:`repro.java.lexer`."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, value: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.value == value and token.type in (
            TokenType.KEYWORD, TokenType.OPERATOR, TokenType.SEPARATOR
        )

    def _match(self, value: str) -> bool:
        if self._check(value):
            self._advance()
            return True
        return False

    def _expect(self, value: str) -> Token:
        if not self._check(value):
            token = self._peek()
            raise JavaSyntaxError(
                f"expected {value!r} but found {token.value!r}",
                token.line, token.column,
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise JavaSyntaxError(
                f"expected identifier but found {token.value!r}",
                token.line, token.column,
            )
        return self._advance().value

    def _at_eof(self) -> bool:
        return self._peek().type is TokenType.EOF

    def _error(self, message: str) -> JavaSyntaxError:
        token = self._peek()
        return JavaSyntaxError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # top level

    def parse_submission(self) -> ast.CompilationUnit:
        """Parse a whole submission (classes and/or bare methods)."""
        unit = ast.CompilationUnit()
        while self._match("import"):
            parts = [self._expect_identifier()]
            while self._match("."):
                if self._match("*"):
                    parts.append("*")
                    break
                parts.append(self._expect_identifier())
            self._expect(";")
            unit.imports.append(".".join(parts))
        while not self._at_eof():
            modifiers = self._parse_modifiers()
            if self._check("class"):
                unit.classes.append(self._parse_class(modifiers))
            else:
                unit.bare_methods.append(self._parse_method(modifiers))
        return unit

    def parse_expression_only(self) -> ast.Expression:
        """Parse exactly one expression; trailing tokens are an error."""
        expression = self._parse_expression()
        if not self._at_eof():
            raise self._error("unexpected trailing tokens after expression")
        return expression

    def _parse_modifiers(self) -> list[str]:
        modifiers = []
        while self._peek().type is TokenType.KEYWORD and self._peek().value in _MODIFIERS:
            modifiers.append(self._advance().value)
        return modifiers

    def _parse_class(self, modifiers: list[str]) -> ast.ClassDecl:
        self._expect("class")
        name = self._expect_identifier()
        if self._match("extends"):
            self._expect_identifier()
        if self._match("implements"):
            self._expect_identifier()
            while self._match(","):
                self._expect_identifier()
        self._expect("{")
        cls = ast.ClassDecl(name=name, modifiers=modifiers)
        while not self._check("}"):
            if self._at_eof():
                raise self._error("unterminated class body")
            member_modifiers = self._parse_modifiers()
            if self._looks_like_method():
                cls.methods.append(self._parse_method(member_modifiers))
            else:
                decl = self._parse_local_var_decl()
                self._expect(";")
                cls.fields.append(
                    ast.FieldDecl(
                        type=decl.type,
                        declarators=decl.declarators,
                        modifiers=member_modifiers,
                    )
                )
        self._expect("}")
        return cls

    def _looks_like_method(self) -> bool:
        """Disambiguate method declarations from field declarations.

        After the (already consumed) modifiers, a method looks like
        ``Type name (`` whereas a field looks like ``Type name =|;|,``.
        """
        offset = 0
        token = self._peek(offset)
        if token.type not in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            return False
        offset += 1
        while self._check("[", offset) and self._check("]", offset + 1):
            offset += 2
        if self._peek(offset).type is not TokenType.IDENTIFIER:
            return False
        offset += 1
        return self._check("(", offset)

    def _parse_method(self, modifiers: list[str]) -> ast.MethodDecl:
        return_type = self._parse_type()
        name = self._expect_identifier()
        self._expect("(")
        parameters: list[ast.Parameter] = []
        if not self._check(")"):
            while True:
                param_type = self._parse_type()
                param_name = self._expect_identifier()
                while self._match("["):
                    self._expect("]")
                    param_type = ast.Type(param_type.name, param_type.dimensions + 1)
                parameters.append(ast.Parameter(type=param_type, name=param_name))
                if not self._match(","):
                    break
        self._expect(")")
        throws: list[str] = []
        if self._match("throws"):
            throws.append(self._expect_identifier())
            while self._match(","):
                throws.append(self._expect_identifier())
        body = self._parse_block()
        return ast.MethodDecl(
            name=name,
            return_type=return_type,
            parameters=parameters,
            body=body,
            modifiers=modifiers,
            throws=throws,
        )

    # ------------------------------------------------------------------
    # types

    def _parse_type(self) -> ast.Type:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES | {"void"}:
            name = self._advance().value
        elif token.type is TokenType.IDENTIFIER:
            name = self._advance().value
            while self._check(".") and self._peek(1).type is TokenType.IDENTIFIER:
                self._advance()
                name += "." + self._advance().value
        else:
            raise self._error(f"expected type but found {token.value!r}")
        dimensions = 0
        while self._check("[") and self._check("]", 1):
            self._advance()
            self._advance()
            dimensions += 1
        return ast.Type(name, dimensions)

    def _at_type_start(self) -> bool:
        """True when the upcoming tokens begin a local variable declaration."""
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES:
            return True
        if token.type is not TokenType.IDENTIFIER:
            return False
        # `Ident Ident`  ->  declaration (e.g. `Scanner s`)
        if self._peek(1).type is TokenType.IDENTIFIER:
            return True
        # `Ident [ ] Ident`  ->  array declaration (e.g. `int[] a` spelled
        # with a class type, `String[] words`)
        offset = 1
        saw_brackets = False
        while self._check("[", offset) and self._check("]", offset + 1):
            saw_brackets = True
            offset += 2
        return saw_brackets and self._peek(offset).type is TokenType.IDENTIFIER

    # ------------------------------------------------------------------
    # statements

    def _parse_block(self) -> ast.Block:
        self._expect("{")
        block = ast.Block()
        while not self._check("}"):
            if self._at_eof():
                raise self._error("unterminated block")
            block.statements.append(self._parse_statement())
        self._expect("}")
        return block

    def _parse_statement(self) -> ast.Statement:
        if self._check("{"):
            return self._parse_block()
        if self._check(";"):
            self._advance()
            return ast.EmptyStatement()
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            return self._parse_while()
        if self._check("do"):
            return self._parse_do_while()
        if self._check("for"):
            return self._parse_for()
        if self._check("switch"):
            return self._parse_switch()
        if self._check("break"):
            self._advance()
            label = None
            if self._peek().type is TokenType.IDENTIFIER:
                label = self._advance().value
            self._expect(";")
            return ast.Break(label)
        if self._check("continue"):
            self._advance()
            label = None
            if self._peek().type is TokenType.IDENTIFIER:
                label = self._advance().value
            self._expect(";")
            return ast.Continue(label)
        if self._check("return"):
            self._advance()
            value = None
            if not self._check(";"):
                value = self._parse_expression()
            self._expect(";")
            return ast.Return(value)
        if self._check("final"):
            self._advance()
            declaration = self._parse_local_var_decl()
            self._expect(";")
            return declaration
        if self._at_type_start():
            declaration = self._parse_local_var_decl()
            self._expect(";")
            return declaration
        expression = self._parse_expression()
        self._expect(";")
        return ast.ExpressionStatement(expression)

    def _parse_local_var_decl(self) -> ast.LocalVarDecl:
        var_type = self._parse_type()
        declarators = [self._parse_declarator()]
        while self._match(","):
            declarators.append(self._parse_declarator())
        return ast.LocalVarDecl(type=var_type, declarators=declarators)

    def _parse_declarator(self) -> ast.VarDeclarator:
        name = self._expect_identifier()
        extra_dimensions = 0
        while self._check("[") and self._check("]", 1):
            self._advance()
            self._advance()
            extra_dimensions += 1
        initializer = None
        if self._match("="):
            if self._check("{"):
                initializer = self._parse_array_initializer()
            else:
                initializer = self._parse_expression()
        return ast.VarDeclarator(
            name=name, initializer=initializer, extra_dimensions=extra_dimensions
        )

    def _parse_if(self) -> ast.If:
        self._expect("if")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self._match("else"):
            else_branch = self._parse_statement()
        return ast.If(condition, then_branch, else_branch)

    def _parse_while(self) -> ast.While:
        self._expect("while")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.While(condition, body)

    def _parse_do_while(self) -> ast.DoWhile:
        self._expect("do")
        body = self._parse_statement()
        self._expect("while")
        self._expect("(")
        condition = self._parse_expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(body, condition)

    def _parse_for(self) -> ast.Statement:
        self._expect("for")
        self._expect("(")
        # enhanced for: `for (Type name : expr)`
        checkpoint = self._pos
        if self._at_type_start() or (
            self._peek().type is TokenType.KEYWORD
            and self._peek().value in PRIMITIVE_TYPES
        ):
            try:
                item_type = self._parse_type()
                name = self._expect_identifier()
                if self._match(":"):
                    iterable = self._parse_expression()
                    self._expect(")")
                    body = self._parse_statement()
                    return ast.ForEach(item_type, name, iterable, body)
            except JavaSyntaxError:
                pass
            self._pos = checkpoint
        init: list[ast.Statement] = []
        if not self._check(";"):
            if self._at_type_start():
                init.append(self._parse_local_var_decl())
            else:
                init.append(ast.ExpressionStatement(self._parse_expression()))
                while self._match(","):
                    init.append(ast.ExpressionStatement(self._parse_expression()))
        self._expect(";")
        condition = None
        if not self._check(";"):
            condition = self._parse_expression()
        self._expect(";")
        update: list[ast.Expression] = []
        if not self._check(")"):
            update.append(self._parse_expression())
            while self._match(","):
                update.append(self._parse_expression())
        self._expect(")")
        body = self._parse_statement()
        return ast.For(init, condition, update, body)

    def _parse_switch(self) -> ast.Switch:
        self._expect("switch")
        self._expect("(")
        selector = self._parse_expression()
        self._expect(")")
        self._expect("{")
        cases: list[ast.SwitchCase] = []
        while not self._check("}"):
            labels: list[ast.Expression | None] = []
            while self._check("case") or self._check("default"):
                if self._match("case"):
                    labels.append(self._parse_expression())
                else:
                    self._expect("default")
                    labels.append(None)
                self._expect(":")
            if not labels:
                raise self._error("expected 'case' or 'default' in switch body")
            statements: list[ast.Statement] = []
            while not (
                self._check("case") or self._check("default") or self._check("}")
            ):
                statements.append(self._parse_statement())
            cases.append(ast.SwitchCase(labels, statements))
        self._expect("}")
        return ast.Switch(selector, cases)

    # ------------------------------------------------------------------
    # expressions

    def _parse_expression(self) -> ast.Expression:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expression:
        left = self._parse_ternary()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _ASSIGN_OPERATORS:
            operator = self._advance().value
            value = self._parse_assignment()
            return ast.Assignment(target=left, operator=operator, value=value)
        return left

    def _parse_ternary(self) -> ast.Expression:
        condition = self._parse_binary(1)
        if self._match("?"):
            if_true = self._parse_expression()
            self._expect(":")
            if_false = self._parse_assignment()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            operator = token.value
            if token.type is TokenType.KEYWORD and operator == "instanceof":
                precedence = _BINARY_PRECEDENCE[operator]
                if precedence < min_precedence:
                    return left
                self._advance()
                right_type = self._parse_type()
                left = ast.Binary("instanceof", left, ast.Name(str(right_type)))
                continue
            if token.type is not TokenType.OPERATOR:
                return left
            precedence = _BINARY_PRECEDENCE.get(operator)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(operator, left, right)

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("+", "-", "!", "~"):
            operator = self._advance().value
            operand = self._parse_unary()
            # Fold unary minus into negative literals so `-1` renders as a
            # single literal, matching how instructors write patterns.
            if (
                operator == "-"
                and isinstance(operand, ast.Literal)
                and operand.kind in ("int", "long", "double")
            ):
                return ast.Literal(-operand.value, operand.kind)  # type: ignore[operator]
            return ast.Unary(operator, operand, prefix=True)
        if token.type is TokenType.OPERATOR and token.value in ("++", "--"):
            operator = self._advance().value
            operand = self._parse_unary()
            return ast.Unary(operator, operand, prefix=True)
        if self._check("(") and self._is_cast():
            self._expect("(")
            cast_type = self._parse_type()
            self._expect(")")
            expression = self._parse_unary()
            return ast.Cast(cast_type, expression)
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        """Lookahead check for `(type) unary` casts.

        Only primitive-type casts are treated as casts; `(expr)` with a
        class-type name is ambiguous in Java and intro submissions do not
        need reference casts.
        """
        offset = 1
        token = self._peek(offset)
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES:
            offset += 1
            while self._check("[", offset) and self._check("]", offset + 1):
                offset += 2
            return self._check(")", offset)
        return False

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while True:
            if self._check("."):
                self._advance()
                name = self._expect_identifier()
                if self._check("("):
                    arguments = self._parse_arguments()
                    expression = ast.MethodCall(expression, name, arguments)
                else:
                    expression = ast.FieldAccess(expression, name)
            elif self._check("["):
                self._advance()
                index = self._parse_expression()
                self._expect("]")
                expression = ast.ArrayAccess(expression, index)
            elif self._check("++") or self._check("--"):
                operator = self._advance().value
                expression = ast.Unary(operator, expression, prefix=False)
            else:
                return expression

    def _parse_arguments(self) -> list[ast.Expression]:
        self._expect("(")
        arguments: list[ast.Expression] = []
        if not self._check(")"):
            arguments.append(self._parse_expression())
            while self._match(","):
                arguments.append(self._parse_expression())
        self._expect(")")
        return arguments

    def _parse_array_initializer(self) -> ast.ArrayInitializer:
        self._expect("{")
        elements: list[ast.Expression] = []
        if not self._check("}"):
            while True:
                if self._check("{"):
                    elements.append(self._parse_array_initializer())
                else:
                    elements.append(self._parse_expression())
                if not self._match(","):
                    break
        self._expect("}")
        return ast.ArrayInitializer(elements)

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return ast.Literal(int(token.value.replace("_", ""), 0), "int")
        if token.type is TokenType.LONG_LITERAL:
            self._advance()
            return ast.Literal(int(token.value.rstrip("lL").replace("_", ""), 0), "long")
        if token.type is TokenType.DOUBLE_LITERAL:
            self._advance()
            return ast.Literal(float(token.value.rstrip("dDfF").replace("_", "")), "double")
        if token.type is TokenType.STRING_LITERAL:
            self._advance()
            return ast.Literal(token.value, "string")
        if token.type is TokenType.CHAR_LITERAL:
            self._advance()
            return ast.Literal(token.value, "char")
        if token.type is TokenType.BOOL_LITERAL:
            self._advance()
            return ast.Literal(token.value == "true", "boolean")
        if token.type is TokenType.NULL_LITERAL:
            self._advance()
            return ast.Literal(None, "null")
        if self._check("("):
            self._advance()
            expression = self._parse_expression()
            self._expect(")")
            return expression
        if self._check("new"):
            return self._parse_creation()
        if token.type is TokenType.IDENTIFIER:
            name = self._advance().value
            if self._check("("):
                arguments = self._parse_arguments()
                return ast.MethodCall(None, name, arguments)
            return ast.Name(name)
        if self._check("this"):
            self._advance()
            return ast.Name("this")
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_creation(self) -> ast.Expression:
        self._expect("new")
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in PRIMITIVE_TYPES:
            base = ast.Type(self._advance().value)
        else:
            name = self._expect_identifier()
            while self._check(".") and self._peek(1).type is TokenType.IDENTIFIER:
                self._advance()
                name += "." + self._advance().value
            base = ast.Type(name)
        if self._check("("):
            arguments = self._parse_arguments()
            return ast.ObjectCreation(base, arguments)
        dimensions: list[ast.Expression] = []
        total_dims = 0
        while self._check("["):
            self._advance()
            if self._check("]"):
                self._advance()
                total_dims += 1
            else:
                dimensions.append(self._parse_expression())
                self._expect("]")
                total_dims += 1
        initializer = None
        if self._check("{"):
            initializer = self._parse_array_initializer()
        if total_dims == 0:
            raise self._error("array creation requires dimensions")
        return ast.ArrayCreation(
            ast.Type(base.name, total_dims), dimensions, initializer
        )


def parse_submission(source: str) -> ast.CompilationUnit:
    """Parse a student submission into a :class:`~repro.java.ast.CompilationUnit`."""
    return Parser(source).parse_submission()


def parse_expression(source: str) -> ast.Expression:
    """Parse a single Java expression."""
    return Parser(source).parse_expression_only()


# ======================================================================
# seed expression printer (repro/java/printer.py at ffe7ed2)
# ======================================================================

_PRECEDENCE = {
    "=": 0, "+=": 0, "-=": 0, "*=": 0, "/=": 0, "%=": 0,
    "&=": 0, "|=": 0, "^=": 0, "<<=": 0, ">>=": 0, ">>>=": 0,
    "?:": 1,
    "||": 2,
    "&&": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "==": 7, "!=": 7,
    "<": 8, ">": 8, "<=": 8, ">=": 8, "instanceof": 8,
    "<<": 9, ">>": 9, ">>>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "%": 11,
    "unary": 12,
    "postfix": 13,
}

_STRING_ESCAPES = {
    "\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t",
    "\r": "\\r", "\b": "\\b", "\f": "\\f", "\0": "\\0",
}


def _escape_string(value: str) -> str:
    return "".join(_STRING_ESCAPES.get(ch, ch) for ch in value)


def print_expression(node: ast.Expression) -> str:
    """Render an expression to canonical single-line source text."""
    return _expr(node, 0)


def _expr(node: ast.Expression, parent_precedence: int) -> str:
    if isinstance(node, ast.Literal):
        return _literal(node)
    if isinstance(node, ast.Name):
        return node.identifier
    if isinstance(node, ast.FieldAccess):
        return f"{_expr(node.target, _PRECEDENCE['postfix'])}.{node.name}"
    if isinstance(node, ast.ArrayAccess):
        return (
            f"{_expr(node.array, _PRECEDENCE['postfix'])}"
            f"[{_expr(node.index, 0)}]"
        )
    if isinstance(node, ast.MethodCall):
        arguments = ", ".join(_expr(arg, 0) for arg in node.arguments)
        if node.target is None:
            return f"{node.name}({arguments})"
        return f"{_expr(node.target, _PRECEDENCE['postfix'])}.{node.name}({arguments})"
    if isinstance(node, ast.ObjectCreation):
        arguments = ", ".join(_expr(arg, 0) for arg in node.arguments)
        return f"new {node.type}({arguments})"
    if isinstance(node, ast.ArrayCreation):
        base = node.type.name
        dims = "".join(f"[{_expr(d, 0)}]" for d in node.dimensions)
        dims += "[]" * (node.type.dimensions - len(node.dimensions))
        text = f"new {base}{dims}"
        if node.initializer is not None:
            text += " " + _expr(node.initializer, 0)
        return text
    if isinstance(node, ast.ArrayInitializer):
        return "{" + ", ".join(_expr(e, 0) for e in node.elements) + "}"
    if isinstance(node, ast.Unary):
        precedence = _PRECEDENCE["unary" if node.prefix else "postfix"]
        operand = _expr(node.operand, precedence)
        text = f"{node.operator}{operand}" if node.prefix else f"{operand}{node.operator}"
        return _paren(text, precedence, parent_precedence)
    if isinstance(node, ast.Binary):
        precedence = _PRECEDENCE[node.operator]
        left = _expr(node.left, precedence)
        # +1 forces parentheses on same-precedence right operands, keeping
        # left-associativity explicit: a - (b - c).
        right = _expr(node.right, precedence + 1)
        return _paren(f"{left} {node.operator} {right}", precedence, parent_precedence)
    if isinstance(node, ast.Ternary):
        precedence = _PRECEDENCE["?:"]
        text = (
            f"{_expr(node.condition, precedence + 1)} ? "
            f"{_expr(node.if_true, 0)} : {_expr(node.if_false, precedence)}"
        )
        return _paren(text, precedence, parent_precedence)
    if isinstance(node, ast.Assignment):
        precedence = _PRECEDENCE[node.operator]
        text = (
            f"{_expr(node.target, _PRECEDENCE['postfix'])} {node.operator} "
            f"{_expr(node.value, precedence)}"
        )
        return _paren(text, precedence, parent_precedence)
    if isinstance(node, ast.Cast):
        precedence = _PRECEDENCE["unary"]
        text = f"({node.type}) {_expr(node.expression, precedence)}"
        return _paren(text, precedence, parent_precedence)
    raise TypeError(f"cannot print expression node {type(node).__name__}")


def _paren(text: str, precedence: int, parent_precedence: int) -> str:
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _literal(node: ast.Literal) -> str:
    if node.kind == "string":
        return f'"{_escape_string(str(node.value))}"'
    if node.kind == "char":
        ch = str(node.value)
        return "'" + _STRING_ESCAPES.get(ch, ch).replace('\\"', '"') + "'"
    if node.kind == "boolean":
        return "true" if node.value else "false"
    if node.kind == "null":
        return "null"
    if node.kind == "long":
        return f"{node.value}L"
    if node.kind == "double":
        value = node.value
        if isinstance(value, float) and value == int(value):
            return f"{value:.1f}"
        return repr(value)
    return str(node.value)




# ======================================================================
# seed variable analysis (repro/pdg/expressions.py at ffe7ed2)
# ======================================================================

#: Identifiers treated as static class references, never as variables.
STATIC_CLASSES = frozenset(
    {"System", "Math", "Integer", "String", "Character", "Double",
     "Boolean", "Long", "Arrays", "this"}
)


def used_variables(node: ast.Expression | None) -> frozenset[str]:
    """Variables *read* by an expression."""
    if node is None:
        return frozenset()
    result: set[str] = set()
    _collect_uses(node, result)
    return frozenset(result)


def _collect_uses(node: ast.Expression, result: set[str]) -> None:
    if isinstance(node, ast.Name):
        if node.identifier not in STATIC_CLASSES:
            result.add(node.identifier)
        return
    if isinstance(node, ast.FieldAccess):
        _collect_uses(node.target, result)
        return
    if isinstance(node, ast.MethodCall):
        if node.target is not None:
            _collect_uses(node.target, result)
        for argument in node.arguments:
            _collect_uses(argument, result)
        return
    if isinstance(node, ast.Assignment):
        # compound assignment reads the target as well
        if node.operator != "=":
            _collect_uses(node.target, result)
        elif isinstance(node.target, ast.ArrayAccess):
            # a[i] = v reads i (and the array reference a)
            _collect_uses(node.target, result)
        _collect_uses(node.value, result)
        return
    if isinstance(node, ast.Unary):
        _collect_uses(node.operand, result)
        return
    for child in node.children():
        if isinstance(child, ast.Expression):
            _collect_uses(child, result)


def defined_variables(node: ast.Expression) -> frozenset[str]:
    """Variables *written* by an expression.

    An assignment to ``a[i]`` defines ``a`` (the array variable holds a new
    state), matching how the paper's examples treat ``d[i - 1] = ...``.
    """
    result: set[str] = set()
    _collect_defs(node, result)
    return frozenset(result)


def _collect_defs(node: ast.Expression, result: set[str]) -> None:
    if isinstance(node, ast.Assignment):
        _collect_target(node.target, result)
        _collect_defs(node.value, result)
        return
    if isinstance(node, ast.Unary) and node.operator in ("++", "--"):
        _collect_target(node.operand, result)
        return
    for child in node.children():
        if isinstance(child, ast.Expression):
            _collect_defs(child, result)


def _collect_target(node: ast.Expression, result: set[str]) -> None:
    if isinstance(node, ast.Name):
        if node.identifier not in STATIC_CLASSES:
            result.add(node.identifier)
    elif isinstance(node, ast.ArrayAccess):
        _collect_target(node.array, result)


# ======================================================================
# seed EPDG builder (repro/pdg/builder.py at ffe7ed2)
# ======================================================================

_ReachingDefs = dict[str, frozenset[int]]


class _Builder:
    def __init__(self, method: ast.MethodDecl,
                 synthesize_else_conditions: bool = False):
        self._method = method
        self._graph = Epdg(method.name)
        self._synthesize_else = synthesize_else_conditions

    def build(self) -> Epdg:
        defs: _ReachingDefs = {}
        for parameter in self._method.parameters:
            node = self._new_node(
                NodeType.DECL,
                parameter.name,
                defines=frozenset({parameter.name}),
                uses=frozenset(),
                parent=None,
                defs=defs,
            )
            defs[parameter.name] = frozenset({node.node_id})
        self._statements(self._method.body.statements, None, defs)
        return self._graph

    # ------------------------------------------------------------------
    # node creation

    def _new_node(
        self,
        node_type: NodeType,
        content: str,
        defines: frozenset[str],
        uses: frozenset[str],
        parent: int | None,
        defs: _ReachingDefs,
    ) -> GraphNode:
        node = GraphNode(
            node_id=len(self._graph),
            type=node_type,
            content=content,
            defines=defines,
            uses=uses,
        )
        self._graph.add_node(node)
        if parent is not None:
            self._graph.add_edge(parent, node.node_id, EdgeType.CTRL)
        for variable in sorted(uses):
            for definition in sorted(defs.get(variable, ())):
                self._graph.add_edge(definition, node.node_id, EdgeType.DATA)
        for variable in defines:
            defs[variable] = frozenset({node.node_id})
        return node

    def _expression_node(
        self,
        expression: ast.Expression,
        parent: int | None,
        defs: _ReachingDefs,
        node_type: NodeType | None = None,
    ) -> GraphNode:
        """Create the node for a statement-level expression."""
        if node_type is None:
            if isinstance(expression, ast.Assignment) or (
                isinstance(expression, ast.Unary)
                and expression.operator in ("++", "--")
            ):
                node_type = NodeType.ASSIGN
            else:
                node_type = NodeType.CALL
        return self._new_node(
            node_type,
            print_expression(expression),
            defines=defined_variables(expression),
            uses=used_variables(expression),
            parent=parent,
            defs=defs,
        )

    # ------------------------------------------------------------------
    # statement walking

    def _statements(
        self,
        statements: list[ast.Statement],
        parent: int | None,
        defs: _ReachingDefs,
    ) -> None:
        for statement in statements:
            self._statement(statement, parent, defs)

    def _statement(
        self,
        node: ast.Statement,
        parent: int | None,
        defs: _ReachingDefs,
    ) -> None:
        if isinstance(node, ast.Block):
            self._statements(node.statements, parent, defs)
        elif isinstance(node, ast.LocalVarDecl):
            for declarator in node.declarators:
                if declarator.initializer is None:
                    # a bare `int x;` performs no operation; the defining
                    # node will be the first assignment to x
                    continue
                content = (
                    f"{declarator.name} = "
                    f"{print_expression(declarator.initializer)}"
                )
                self._new_node(
                    NodeType.ASSIGN,
                    content,
                    defines=frozenset({declarator.name}),
                    uses=used_variables(declarator.initializer),
                    parent=parent,
                    defs=defs,
                )
        elif isinstance(node, ast.ExpressionStatement):
            self._expression_node(node.expression, parent, defs)
        elif isinstance(node, ast.If):
            cond = self._cond_node(node.condition, parent, defs)
            then_defs = dict(defs)
            self._statement(node.then_branch, cond.node_id, then_defs)
            if node.else_branch is None:
                defs.clear()
                defs.update(then_defs)
            else:
                else_defs = dict(defs)
                else_parent = cond.node_id
                if self._synthesize_else:
                    # Section VII future work: the else branch hangs off
                    # its own Cond node carrying the negated condition,
                    # so patterns written for the positive form match
                    # either arm
                    negated = self._cond_node(
                        negate_condition(node.condition), parent, else_defs
                    )
                    else_parent = negated.node_id
                self._statement(node.else_branch, else_parent, else_defs)
                defs.clear()
                defs.update(_merge(then_defs, else_defs))
        elif isinstance(node, ast.While):
            cond = self._cond_node(node.condition, parent, defs)
            self._statement(node.body, cond.node_id, defs)
        elif isinstance(node, ast.DoWhile):
            # the body of a do-while always runs, so it is not
            # control-dependent on the condition; the condition node comes
            # after the body in the static execution order
            self._statement(node.body, parent, defs)
            self._cond_node(node.condition, parent, defs)
        elif isinstance(node, ast.For):
            self._statements(node.init, parent, defs)
            condition = node.condition
            if condition is None:
                condition_content = "true"
                cond = self._new_node(
                    NodeType.COND, condition_content,
                    defines=frozenset(), uses=frozenset(),
                    parent=parent, defs=defs,
                )
            else:
                cond = self._cond_node(condition, parent, defs)
            self._statement(node.body, cond.node_id, defs)
            for update in node.update:
                self._expression_node(update, cond.node_id, defs)
        elif isinstance(node, ast.ForEach):
            content = f"{node.name} : {print_expression(node.iterable)}"
            cond = self._new_node(
                NodeType.COND,
                content,
                defines=frozenset({node.name}),
                uses=used_variables(node.iterable),
                parent=parent,
                defs=defs,
            )
            self._statement(node.body, cond.node_id, defs)
        elif isinstance(node, ast.Break):
            self._new_node(
                NodeType.BREAK, "break",
                defines=frozenset(), uses=frozenset(),
                parent=parent, defs=defs,
            )
        elif isinstance(node, ast.Continue):
            # Definition 1 has no Continue type; we model `continue` as a
            # Break-typed node whose content disambiguates it
            self._new_node(
                NodeType.BREAK, "continue",
                defines=frozenset(), uses=frozenset(),
                parent=parent, defs=defs,
            )
        elif isinstance(node, ast.Return):
            content = (
                "return" if node.value is None
                else f"return {print_expression(node.value)}"
            )
            self._new_node(
                NodeType.RETURN,
                content,
                defines=frozenset(),
                uses=used_variables(node.value),
                parent=parent,
                defs=defs,
            )
        elif isinstance(node, ast.Switch):
            cond = self._cond_node(node.selector, parent, defs)
            branch_envs: list[_ReachingDefs] = []
            for case in node.cases:
                case_defs = dict(defs)
                self._statements(case.statements, cond.node_id, case_defs)
                branch_envs.append(case_defs)
            merged = dict(defs)
            for branch in branch_envs:
                merged = _merge(merged, branch)
            defs.clear()
            defs.update(merged)
        elif isinstance(node, ast.EmptyStatement):
            pass
        else:
            raise ReproError(
                f"cannot build EPDG for statement {type(node).__name__}"
            )

    def _cond_node(
        self,
        condition: ast.Expression,
        parent: int | None,
        defs: _ReachingDefs,
    ) -> GraphNode:
        return self._new_node(
            NodeType.COND,
            print_expression(condition),
            defines=defined_variables(condition),
            uses=used_variables(condition),
            parent=parent,
            defs=defs,
        )


def _merge(left: _ReachingDefs, right: _ReachingDefs) -> _ReachingDefs:
    merged: _ReachingDefs = {}
    for variable in set(left) | set(right):
        merged[variable] = left.get(variable, frozenset()) | right.get(
            variable, frozenset()
        )
    return merged


def extract_epdg(
    method: ast.MethodDecl, synthesize_else_conditions: bool = False
) -> Epdg:
    """Build the extended program dependence graph of one method.

    ``synthesize_else_conditions`` enables the Section VII extension:
    every else branch receives a synthetic ``Cond`` node carrying the
    negated condition (``if (i % 2 == 0) ... else ...`` also exposes
    ``i % 2 != 0``), letting positive-form patterns match either arm.
    """
    return _Builder(method, synthesize_else_conditions).build()


def extract_all_epdgs(
    unit: ast.CompilationUnit, synthesize_else_conditions: bool = False
) -> dict[str, Epdg]:
    """Build one EPDG per method in the submission (paper's ExtractEPDG).

    When a submission declares two methods with the same name (an
    overload), the later one wins — intro assignments in the corpus never
    overload, and Algorithm 2 matches methods by name.
    """
    return {
        m.name: extract_epdg(m, synthesize_else_conditions)
        for m in unit.methods()
    }
