"""Fail on dead relative links in README.md and docs/*.md.

Scans every markdown link ``[text](target)``; targets with a URL scheme
(http:, https:, mailto:) and pure in-page anchors (``#...``) are
ignored, everything else is resolved relative to the containing file
and must exist.  Run from anywhere::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links; the target group stops at whitespace or ')'
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SCHEME = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*:")


def iter_doc_files():
    yield REPO_ROOT / "README.md"
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def dead_links(path: Path):
    """Yield ``(line_number, target)`` for each dead relative link."""
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in _LINK.findall(line):
            if _SCHEME.match(target) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                yield number, target


def main() -> int:
    broken = []
    checked = 0
    for path in iter_doc_files():
        checked += 1
        for number, target in dead_links(path):
            broken.append(
                f"{path.relative_to(REPO_ROOT)}:{number}: "
                f"dead link -> {target}"
            )
    for line in broken:
        print(line)
    print(f"checked {checked} files, {len(broken)} dead links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
