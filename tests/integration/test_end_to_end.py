"""End-to-end integration: cohorts, discrepancies, and cross-checks.

These tests exercise the whole pipeline the way the paper's evaluation
does: synthesize submissions from the error model, grade them with the
pattern engine, run functional tests, and compare verdicts.
"""

import pytest

from repro.core import FeedbackEngine
from repro.kb import all_assignment_names, get_assignment
from repro.matching import FeedbackStatus
from repro.synth import sample_submissions
from repro.testing import run_tests_on_source

COHORT = 40


@pytest.mark.parametrize("name", all_assignment_names())
class TestCohortGrading:
    def test_cohort_grades_without_crashing(self, name):
        assignment = get_assignment(name)
        engine = FeedbackEngine(assignment)
        space = assignment.space()
        for submission in sample_submissions(space, COHORT, seed=11):
            report = engine.grade(submission.source)
            assert report.ok, f"{name}#{submission.index} failed to grade"
            assert report.comments

    def test_verdicts_mostly_agree_with_functional_tests(self, name):
        assignment = get_assignment(name)
        engine = FeedbackEngine(assignment)
        space = assignment.space()
        agree = disagree = 0
        for submission in sample_submissions(space, COHORT, seed=11):
            positive = engine.grade(submission.source).is_positive
            passed = run_tests_on_source(
                submission.source, assignment.tests
            ).passed
            if positive == passed:
                agree += 1
            else:
                disagree += 1
        # Table I: discrepancies are a small fraction of each space
        assert agree >= disagree * 3, (
            f"{name}: {agree} agreements vs {disagree} discrepancies"
        )

    def test_reference_always_sampled_and_positive(self, name):
        assignment = get_assignment(name)
        engine = FeedbackEngine(assignment)
        space = assignment.space()
        (reference, *_rest) = sample_submissions(space, COHORT, seed=11)
        assert reference.index == 0
        assert engine.grade(reference.source).is_positive


class TestFeedbackQuality:
    def test_negative_reports_carry_actionable_messages(self):
        assignment = get_assignment("assignment1")
        engine = FeedbackEngine(assignment)
        space = assignment.space()
        checked = 0
        for submission in sample_submissions(space, COHORT, seed=5):
            report = engine.grade(submission.source)
            if report.is_positive:
                continue
            checked += 1
            negatives = [
                c for c in report.comments
                if c.status is not FeedbackStatus.CORRECT
            ]
            assert negatives
            for comment in negatives:
                assert comment.message.strip(), (
                    f"empty feedback from {comment.source}"
                )
        assert checked > 0

    def test_feedback_mentions_student_variables_not_pattern_variables(self):
        # γ instantiation: feedback text never leaks pattern placeholders
        # for patterns that matched
        assignment = get_assignment("assignment1")
        engine = FeedbackEngine(assignment)
        source = """
        void assignment1(int[] arr) {
            int mySum = 0;
            int myProd = 1;
            int idx = 0;
            while (idx < arr.length) {
                if (idx % 2 == 1)
                    mySum += arr[idx];
                if (idx % 2 == 0)
                    myProd *= arr[idx];
                idx++;
            }
            System.out.println(mySum);
            System.out.println(myProd);
        }
        """
        report = engine.grade(source)
        assert report.is_positive
        text = report.render()
        assert "mySum" in text and "myProd" in text and "idx" in text
        assert "{c}" not in text and "{x}" not in text


class TestCrossAssignmentReuse:
    def test_patterns_shared_across_assignments(self):
        # the reusability claim: key patterns serve several assignments
        uses = {}
        for name in all_assignment_names():
            for method in get_assignment(name).expected_methods:
                for pattern_name in method.pattern_names():
                    uses.setdefault(pattern_name, set()).add(name)
        shared = {p for p, names in uses.items() if len(names) >= 3}
        assert {"assign-print", "print-call", "counter-under-cond",
                "equality-check"} <= shared

    def test_wrong_assignment_submission_scores_low(self):
        # a palindrome solution graded against the special-number
        # assignment must not look correct
        palindrome = get_assignment("esc-LAB-3-P4-V1")
        special = get_assignment("esc-LAB-3-P2-V2")
        source = palindrome.reference_solutions[0].replace(
            "isPalindrome", "isSpecial"
        )
        report = FeedbackEngine(special).grade(source)
        assert not report.is_positive


class TestThroughput:
    def test_average_grading_time_is_milliseconds(self):
        # the headline claim of Table I column M
        import time
        assignment = get_assignment("assignment1")
        engine = FeedbackEngine(assignment)
        space = assignment.space()
        submissions = sample_submissions(space, 30, seed=2)
        started = time.perf_counter()
        for submission in submissions:
            engine.grade(submission.source)
        per_submission = (time.perf_counter() - started) / len(submissions)
        assert per_submission < 0.25, (
            f"grading took {per_submission * 1000:.0f} ms per submission"
        )
