"""Unit tests for the batch grading pipeline (repro.core.pipeline)."""

from __future__ import annotations

import pytest

from repro.core import FeedbackEngine, GradingReport
from repro.core.pipeline import (
    BatchGrader,
    ResultCache,
    source_key,
)
from repro.synth import sample_submissions

BROKEN = "void assignment1(int[] a) { int = ; }"


@pytest.fixture(scope="module")
def cohort(assignment1):
    """20 sampled submissions with duplicates sprinkled in."""
    originals = [
        s.source
        for s in sample_submissions(assignment1.space(), 12, seed=5)
    ]
    duplicated = originals + originals[:8]
    return [(f"s{i}", source) for i, source in enumerate(duplicated)]


class TestSourceKey:
    def test_identical_sources_share_a_key(self):
        assert source_key("int x = 0;") == source_key("int x = 0;")

    def test_different_sources_differ(self):
        assert source_key("int x = 0;") != source_key("int x = 1;")

    def test_normalizes_line_endings_and_trailing_whitespace(self):
        unix = "int x = 0;\nint y = 1;\n"
        windows = "int x = 0;  \r\nint y = 1;\r\n\r\n"
        assert source_key(unix) == source_key(windows)

    def test_leading_indentation_is_significant(self):
        assert source_key("  int x = 0;") != source_key("int x = 0;")


class TestResultCache:
    def test_put_get_roundtrip(self):
        cache = ResultCache()
        report = GradingReport(assignment_name="a", parse_error="nope")
        cache.put("k", report)
        assert cache.get("k") is report
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_lru_eviction_drops_oldest(self):
        cache = ResultCache(maxsize=2)
        reports = {
            k: GradingReport(assignment_name=k, parse_error="x")
            for k in "abc"
        }
        cache.put("a", reports["a"])
        cache.put("b", reports["b"])
        assert cache.get("a") is reports["a"]  # refresh a; b is now oldest
        cache.put("c", reports["c"])
        assert "b" not in cache
        assert cache.get("a") is reports["a"]
        assert cache.get("c") is reports["c"]

    def test_error_reports_are_not_cached(self):
        cache = ResultCache()
        cache.put("k", GradingReport(assignment_name="a", error="boom"))
        assert "k" not in cache

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)


class TestDeterminism:
    def test_parallel_results_identical_to_serial(self, assignment1, cohort):
        serial = BatchGrader(assignment1, mode="serial", cache=False)
        threaded = BatchGrader(assignment1, mode="thread", workers=4)
        expected = serial.grade_batch(cohort)
        actual = threaded.grade_batch(cohort)
        assert expected.rendered() == actual.rendered()
        assert [i.report.status for i in expected.items] == \
            [i.report.status for i in actual.items]

    def test_process_results_identical_to_serial(self, assignment1, cohort):
        small = cohort[:6]
        serial = BatchGrader(assignment1, mode="serial")
        proc = BatchGrader(assignment1, mode="process", workers=2)
        assert serial.grade_batch(small).rendered() == \
            proc.grade_batch(small).rendered()

    def test_order_is_stable(self, assignment1, cohort):
        result = BatchGrader(assignment1, mode="thread",
                             workers=4).grade_batch(cohort)
        assert [item.label for item in result.items] == \
            [label for label, _ in cohort]

    def test_cached_rerun_is_identical(self, assignment1, cohort):
        grader = BatchGrader(assignment1)
        first = grader.grade_batch(cohort)
        second = grader.grade_batch(cohort)
        assert first.rendered() == second.rendered()
        assert second.stats.graded == 0


class TestCaching:
    def test_duplicate_within_batch_hits(self, assignment1):
        source = assignment1.reference_solutions[0]
        result = BatchGrader(assignment1).grade_batch([source, source])
        assert result.stats.graded == 1
        assert result.stats.cache_hits == 1
        assert not result.items[0].from_cache
        assert result.items[1].from_cache
        assert result.items[0].report is result.items[1].report

    def test_resubmission_across_batches_hits(self, assignment1):
        source = assignment1.reference_solutions[0]
        grader = BatchGrader(assignment1)
        grader.grade_batch([source])
        rerun = grader.grade_batch([source])
        assert rerun.stats.cache_hits == 1 and rerun.stats.graded == 0
        assert rerun.items[0].from_cache

    def test_crlf_resubmission_hits(self, assignment1):
        source = assignment1.reference_solutions[0]
        grader = BatchGrader(assignment1)
        grader.grade_batch([source])
        rerun = grader.grade_batch([source.replace("\n", "\r\n")])
        assert rerun.stats.cache_hits == 1

    def test_cache_disabled_grades_everything(self, assignment1):
        source = assignment1.reference_solutions[0]
        grader = BatchGrader(assignment1, cache=False)
        result = grader.grade_batch([source, source])
        assert result.stats.graded == 2
        assert result.stats.cache_hits == 0

    def test_shared_cache_across_graders(self, assignment1):
        source = assignment1.reference_solutions[0]
        shared = ResultCache()
        BatchGrader(assignment1, cache=shared).grade_batch([source])
        rerun = BatchGrader(assignment1, cache=shared).grade_batch([source])
        assert rerun.stats.cache_hits == 1

    def test_parse_error_reports_are_cached_too(self, assignment1):
        grader = BatchGrader(assignment1)
        grader.grade_batch([BROKEN])
        rerun = grader.grade_batch([BROKEN])
        assert rerun.stats.cache_hits == 1
        assert rerun.items[0].report.status == "parse-error"


class TestErrorIsolation:
    def test_broken_submission_does_not_abort_batch(self, assignment1):
        good = assignment1.reference_solutions[0]
        result = BatchGrader(assignment1).grade_batch(
            [("good", good), ("bad", BROKEN), ("good2", good)]
        )
        statuses = [item.report.status for item in result.items]
        assert statuses == ["ok", "parse-error", "ok"]
        assert result.stats.parse_errors == 1
        assert result.stats.errors == 0

    def test_unexpected_exception_is_isolated(self, assignment1,
                                              monkeypatch):
        good = assignment1.reference_solutions[0]
        original = FeedbackEngine.grade

        def explode(self, source):
            if "boom-marker" in source:
                raise RuntimeError("matcher exploded")
            return original(self, source)

        monkeypatch.setattr(FeedbackEngine, "grade", explode)
        result = BatchGrader(assignment1).grade_batch(
            [("good", good), ("evil", "// boom-marker")]
        )
        assert [i.report.status for i in result.items] == ["ok", "error"]
        assert "matcher exploded" in result.items[1].report.error
        assert result.stats.errors == 1

    def test_error_reports_are_not_cached(self, assignment1, monkeypatch):
        calls = []
        original = FeedbackEngine.grade

        def explode(self, source):
            if "boom-marker" in source:
                calls.append(1)
                raise RuntimeError("transient")
            return original(self, source)

        monkeypatch.setattr(FeedbackEngine, "grade", explode)
        grader = BatchGrader(assignment1)
        grader.grade_batch(["// boom-marker"])
        grader.grade_batch(["// boom-marker"])
        assert len(calls) == 2  # regraded, not replayed


class TestBatchGraderApi:
    def test_bare_sources_get_positional_labels(self, assignment1):
        source = assignment1.reference_solutions[0]
        result = BatchGrader(assignment1).grade_batch([source, BROKEN])
        assert [item.label for item in result.items] == ["#0", "#1"]

    def test_unknown_mode_rejected(self, assignment1):
        with pytest.raises(ValueError, match="unknown mode"):
            BatchGrader(assignment1, mode="fibers")

    def test_serial_ignores_workers(self, assignment1):
        assert BatchGrader(assignment1, mode="serial", workers=9).workers == 1

    def test_status_counts(self, assignment1):
        good = assignment1.reference_solutions[0]
        result = BatchGrader(assignment1).grade_batch([good, BROKEN])
        assert result.status_counts() == {"ok": 1, "parse-error": 1}

    def test_stats_phase_times_recorded(self, assignment1):
        source = assignment1.reference_solutions[0]
        result = BatchGrader(assignment1).grade_batch([source])
        for phase_name in ("parse", "epdg_build", "pattern_match",
                           "constraint_match"):
            assert result.stats.phase_seconds[phase_name] >= 0
            assert result.stats.phase_counts[phase_name] >= 1

    def test_empty_batch(self, assignment1):
        result = BatchGrader(assignment1).grade_batch([])
        assert result.items == []
        assert result.stats.submissions == 0


class TestMaxSeconds:
    """The per-submission wall-clock guard (this PR's satellite)."""

    def test_rejects_nonpositive_limit(self, assignment1):
        with pytest.raises(ValueError, match="max_seconds"):
            BatchGrader(assignment1, max_seconds=0)
        with pytest.raises(ValueError, match="max_seconds"):
            BatchGrader(assignment1, max_seconds=-1.0)

    def test_expired_budget_yields_timeout_reports(self, assignment1):
        source = assignment1.reference_solutions[0]
        result = BatchGrader(
            assignment1, max_seconds=1e-9, cache=False
        ).grade_batch([source, source + "//2"])
        assert [i.report.status for i in result.items] == [
            "timeout", "timeout",
        ]
        assert result.stats.timeouts == 2
        assert "wall-clock limit" in result.items[0].report.timeout

    def test_generous_budget_changes_nothing(self, assignment1):
        source = assignment1.reference_solutions[0]
        unlimited = BatchGrader(assignment1, cache=False).grade_batch(
            [source]
        )
        limited = BatchGrader(
            assignment1, max_seconds=300.0, cache=False
        ).grade_batch([source])
        assert (
            limited.reports[0].to_dict() == unlimited.reports[0].to_dict()
        )
        assert limited.stats.timeouts == 0

    def test_timeout_reports_are_not_cached(self, assignment1):
        source = assignment1.reference_solutions[0]
        grader = BatchGrader(assignment1, max_seconds=1e-9)
        assert grader.grade_batch([source]).reports[0].status == "timeout"
        # a fresh grader sharing the cache must regrade, not replay
        retry = BatchGrader(assignment1, cache=grader.cache).grade_batch(
            [source]
        )
        assert retry.reports[0].status == "ok"
        assert retry.stats.cache_hits == 0

    def test_timeout_applies_in_process_mode(self, assignment1):
        source = assignment1.reference_solutions[0]
        result = BatchGrader(
            assignment1, mode="process", workers=2,
            max_seconds=1e-9, cache=False,
        ).grade_batch([source, source + "//2"])
        assert [i.report.status for i in result.items] == [
            "timeout", "timeout",
        ]
        assert result.stats.timeouts == 2


class TestCrossModeStats:
    """Pin the cross-process stats aggregation (this PR's satellite):
    per-phase call counts and matcher counters must be identical no
    matter which execution mode graded the batch."""

    def test_process_stats_match_serial(self, assignment1, cohort):
        serial = BatchGrader(
            assignment1, mode="serial", cache=False
        ).grade_batch(cohort)
        process = BatchGrader(
            assignment1, mode="process", workers=2, cache=False
        ).grade_batch(cohort)
        assert process.stats.phase_counts == serial.stats.phase_counts
        assert process.stats.counters == serial.stats.counters
        assert process.stats.graded == serial.stats.graded
        assert process.stats.parse_errors == serial.stats.parse_errors
        assert process.stats.timeouts == serial.stats.timeouts
        assert process.stats.errors == serial.stats.errors
        # wall time is mode-dependent, but phase time must be real
        assert process.stats.phase_seconds["pattern_match"] > 0

    def test_thread_stats_match_serial(self, assignment1, cohort):
        serial = BatchGrader(
            assignment1, mode="serial", cache=False
        ).grade_batch(cohort)
        threaded = BatchGrader(
            assignment1, mode="thread", workers=4, cache=False
        ).grade_batch(cohort)
        assert threaded.stats.phase_counts == serial.stats.phase_counts
        assert threaded.stats.counters == serial.stats.counters
