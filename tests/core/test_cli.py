"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.kb import get_assignment


@pytest.fixture()
def reference_file(tmp_path):
    path = tmp_path / "Submission.java"
    path.write_text(get_assignment("assignment1").reference_solutions[0])
    return str(path)


@pytest.fixture()
def buggy_file(tmp_path):
    source = get_assignment("assignment1").reference_solutions[0]
    path = tmp_path / "Buggy.java"
    path.write_text(source.replace("int odd = 0;", "int odd = 1;"))
    return str(path)


class TestListAndShow:
    def test_list_prints_all_assignments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "assignment1" in out and "rit-medals-by-ath" in out
        assert "640,000" in out

    def test_show_prints_spec(self, capsys):
        assert main(["show", "assignment1"]) == 0
        out = capsys.readouterr().out
        assert "seq-odd-access" in out
        assert "reference solution" in out

    def test_unknown_assignment_errors(self, capsys):
        assert main(["show", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestGrade:
    def test_correct_submission_exits_zero(self, capsys, reference_file):
        assert main(["grade", "assignment1", reference_file]) == 0
        assert "[Correct]" in capsys.readouterr().out

    def test_buggy_submission_exits_one(self, capsys, buggy_file):
        assert main(["grade", "assignment1", buggy_file]) == 1
        out = capsys.readouterr().out
        assert "should start at 0" in out

    def test_stdin_submission(self, capsys, monkeypatch):
        import io
        source = get_assignment("assignment1").reference_solutions[0]
        monkeypatch.setattr("sys.stdin", io.StringIO(source))
        assert main(["grade", "assignment1", "-"]) == 0

    def test_missing_file_errors(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.java")
        assert main(["grade", "assignment1", missing]) == 2

    def test_syntax_error_reported(self, capsys, tmp_path):
        path = tmp_path / "Broken.java"
        path.write_text("void assignment1(int[] a) { int = ; }")
        assert main(["grade", "assignment1", str(path)]) in (1, 2)


class TestGradeBatch:
    def test_files_and_summary_lines(self, capsys, reference_file,
                                     buggy_file):
        assert main(["grade-batch", "assignment1", reference_file,
                     buggy_file]) == 0
        out = capsys.readouterr().out
        assert "Submission.java: ok" in out
        assert "Buggy.java: rejected" in out

    def test_directory_input(self, capsys, tmp_path):
        source = get_assignment("assignment1").reference_solutions[0]
        for name in ("a.java", "b.java"):
            (tmp_path / name).write_text(source)
        assert main(["grade-batch", "assignment1", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "a.java: ok" in out
        assert "b.java: ok 10/10 (cached)" in out

    def test_broken_submission_does_not_abort(self, capsys, reference_file,
                                              tmp_path):
        broken = tmp_path / "Broken.java"
        broken.write_text("void assignment1(int[] a) { int = ; }")
        assert main(["grade-batch", "assignment1", reference_file,
                     str(broken)]) == 0
        out = capsys.readouterr().out
        assert "Broken.java: parse-error" in out
        assert "Submission.java: ok" in out

    def test_stats_flag(self, capsys, reference_file):
        assert main(["grade-batch", "assignment1", reference_file,
                     reference_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline stats (mode=serial" in out
        assert "cache hit rate: 50.0%" in out
        assert "pattern_match" in out

    def test_synthetic_cohort(self, capsys):
        assert main(["grade-batch", "assignment1", "--synthetic", "5",
                     "--mode", "thread", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("synthetic-") == 5

    def test_json_output(self, capsys, reference_file, tmp_path):
        out_file = tmp_path / "batch.json"
        assert main(["grade-batch", "assignment1", reference_file,
                     "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["assignment"] == "assignment1"
        assert payload["stats"]["submissions"] == 1
        assert payload["submissions"][0]["status"] == "ok"

    def test_cache_dir_replays_across_invocations(
        self, capsys, reference_file, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(["grade-batch", "assignment1", reference_file,
                     "--cache-dir", cache_dir, "--stats"]) == 0
        first = capsys.readouterr().out
        assert "cache.store_writes" in first
        assert main(["grade-batch", "assignment1", reference_file,
                     "--cache-dir", cache_dir, "--stats"]) == 0
        second = capsys.readouterr().out
        assert "Submission.java: ok" in second
        assert "cache hit rate: 100.0%" in second
        assert "cache.store_hits" in second
        assert "pattern_match" not in second  # nothing was re-matched

    def test_render_flag(self, capsys, reference_file):
        assert main(["grade-batch", "assignment1", reference_file,
                     "--render"]) == 0
        out = capsys.readouterr().out
        assert "[Correct]" in out and "Score:" in out

    def test_empty_batch_errors(self, capsys):
        assert main(["grade-batch", "assignment1"]) == 2
        assert "error" in capsys.readouterr().err


class TestTest:
    def test_passing_suite(self, capsys, reference_file):
        assert main(["test", "assignment1", reference_file]) == 0
        assert "6/6" in capsys.readouterr().out

    def test_failing_suite_details(self, capsys, buggy_file):
        assert main(["test", "assignment1", buggy_file]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out


class TestEpdg:
    def test_text_output(self, capsys, reference_file):
        assert main(["epdg", "assignment1", reference_file]) == 0
        out = capsys.readouterr().out
        assert "EPDG of assignment1" in out
        assert "[Cond]" in out

    def test_dot_output(self, capsys, reference_file):
        assert main(["epdg", "assignment1", reference_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestExportKb:
    def test_export_writes_all_files(self, capsys, tmp_path):
        out_dir = tmp_path / "kb"
        assert main(["export-kb", str(out_dir)]) == 0
        patterns = list((out_dir / "patterns").glob("*.json"))
        assignments = list((out_dir / "assignments").glob("*.json"))
        assert len(patterns) == 24
        assert len(assignments) == 12

    def test_exported_pattern_round_trips(self, tmp_path):
        from repro.patterns import pattern_from_dict
        out_dir = tmp_path / "kb"
        main(["export-kb", str(out_dir)])
        payload = json.loads(
            (out_dir / "patterns" / "seq-odd-access.json").read_text()
        )
        pattern = pattern_from_dict(payload)
        assert pattern.name == "seq-odd-access"
        assert len(pattern.nodes) == 6

    def test_exported_assignment_references_known_patterns(self, tmp_path):
        from repro.kb import all_patterns
        out_dir = tmp_path / "kb"
        main(["export-kb", str(out_dir)])
        payload = json.loads(
            (out_dir / "assignments" / "assignment1.json").read_text()
        )
        known = set(all_patterns())
        for method in payload["expected_methods"]:
            for entry in method["patterns"]:
                assert entry["pattern"] in known


class TestRepairCli:
    @pytest.fixture()
    def corpus_dir(self, tmp_path):
        cache = tmp_path / "cache"
        assert main(["repair", "corpus", "build", "assignment1",
                     "--cache-dir", str(cache),
                     "--synth-samples", "2"]) == 0
        return cache

    def test_corpus_build_reports_counts(self, capsys, corpus_dir):
        out = capsys.readouterr().out
        assert "built repair corpus for assignment1" in out
        assert "reference" in out and "synthetic" in out

    def test_corpus_info_after_build(self, capsys, corpus_dir):
        capsys.readouterr()
        assert main(["repair", "corpus", "info", "assignment1",
                     "--cache-dir", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "verified solutions" in out
        assert "repair records in scope" in out

    def test_corpus_info_before_build(self, capsys, tmp_path):
        assert main(["repair", "corpus", "info", "assignment1",
                     "--cache-dir", str(tmp_path / "empty")]) == 0
        assert "corpus: not built" in capsys.readouterr().out

    def test_grade_batch_repair_renders_suggestion(
        self, capsys, tmp_path, corpus_dir
    ):
        capsys.readouterr()
        buggy = get_assignment("assignment1").reference_solutions[0]
        path = tmp_path / "Wrong.java"
        path.write_text(buggy.replace("i % 2 == 1", "i % 2 == 0"))
        assert main(["grade-batch", "assignment1", str(path),
                     "--repair", "--cache-dir", str(corpus_dir),
                     "--render", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Suggested fix" in out
        assert "repair.suggestions" in out

    def test_store_info_counts_repair_records(
        self, capsys, corpus_dir
    ):
        capsys.readouterr()
        assert main(["store", "info", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "repair:" in out
