"""Unit tests for the public grading API."""

import pytest

from repro import FeedbackEngine, FeedbackStatus, get_assignment
from repro.java import parse_submission
from repro.kb.assignments.assignment1 import FIGURE_2B


class TestFeedbackEngine:
    def test_grade_source(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert report.ok and report.is_positive

    def test_grade_parse_error(self, engine1):
        report = engine1.grade("void assignment1(int[] a) { int = ; }")
        assert not report.ok
        assert report.parse_error is not None
        assert not report.is_positive
        assert report.score == 0.0
        assert "does not compile" in report.render()

    def test_grade_unit(self, engine1):
        report = engine1.grade_unit(parse_submission(FIGURE_2B))
        assert report.is_positive

    def test_grade_graphs(self, engine1):
        graphs = engine1.extract(FIGURE_2B)
        report = engine1.grade_graphs(graphs)
        assert report.is_positive

    def test_engine_is_reusable_across_submissions(self, engine1):
        first = engine1.grade(FIGURE_2B)
        second = engine1.grade("void assignment1(int[] a) { }")
        third = engine1.grade(FIGURE_2B)
        assert first.is_positive and third.is_positive
        assert not second.is_positive


class TestGradingReport:
    def test_by_status(self, engine1):
        report = engine1.grade("void assignment1(int[] a) { }")
        assert report.by_status(FeedbackStatus.NOT_EXPECTED)
        assert report.by_status(FeedbackStatus.CORRECT) == []

    def test_score_bounds(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert 0 < report.score == report.max_score

    def test_render_contains_score_line(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert "Score:" in report.render()

    def test_render_is_student_readable(self, engine1):
        report = engine1.grade(FIGURE_2B)
        text = report.render()
        assert "[Correct]" in text
        assert "odd positions" in text


class TestPublicApi:
    def test_top_level_imports(self):
        import repro
        assert repro.__version__
        assert len(repro.all_assignment_names()) == 12
        assert len(repro.all_patterns()) == 24

    def test_assignment_helpers(self):
        assignment = get_assignment("assignment1")
        assert assignment.method_names() == ["assignment1"]
        assert assignment.pattern_count == 6

    def test_assignment_without_space(self):
        from repro.core import Assignment
        bare = Assignment(name="x", title="t", statement="s")
        with pytest.raises(ValueError, match="no submission space"):
            bare.space()
