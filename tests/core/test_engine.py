"""Unit tests for the public grading API."""

import pytest

from repro import FeedbackEngine, FeedbackStatus, get_assignment
from repro.instrumentation import collecting
from repro.java import parse_submission
from repro.kb.assignments.assignment1 import FIGURE_2B


class TestFeedbackEngine:
    def test_grade_source(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert report.ok and report.is_positive

    def test_grade_parse_error(self, engine1):
        report = engine1.grade("void assignment1(int[] a) { int = ; }")
        assert not report.ok
        assert report.parse_error is not None
        assert not report.is_positive
        assert report.score == 0.0
        assert "does not compile" in report.render()

    def test_grade_unit(self, engine1):
        report = engine1.grade_unit(parse_submission(FIGURE_2B))
        assert report.is_positive

    def test_grade_graphs(self, engine1):
        graphs = engine1.extract(FIGURE_2B)
        report = engine1.grade_graphs(graphs)
        assert report.is_positive

    def test_engine_is_reusable_across_submissions(self, engine1):
        first = engine1.grade(FIGURE_2B)
        second = engine1.grade("void assignment1(int[] a) { }")
        third = engine1.grade(FIGURE_2B)
        assert first.is_positive and third.is_positive
        assert not second.is_positive


class TestFrontendCache:
    def test_repeat_grades_hit_the_cache(self, assignment1):
        engine = FeedbackEngine(assignment1)
        first = engine.grade(FIGURE_2B)
        with collecting() as collector:
            second = engine.grade(FIGURE_2B)
        assert collector.counters.get("frontend.cache_hits") == 1
        assert "parse" not in collector.seconds
        assert "epdg_build" not in collector.seconds
        assert second.render() == first.render()

    def test_distinct_sources_miss(self, assignment1):
        engine = FeedbackEngine(assignment1)
        with collecting() as collector:
            engine.grade(FIGURE_2B)
            engine.grade("void assignment1(int[] a) { }")
        assert collector.counters.get("frontend.cache_misses") == 2
        assert "frontend.cache_hits" not in collector.counters

    def test_parse_errors_replay_identically(self, assignment1):
        engine = FeedbackEngine(assignment1)
        broken = "void assignment1(int[] a) { int = ; }"
        first = engine.grade(broken)
        with collecting() as collector:
            second = engine.grade(broken)
        assert collector.counters.get("frontend.cache_hits") == 1
        assert second.parse_error == first.parse_error
        assert second.render() == first.render()

    def test_frontend_returns_graphs_or_error_text(self, assignment1):
        engine = FeedbackEngine(assignment1)
        graphs = engine.frontend(FIGURE_2B)
        assert isinstance(graphs, dict) and "assignment1" in graphs
        error = engine.frontend("int = ;")
        assert isinstance(error, str) and "line" in error

    def test_cached_graphs_are_shared_not_copied(self, assignment1):
        engine = FeedbackEngine(assignment1)
        assert engine.frontend(FIGURE_2B) is engine.frontend(FIGURE_2B)

    def test_eviction_is_bounded_fifo(self, assignment1):
        engine = FeedbackEngine(assignment1, frontend_cache_size=2)
        sources = [
            f"void assignment1(int[] a) {{ int x{i} = {i}; }}"
            for i in range(3)
        ]
        for source in sources:
            engine.grade(source)
        with collecting() as collector:
            engine.grade(sources[0])  # evicted by the third insert
            engine.grade(sources[2])  # still resident
        assert collector.counters.get("frontend.cache_misses") == 1
        assert collector.counters.get("frontend.cache_hits") == 1

    def test_size_zero_disables_caching(self, assignment1):
        engine = FeedbackEngine(assignment1, frontend_cache_size=0)
        with collecting() as collector:
            engine.grade(FIGURE_2B)
            engine.grade(FIGURE_2B)
        assert "frontend.cache_hits" not in collector.counters
        assert "frontend.cache_misses" not in collector.counters
        assert collector.counts.get("parse") == 2
        assert collector.counts.get("epdg_build") == 2


class TestGradingReport:
    def test_by_status(self, engine1):
        report = engine1.grade("void assignment1(int[] a) { }")
        assert report.by_status(FeedbackStatus.NOT_EXPECTED)
        assert report.by_status(FeedbackStatus.CORRECT) == []

    def test_score_bounds(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert 0 < report.score == report.max_score

    def test_render_contains_score_line(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert "Score:" in report.render()

    def test_render_is_student_readable(self, engine1):
        report = engine1.grade(FIGURE_2B)
        text = report.render()
        assert "[Correct]" in text
        assert "odd positions" in text


class TestPublicApi:
    def test_top_level_imports(self):
        import repro
        assert repro.__version__
        assert len(repro.all_assignment_names()) == 12
        assert len(repro.all_patterns()) == 24

    def test_assignment_helpers(self):
        assignment = get_assignment("assignment1")
        assert assignment.method_names() == ["assignment1"]
        assert assignment.pattern_count == 6

    def test_assignment_without_space(self):
        from repro.core import Assignment
        bare = Assignment(name="x", title="t", statement="s")
        with pytest.raises(ValueError, match="no submission space"):
            bare.space()
