"""Tests for the SQLite store backend, migration, and crash safety.

The SQLite backend must honor the exact store contract the JSON layout
established — same envelope, same KB-fingerprint invalidation, same
corruption-as-miss forgiveness — while adding what JSON cannot: single
file, batched transactions, and in-place migration.  The crash drills
are the heart of it: a SIGKILL'd writer mid-transaction, a corrupted
database image, and a corrupted ``-wal`` sidecar must every one degrade
to cache misses, never to a wrong report.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time

import pytest

from repro.core.pipeline import BatchGrader, source_key
from repro.core.storage import ResultStore, resolve_backend
from repro.core.storage.migrate import migrate_to_sqlite
from repro.core.storage.sqlite_backend import database_path
from repro.kb import get_assignment


@pytest.fixture()
def store(assignment1, tmp_path):
    return ResultStore(tmp_path, assignment1, backend="sqlite")


def _report(assignment1, engine1):
    return engine1.grade(assignment1.reference_solutions[0])


class TestBackendResolution:
    def test_directory_defaults_to_json(self, tmp_path):
        assert resolve_backend(tmp_path) == "json"

    def test_database_file_in_directory_flips_auto(self, tmp_path):
        (tmp_path / "store.sqlite").touch()
        assert resolve_backend(tmp_path) == "sqlite"

    def test_database_suffix_resolves_sqlite(self, tmp_path):
        assert resolve_backend(tmp_path / "cache.sqlite") == "sqlite"
        assert resolve_backend(tmp_path / "cache.db") == "sqlite"

    def test_explicit_backend_wins_over_detection(self, tmp_path):
        (tmp_path / "store.sqlite").touch()
        assert resolve_backend(tmp_path, "json") == "json"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            resolve_backend(tmp_path, "postgres")

    def test_store_exposes_backend_name(self, tmp_path, assignment1):
        assert ResultStore(tmp_path, assignment1).backend_name == "json"
        assert (
            ResultStore(tmp_path, assignment1, backend="sqlite").backend_name
            == "sqlite"
        )


class TestSqliteRoundTrip:
    def test_put_then_get(self, store, assignment1, engine1):
        report = _report(assignment1, engine1)
        assert store.put("k" * 64, report) is True
        loaded = store.get("k" * 64)
        assert loaded is not None
        assert loaded.to_dict() == report.to_dict()
        assert loaded.render() == report.render()

    def test_single_database_file(self, store, tmp_path, assignment1, engine1):
        store.put("a" * 64, _report(assignment1, engine1))
        store.put("b" * 64, _report(assignment1, engine1))
        files = [
            p for p in tmp_path.rglob("*")
            if p.is_file() and not p.name.startswith("store.sqlite")
        ]
        assert files == []  # no per-entry files, ever
        assert store.entry_count() == 2

    def test_missing_key_is_a_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.entry_count() == 0

    def test_cluster_records_round_trip(self, store):
        record = {"fingerprint": "f" * 64, "members": ["a", "b"]}
        assert store.put_cluster("f" * 64, record) is True
        assert store.get_cluster("f" * 64) == record

    def test_campaign_records_round_trip(self, store):
        record = {"digest": "d" * 64, "count": 10}
        assert store.put_campaign("c1/shard-00000000", record) is True
        assert store.get_campaign("c1/shard-00000000") == record
        assert store.get_campaign("c1/shard-00000001") is None

    def test_cluster_link_round_trips(self, store, assignment1, engine1):
        report = _report(assignment1, engine1)
        store.put("d" * 64, report, cluster="f" * 64)
        assert store.cluster_key("d" * 64) == "f" * 64
        store.put("e" * 64, report)
        assert store.cluster_key("e" * 64) is None

    def test_kb_change_invalidates_entries(
        self, tmp_path, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        old = ResultStore(tmp_path, assignment1, backend="sqlite")
        old.put("f" * 64, report)
        changed = dataclasses.replace(
            assignment1,
            synthesize_else_conditions=(
                not assignment1.synthesize_else_conditions
            ),
        )
        new = ResultStore(tmp_path, changed, backend="sqlite")
        assert new.get("f" * 64) is None
        assert old.get("f" * 64) is not None

    def test_assignments_do_not_collide(self, tmp_path, engine1):
        a1 = get_assignment("assignment1")
        a2 = get_assignment("esc-LAB-3-P1-V1")
        report = engine1.grade(a1.reference_solutions[0])
        ResultStore(tmp_path, a1, backend="sqlite").put("a" * 64, report)
        assert (
            ResultStore(tmp_path, a2, backend="sqlite").get("a" * 64) is None
        )

    def test_concurrent_thread_writers(self, store, assignment1, engine1):
        report = _report(assignment1, engine1)
        failures: list[str] = []

        def write(i: int) -> None:
            key = f"{i:02d}" + "0" * 62
            if not store.put(key, report):
                failures.append(key)

        threads = [
            threading.Thread(target=write, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert store.entry_count() == 16


class TestCrossBackendIdentity:
    def test_reports_byte_identical_across_backends(
        self, tmp_path, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        json_store = ResultStore(
            tmp_path / "json", assignment1, backend="json"
        )
        sqlite_store = ResultStore(
            tmp_path / "sqlite", assignment1, backend="sqlite"
        )
        key = source_key(assignment1.reference_solutions[0])
        assert json_store.put(key, report)
        assert sqlite_store.put(key, report)
        from_json = json_store.get(key)
        from_sqlite = sqlite_store.get(key)
        assert from_json.render() == from_sqlite.render()
        assert (
            json.dumps(from_json.to_dict(), sort_keys=True)
            == json.dumps(from_sqlite.to_dict(), sort_keys=True)
        )

    def test_envelopes_identical_across_backends(
        self, tmp_path, assignment1, engine1
    ):
        """The stored envelope itself is backend-independent — which is
        what makes migration a verbatim copy."""
        report = _report(assignment1, engine1)
        key = "a" * 64
        json_store = ResultStore(tmp_path, assignment1, backend="json")
        json_store.put(key, report)
        json_envelope = json.loads(json_store.path_for(key).read_text())
        sqlite_store = ResultStore(
            tmp_path / "db", assignment1, backend="sqlite"
        )
        sqlite_store.put(key, report)
        sqlite_envelope = sqlite_store.backend.read("entry", key)
        assert json_envelope == sqlite_envelope


class TestBatch:
    def test_batch_commits_all_writes(self, store, assignment1, engine1):
        report = _report(assignment1, engine1)
        with store.batch():
            for i in range(8):
                assert store.put(f"{i:02d}" + "a" * 62, report)
        reader = ResultStore(store.root, assignment1, backend="sqlite")
        assert reader.entry_count() == 8

    def test_exception_rolls_back_the_batch(
        self, store, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        with pytest.raises(RuntimeError):
            with store.batch():
                store.put("1" * 64, report)
                store.put("2" * 64, report)
                raise RuntimeError("boom")
        reader = ResultStore(store.root, assignment1, backend="sqlite")
        assert reader.get("1" * 64) is None
        assert reader.get("2" * 64) is None
        assert reader.entry_count() == 0
        # the store recovers: the next write lands normally
        assert store.put("3" * 64, report)
        assert reader.entry_count() == 1

    def test_json_backend_batch_is_a_noop(self, tmp_path, assignment1,
                                          engine1):
        store = ResultStore(tmp_path, assignment1, backend="json")
        with store.batch():
            store.put("a" * 64, _report(assignment1, engine1))
        assert store.entry_count() == 1


_CRASH_WRITER = """
import os, sys, time
sys.path.insert(0, {src!r})
from repro.core.storage import ResultStore
from repro.core.report import GradingReport
from repro.kb import get_assignment

assignment = get_assignment("assignment1")
store = ResultStore({root!r}, assignment, backend="sqlite")
report = GradingReport(assignment_name=assignment.name)
batch = store.batch()
batch.__enter__()
for i in range(50):
    store.put(f"{{i:02d}}" + "c" * 62, report)
print("READY", flush=True)
time.sleep(30)  # killed here, mid-transaction
"""


class TestCrashSafety:
    def test_sigkilled_writer_mid_transaction_reads_as_misses(
        self, tmp_path, assignment1
    ):
        """Kill -9 a writer inside an open batch: nothing it wrote is
        visible, and the database stays fully usable."""
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = _CRASH_WRITER.format(src=src, root=str(tmp_path))
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "READY" in line, proc.stderr.read()
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        store = ResultStore(tmp_path, assignment1, backend="sqlite")
        for i in range(50):
            assert store.get(f"{i:02d}" + "c" * 62) is None
        assert store.entry_count() == 0
        # and the database is not wedged: new writes land
        from repro.core.report import GradingReport

        assert store.put(
            "d" * 64, GradingReport(assignment_name=assignment1.name)
        )
        assert store.entry_count() == 1

    def test_corrupt_database_image_degrades_to_misses(
        self, tmp_path, assignment1, engine1
    ):
        store = ResultStore(tmp_path, assignment1, backend="sqlite")
        store.put("a" * 64, _report(assignment1, engine1))
        store.backend._discard_connection()  # checkpoint WAL into the db
        db = database_path(tmp_path)
        db.write_bytes(b"this is not a sqlite database " * 64)
        for sidecar in ("-wal", "-shm"):
            (db.parent / (db.name + sidecar)).unlink(missing_ok=True)
        fresh = ResultStore(tmp_path, assignment1, backend="sqlite")
        assert fresh.get("a" * 64) is None
        assert fresh.entry_count() == 0

    def test_corrupt_wal_sidecar_never_yields_wrong_report(
        self, tmp_path, assignment1, engine1
    ):
        """Garbage in the ``-wal`` sidecar: reads either recover the
        committed state or miss — never a corrupted report."""
        store = ResultStore(tmp_path, assignment1, backend="sqlite")
        report = _report(assignment1, engine1)
        store.put("a" * 64, report)
        store.backend._discard_connection()  # checkpoint + close
        db = database_path(tmp_path)
        (db.parent / (db.name + "-wal")).write_bytes(os.urandom(4096))
        fresh = ResultStore(tmp_path, assignment1, backend="sqlite")
        loaded = fresh.get("a" * 64)
        assert loaded is None or loaded.to_dict() == report.to_dict()

    def test_truncated_entry_payload_is_a_miss(self, tmp_path, assignment1):
        """A torn row (truncated JSON in the entry column) is a miss."""
        store = ResultStore(tmp_path, assignment1, backend="sqlite")
        backend = store.backend
        conn = backend._connection()
        conn.execute(
            "INSERT INTO records (assignment, kb, kind, key, entry)"
            " VALUES (?, ?, ?, ?, ?)",
            (backend._assignment, backend._kb, "entry", "t" * 64,
             '{"schema": 1, "kb": "tr'),
        )
        conn.commit()
        assert store.get("t" * 64) is None


class TestMigration:
    def _populate(self, tmp_path, assignment1, engine1):
        store = ResultStore(tmp_path, assignment1, backend="json")
        report = _report(assignment1, engine1)
        keys = [f"{i:02d}" + "b" * 62 for i in range(6)]
        for key in keys:
            store.put(key, report, cluster="f" * 64)
        store.put_cluster("f" * 64, {"members": keys})
        store.put_repair("d" * 64, {"source": "void m() {}", "origin": "x"})
        store.put_campaign("c1/header", {"shard_size": 100})
        return store, report, keys

    def test_migrate_copies_every_record_kind(
        self, tmp_path, assignment1, engine1
    ):
        _, report, keys = self._populate(tmp_path, assignment1, engine1)
        stats = migrate_to_sqlite(tmp_path)
        assert stats.migrated == {
            "entry": 6, "cluster": 1, "repair": 1, "campaign": 1,
        }
        assert stats.skipped == 0
        migrated = ResultStore(tmp_path, assignment1, backend="sqlite")
        for key in keys:
            assert migrated.get(key).to_dict() == report.to_dict()
            assert migrated.cluster_key(key) == "f" * 64
        assert migrated.get_cluster("f" * 64) == {"members": keys}
        assert migrated.get_repair("d" * 64) == {
            "source": "void m() {}", "origin": "x",
        }
        assert migrated.get_campaign("c1/header") == {"shard_size": 100}

    def test_migration_flips_auto_detection(
        self, tmp_path, assignment1, engine1
    ):
        _, report, keys = self._populate(tmp_path, assignment1, engine1)
        assert ResultStore(tmp_path, assignment1).backend_name == "json"
        migrate_to_sqlite(tmp_path)
        flipped = ResultStore(tmp_path, assignment1)
        assert flipped.backend_name == "sqlite"
        assert flipped.get(keys[0]).to_dict() == report.to_dict()

    def test_remove_json_deletes_migrated_files(
        self, tmp_path, assignment1, engine1
    ):
        self._populate(tmp_path, assignment1, engine1)
        migrate_to_sqlite(tmp_path, remove_json=True)
        assert list(tmp_path.rglob("*.json")) == []
        assert ResultStore(tmp_path, assignment1).entry_count() == 6

    def test_corrupt_entries_are_skipped_not_migrated(
        self, tmp_path, assignment1, engine1
    ):
        store, _, _ = self._populate(tmp_path, assignment1, engine1)
        store.path_for("ff" + "0" * 62).parent.mkdir(
            parents=True, exist_ok=True
        )
        store.path_for("ff" + "0" * 62).write_text("{torn")
        stats = migrate_to_sqlite(tmp_path)
        assert stats.skipped == 1
        assert stats.migrated["entry"] == 6

    def test_migration_is_idempotent(self, tmp_path, assignment1, engine1):
        self._populate(tmp_path, assignment1, engine1)
        first = migrate_to_sqlite(tmp_path)
        second = migrate_to_sqlite(tmp_path)
        assert first.total == second.total
        assert ResultStore(tmp_path, assignment1).entry_count() == 6

    def test_empty_root_still_creates_database(self, tmp_path):
        stats = migrate_to_sqlite(tmp_path)
        assert stats.total == 0
        assert database_path(tmp_path).is_file()
        assert resolve_backend(tmp_path) == "sqlite"


class TestJsonSkipUnchangedWrite:
    def test_identical_rewrite_skips_the_replace(
        self, tmp_path, assignment1, engine1
    ):
        store = ResultStore(tmp_path, assignment1, backend="json")
        report = _report(assignment1, engine1)
        assert store.put("a" * 64, report)
        path = store.path_for("a" * 64)
        before = path.stat()
        time.sleep(0.01)  # let any rewrite move mtime_ns
        assert store.put("a" * 64, report) is True
        after = path.stat()
        assert (before.st_ino, before.st_mtime_ns) == (
            after.st_ino, after.st_mtime_ns
        )

    def test_changed_entry_is_rewritten(self, tmp_path, assignment1,
                                        engine1):
        store = ResultStore(tmp_path, assignment1, backend="json")
        report = _report(assignment1, engine1)
        store.put("a" * 64, report)
        path = store.path_for("a" * 64)
        before = path.stat().st_ino
        store.put("a" * 64, report, cluster="f" * 64)  # different envelope
        assert store.cluster_key("a" * 64) == "f" * 64
        assert path.stat().st_ino != before


class TestPipelineIntegration:
    def test_batch_grader_store_backend_kwarg(
        self, tmp_path, assignment1
    ):
        grader = BatchGrader(
            assignment1, store=tmp_path, store_backend="sqlite"
        )
        good = assignment1.reference_solutions[0]
        result = grader.grade_batch([good])
        assert result.stats.counters.get("cache.store_writes") == 1
        assert database_path(tmp_path).is_file()
        warm = BatchGrader(
            assignment1, store=tmp_path, store_backend="sqlite"
        )
        replay = warm.grade_batch([good])
        assert replay.stats.counters.get("cache.store_hits") == 1
        assert replay.stats.graded == 0
        assert replay.rendered() == result.rendered()

    def test_process_mode_cluster_workers_share_sqlite_store(
        self, tmp_path, assignment1
    ):
        store = ResultStore(tmp_path, assignment1, backend="sqlite")
        grader = BatchGrader(
            assignment1, mode="process", workers=2, store=store,
            cluster=True,
        )
        good = assignment1.reference_solutions[0]
        cohort = [(f"s{i}", good + f"\n// v{i}") for i in range(4)]
        result = grader.grade_batch(cohort)
        assert [r.status for r in result.reports] == ["ok"] * 4
        serial = BatchGrader(assignment1).grade_batch(cohort)
        assert result.rendered() == serial.rendered()

    def test_sqlite3_module_is_importable(self):
        """CI guard: the interpreter must ship the sqlite3 extension."""
        assert sqlite3.sqlite_version_info >= (3, 7, 0)  # WAL support
