"""Tests for the persistent cross-process result store.

The store's contract is deliberately forgiving: anything it cannot
fully read and validate is a miss, writes race benignly, and a changed
knowledge base invalidates by landing in a different fingerprint
directory.  Every one of those claims gets a test here, plus the
pipeline integration (counters, promotion into the in-memory cache, and
the no-reuse ``cache=False`` baseline staying store-free).
"""

from __future__ import annotations

import dataclasses
import json
import threading

import pytest

from repro.core.pipeline import BatchGrader, source_key
from repro.core.report import GradingReport
from repro.core.store import (
    SCHEMA_VERSION,
    ResultStore,
    kb_fingerprint,
    _safe_component,
)
from repro.kb import get_assignment


@pytest.fixture()
def store(assignment1, tmp_path):
    return ResultStore(tmp_path, assignment1)


def _report(assignment1, engine1):
    return engine1.grade(assignment1.reference_solutions[0])


class TestRoundTrip:
    def test_put_then_get(self, store, assignment1, engine1):
        report = _report(assignment1, engine1)
        assert store.put("k" * 64, report) is True
        loaded = store.get("k" * 64)
        assert loaded is not None
        assert loaded.to_dict() == report.to_dict()
        assert loaded.render() == report.render()

    def test_missing_key_is_a_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.entry_count() == 0

    def test_entries_are_sharded_by_key_prefix(
        self, store, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        store.put("ab" + "0" * 62, report)
        store.put("cd" + "0" * 62, report)
        assert store.path_for("ab" + "0" * 62).parent.name == "ab"
        assert store.entry_count() == 2

    def test_overwrite_is_idempotent(self, store, assignment1, engine1):
        report = _report(assignment1, engine1)
        store.put("e" * 64, report)
        store.put("e" * 64, report)
        assert store.entry_count() == 1
        assert store.get("e" * 64).to_dict() == report.to_dict()


class TestKbVersioning:
    def test_fingerprint_is_deterministic(self, assignment1):
        assert kb_fingerprint(assignment1) == kb_fingerprint(assignment1)

    def test_fingerprint_tracks_matching_flags(self, assignment1):
        changed = dataclasses.replace(
            assignment1,
            synthesize_else_conditions=(
                not assignment1.synthesize_else_conditions
            ),
        )
        assert kb_fingerprint(changed) != kb_fingerprint(assignment1)

    def test_fingerprint_ignores_reference_solutions(self, assignment1):
        changed = dataclasses.replace(
            assignment1, reference_solutions=["int f() { return 0; }"]
        )
        assert kb_fingerprint(changed) == kb_fingerprint(assignment1)

    def test_kb_change_invalidates_entries(
        self, tmp_path, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        old = ResultStore(tmp_path, assignment1)
        old.put("f" * 64, report)
        changed = dataclasses.replace(
            assignment1,
            synthesize_else_conditions=(
                not assignment1.synthesize_else_conditions
            ),
        )
        new = ResultStore(tmp_path, changed)
        assert new.get("f" * 64) is None
        # the old entries are untouched, just unreachable
        assert old.get("f" * 64) is not None

    def test_assignments_do_not_collide(self, tmp_path, engine1):
        a1 = get_assignment("assignment1")
        a2 = get_assignment("esc-LAB-3-P1-V1")
        report = engine1.grade(a1.reference_solutions[0])
        ResultStore(tmp_path, a1).put("a" * 64, report)
        assert ResultStore(tmp_path, a2).get("a" * 64) is None

    def test_unsafe_assignment_names_become_safe_paths(self):
        assert _safe_component("../../etc/passwd") == ".._.._etc_passwd"
        assert _safe_component("") == "_"


class TestCorruptionTolerance:
    def _stored(self, store, assignment1, engine1):
        key = "c" * 64
        store.put(key, _report(assignment1, engine1))
        return key, store.path_for(key)

    def test_truncated_entry_is_a_miss(self, store, assignment1, engine1):
        key, path = self._stored(store, assignment1, engine1)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(key) is None

    def test_garbage_entry_is_a_miss(self, store, assignment1, engine1):
        key, path = self._stored(store, assignment1, engine1)
        path.write_bytes(b"\x00\xffnot json at all")
        assert store.get(key) is None

    def test_empty_entry_is_a_miss(self, store, assignment1, engine1):
        key, path = self._stored(store, assignment1, engine1)
        path.write_text("")
        assert store.get(key) is None

    def test_schema_mismatch_is_a_miss(self, store, assignment1, engine1):
        key, path = self._stored(store, assignment1, engine1)
        entry = json.loads(path.read_text())
        entry["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(key) is None

    def test_key_mismatch_is_a_miss(self, store, assignment1, engine1):
        key, path = self._stored(store, assignment1, engine1)
        entry = json.loads(path.read_text())
        entry["key"] = "d" * 64
        path.write_text(json.dumps(entry))
        assert store.get(key) is None

    def test_undecodable_report_is_a_miss(self, store, assignment1, engine1):
        key, path = self._stored(store, assignment1, engine1)
        entry = json.loads(path.read_text())
        entry["report"] = {"nonsense": True}
        path.write_text(json.dumps(entry))
        assert store.get(key) is None

    def test_unwritable_root_fails_softly(
        self, tmp_path, assignment1, engine1
    ):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the store wants a directory")
        store = ResultStore(blocker, assignment1)
        assert store.put("b" * 64, _report(assignment1, engine1)) is False
        assert store.get("b" * 64) is None


class TestConcurrentWriters:
    def test_racing_writers_leave_readable_entries(
        self, store, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        keys = [f"{i:02x}" * 32 for i in range(16)]
        errors: list[Exception] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(25):
                    key = keys[(seed + i) % len(keys)]
                    assert store.put(key, report) is True
                    loaded = store.get(key)
                    # a concurrent writer may be mid-replace, but the
                    # atomic rename means we see a full entry or a miss,
                    # never a torn read
                    if loaded is not None:
                        assert loaded.to_dict() == report.to_dict()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.entry_count() == len(keys)
        for key in keys:
            assert store.get(key).to_dict() == report.to_dict()

    def test_no_stray_temp_files_after_racing(
        self, store, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        threads = [
            threading.Thread(
                target=lambda: [
                    store.put("9" * 64, report) for _ in range(20)
                ]
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        leftovers = list(store.root.rglob("*.tmp"))
        assert leftovers == []


class TestPipelineIntegration:
    def _cohort(self, assignment1):
        good = assignment1.reference_solutions[0]
        return [
            ("alice", good),
            ("bob", good),  # duplicate: served by the in-memory cache
            ("carol", "int x = ;"),  # parse error: cacheable
        ]

    def test_cold_run_writes_then_fresh_grader_reads(
        self, tmp_path, assignment1
    ):
        cohort = self._cohort(assignment1)
        first = BatchGrader(assignment1, store=tmp_path).grade_batch(cohort)
        assert first.stats.graded == 2
        assert first.stats.counters["cache.store_misses"] == 2
        assert first.stats.counters["cache.store_writes"] == 2

        second = BatchGrader(assignment1, store=tmp_path).grade_batch(cohort)
        assert second.stats.graded == 0
        assert second.stats.cache_hits == 3
        assert second.stats.counters["cache.store_hits"] == 2
        assert "match.cache_misses" not in second.stats.counters
        assert second.rendered() == first.rendered()

    def test_store_accepts_a_path_or_an_instance(
        self, tmp_path, assignment1
    ):
        cohort = self._cohort(assignment1)
        BatchGrader(assignment1, store=str(tmp_path)).grade_batch(cohort)
        explicit = ResultStore(tmp_path, assignment1)
        result = BatchGrader(
            assignment1, store=explicit
        ).grade_batch(cohort)
        assert result.stats.counters["cache.store_hits"] == 2

    def test_no_cache_baseline_never_touches_the_store(
        self, tmp_path, assignment1
    ):
        cohort = self._cohort(assignment1)
        BatchGrader(assignment1, store=tmp_path).grade_batch(cohort)
        result = BatchGrader(
            assignment1, cache=False, store=tmp_path
        ).grade_batch(cohort)
        assert result.stats.graded == 3
        assert not any(
            name.startswith("cache.store")
            for name in result.stats.counters
        )

    def test_timeouts_are_never_persisted(self, tmp_path, assignment1):
        grader = BatchGrader(
            assignment1, store=tmp_path, max_seconds=1e-9
        )
        result = grader.grade_batch(self._cohort(assignment1))
        assert result.stats.timeouts > 0
        assert all(
            item.report.status == "timeout" for item in result.items
        )
        assert grader.store.entry_count() == 0

    def test_store_key_is_the_pipeline_source_key(
        self, tmp_path, assignment1
    ):
        good = assignment1.reference_solutions[0]
        grader = BatchGrader(assignment1, store=tmp_path)
        grader.grade_batch([("a", good)])
        assert grader.store.get(source_key(good)) is not None


@pytest.mark.slow
class TestConcurrentWritersStress:
    def test_many_processes_worth_of_threads(
        self, store, assignment1, engine1
    ):
        report = _report(assignment1, engine1)
        keys = [f"{i:02x}" * 32 for i in range(64)]
        barrier = threading.Barrier(24)
        errors: list[Exception] = []

        def hammer(seed: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i in range(60):
                    key = keys[(seed * 7 + i) % len(keys)]
                    store.put(key, report)
                    loaded = store.get(key)
                    if loaded is not None:
                        assert loaded.to_dict() == report.to_dict()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(24)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.entry_count() == len(keys)


class TestPerfScoping:
    """Perf-enabled runs must never contaminate plain or repair caches."""

    def test_fingerprints_are_disjoint(self, assignment1, tmp_path):
        from repro.core.store import perf_fingerprint, repair_fingerprint

        plain = ResultStore(tmp_path, assignment1)
        perf = ResultStore(tmp_path, assignment1, perf=True)
        both = ResultStore(tmp_path, assignment1, repair=True, perf=True)
        assert perf.fingerprint == perf_fingerprint(
            plain.kb, assignment1.perf
        )
        assert both.fingerprint == perf_fingerprint(
            repair_fingerprint(plain.kb), assignment1.perf
        )
        assert len({
            plain.fingerprint, perf.fingerprint, both.fingerprint,
        }) == 3

    def test_perf_write_is_invisible_to_plain_store(
        self, assignment1, engine1, tmp_path
    ):
        report = _report(assignment1, engine1)
        scoped = ResultStore(tmp_path, assignment1, perf=True)
        assert scoped.put("b" * 64, report)
        assert ResultStore(tmp_path, assignment1).get("b" * 64) is None
        assert scoped.get("b" * 64) is not None

    def test_fingerprint_tracks_spec_changes(self, assignment1, tmp_path):
        import dataclasses as dc

        from repro.core.store import perf_fingerprint

        spec = assignment1.perf
        assert spec is not None
        changed = dc.replace(spec, size_metric="int-value")
        assert perf_fingerprint("kb", spec) != perf_fingerprint(
            "kb", changed
        )
        assert perf_fingerprint("kb", spec) == perf_fingerprint("kb", spec)

    def test_grader_rejects_mismatched_store_scope(
        self, assignment1, tmp_path
    ):
        plain = ResultStore(tmp_path, assignment1)
        with pytest.raises(ValueError, match="perf scope"):
            BatchGrader(assignment1, store=plain, perf=True)
        scoped = ResultStore(tmp_path, assignment1, perf=True)
        with pytest.raises(ValueError, match="perf scope"):
            BatchGrader(assignment1, store=scoped)
