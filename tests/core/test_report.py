"""Unit tests for GradingReport statuses and rendering."""

from __future__ import annotations

import json

from repro.core import GradingReport
from repro.matching.feedback import FeedbackComment, FeedbackStatus
from repro.matching.submission import MatchOutcome

BROKEN = "void assignment1(int[] a) { int = ; }"
EMPTY = "void assignment1(int[] a) { }"


def json_roundtrip(report: GradingReport) -> GradingReport:
    """to_dict → JSON wire → from_dict, as a service client would."""
    return GradingReport.from_dict(
        json.loads(json.dumps(report.to_dict()))
    )


class TestStatus:
    def test_ok(self, engine1, assignment1):
        report = engine1.grade(assignment1.reference_solutions[0])
        assert report.status == "ok"

    def test_rejected(self, engine1):
        report = engine1.grade(EMPTY)
        assert report.status == "rejected"
        assert report.ok  # graded, just not fully correct

    def test_parse_error(self, engine1):
        report = engine1.grade(BROKEN)
        assert report.status == "parse-error"
        assert not report.ok

    def test_internal_error(self):
        report = GradingReport(assignment_name="a", error="boom")
        assert report.status == "error"
        assert not report.ok

    def test_timeout(self):
        report = GradingReport(assignment_name="a", timeout="too slow")
        assert report.status == "timeout"
        assert not report.ok
        assert "time limit" in report.render()
        assert "too slow" in report.render()


class TestRenderDistinguishable:
    """Parse errors, match failures, and internal errors must not look
    alike (the satellite fix this PR carries)."""

    def test_headers_carry_the_status(self, engine1, assignment1):
        ok = engine1.grade(assignment1.reference_solutions[0]).render()
        rejected = engine1.grade(EMPTY).render()
        parse = engine1.grade(BROKEN).render()
        error = GradingReport(assignment_name="assignment1",
                              error="boom").render()
        assert "[ok]" in ok
        assert "[rejected]" in rejected
        assert "[parse-error]" in parse
        assert "[error]" in error

    def test_parse_error_render(self, engine1):
        text = engine1.grade(BROKEN).render()
        assert "does not compile" in text
        assert "Score:" not in text

    def test_match_failure_render_differs_from_parse_error(self, engine1):
        text = engine1.grade(EMPTY).render()
        assert "does not compile" not in text
        assert "Score:" in text

    def test_internal_error_render(self):
        text = GradingReport(assignment_name="a", error="boom").render()
        assert "internal error: boom" in text
        assert "does not compile" not in text


class TestToDict:
    def test_roundtrips_through_json(self, engine1, assignment1):
        import json

        report = engine1.grade(assignment1.reference_solutions[0])
        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["status"] == "ok"
        assert payload["score"] == report.score
        assert len(payload["comments"]) == len(report.comments)
        assert payload["comments"][0]["status"] == "Correct"

    def test_parse_error_payload(self, engine1):
        payload = engine1.grade(BROKEN).to_dict()
        assert payload["status"] == "parse-error"
        assert payload["parse_error"]
        assert payload["comments"] == []


class TestFromDict:
    """``from_dict`` must invert ``to_dict`` feedback-preservingly: a
    service client re-rendering a JSON report gets the same text the
    server would have rendered."""

    def test_ok_report_roundtrips(self, engine1, assignment1):
        report = engine1.grade(assignment1.reference_solutions[0])
        rebuilt = json_roundtrip(report)
        assert rebuilt.status == "ok"
        assert rebuilt.score == report.score
        assert rebuilt.render() == report.render()
        assert rebuilt.to_dict() == report.to_dict()

    def test_rejected_report_roundtrips(self, engine1):
        report = engine1.grade(EMPTY)
        rebuilt = json_roundtrip(report)
        assert rebuilt.status == "rejected"
        assert rebuilt.render() == report.render()
        # comment statuses survive as real enum members
        assert any(
            c.status is FeedbackStatus.INCORRECT
            or c.status is FeedbackStatus.NOT_EXPECTED
            for c in rebuilt.comments
        ) or not rebuilt.is_positive

    def test_parse_error_roundtrips(self, engine1):
        report = engine1.grade(BROKEN)
        rebuilt = json_roundtrip(report)
        assert rebuilt.status == "parse-error"
        assert rebuilt.render() == report.render()

    def test_timeout_roundtrips(self):
        report = GradingReport(
            assignment_name="assignment1",
            timeout="grading exceeded the 0.5s wall-clock limit",
        )
        rebuilt = json_roundtrip(report)
        assert rebuilt.status == "timeout"
        assert rebuilt.timeout == report.timeout
        assert rebuilt.render() == report.render()

    def test_error_roundtrips(self):
        report = GradingReport(assignment_name="a", error="boom")
        rebuilt = json_roundtrip(report)
        assert rebuilt.status == "error"
        assert rebuilt.render() == report.render()

    def test_truncated_flag_survives(self):
        comment = FeedbackComment(
            source="pattern",
            kind="presence",
            status=FeedbackStatus.CORRECT,
            message="looks right",
            details=("detail",),
        )
        report = GradingReport(
            assignment_name="a",
            outcome=MatchOutcome(
                comments=[comment],
                method_assignment={"m": "student_m"},
                score=1.0,
                truncated=True,
            ),
        )
        rebuilt = json_roundtrip(report)
        assert rebuilt.truncated
        assert "truncated" in rebuilt.render()
        assert rebuilt.render() == report.render()
        assert rebuilt.outcome.method_assignment == {"m": "student_m"}


class TestRepairCompat:
    """Reports serialized before the repair channel existed must load."""

    def _suggestion(self):
        from repro.repair import RepairEdit, RepairSuggestion

        return RepairSuggestion(
            candidate_key="c" * 64,
            origin="reference",
            distance=1.0,
            edits=(
                RepairEdit(
                    op="rewrite",
                    method="m",
                    node_type="Cond",
                    before="i <= n",
                    after="i < n",
                ),
            ),
            repaired_source="void m() {}",
        )

    def test_missing_repair_key_reads_as_no_suggestions(
        self, engine1, assignment1
    ):
        report = engine1.grade(assignment1.reference_solutions[0])
        legacy = report.to_dict()
        assert "repair" not in legacy  # channel off: byte-identical payload
        rebuilt = GradingReport.from_dict(legacy)
        assert rebuilt.repair == []
        assert rebuilt.render() == report.render()

    def test_legacy_payloads_load_for_every_status(self, engine1):
        for source in (BROKEN, EMPTY):
            payload = engine1.grade(source).to_dict()
            payload.pop("repair", None)
            assert GradingReport.from_dict(payload).repair == []

    def test_repair_round_trips(self, engine1):
        report = engine1.grade(EMPTY)
        report.repair.append(self._suggestion())
        rebuilt = json_roundtrip(report)
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.render() == report.render()
        assert rebuilt.repair[0].edits[0].op == "rewrite"

    def test_repair_promoted_when_other_channels_are_silent(self):
        report = GradingReport(
            assignment_name="a",
            outcome=MatchOutcome(
                comments=[], method_assignment={}, score=0.0
            ),
            repair=[self._suggestion()],
        )
        assert report.repair_is_primary
        assert "verified fix suggestion" in report.render()


class TestPerfChannel:
    @staticmethod
    def _diagnostic():
        from repro.analysis.diagnostics import Diagnostic, Severity

        return Diagnostic(
            check="perf.string-concat-in-loop",
            severity=Severity.WARNING,
            method="m",
            message="'s' grows by string concatenation inside this loop",
            line=3,
            column=5,
            snippet="s += x",
        )

    def test_missing_perf_key_reads_as_no_findings(
        self, engine1, assignment1
    ):
        report = engine1.grade(assignment1.reference_solutions[0])
        legacy = report.to_dict()
        assert "perf" not in legacy  # analyzer off: byte-identical payload
        rebuilt = GradingReport.from_dict(legacy)
        assert rebuilt.perf == []
        assert rebuilt.render() == report.render()

    def test_legacy_payloads_load_for_every_status(self, engine1):
        for source in (BROKEN, EMPTY):
            payload = engine1.grade(source).to_dict()
            payload.pop("perf", None)
            assert GradingReport.from_dict(payload).perf == []

    def test_perf_round_trips(self, engine1):
        report = engine1.grade(EMPTY)
        report.perf.append(self._diagnostic())
        rebuilt = json_roundtrip(report)
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.render() == report.render()
        assert rebuilt.perf[0].check == "perf.string-concat-in-loop"

    def test_render_includes_perf_section(self):
        report = GradingReport(
            assignment_name="a",
            outcome=MatchOutcome(
                comments=[], method_assignment={}, score=0.0
            ),
            perf=[self._diagnostic()],
        )
        rendered = report.render()
        assert "Performance observations" in rendered
        assert "string concatenation" in rendered
