"""Unit tests for GradingReport statuses and rendering."""

from __future__ import annotations

from repro.core import GradingReport

BROKEN = "void assignment1(int[] a) { int = ; }"
EMPTY = "void assignment1(int[] a) { }"


class TestStatus:
    def test_ok(self, engine1, assignment1):
        report = engine1.grade(assignment1.reference_solutions[0])
        assert report.status == "ok"

    def test_rejected(self, engine1):
        report = engine1.grade(EMPTY)
        assert report.status == "rejected"
        assert report.ok  # graded, just not fully correct

    def test_parse_error(self, engine1):
        report = engine1.grade(BROKEN)
        assert report.status == "parse-error"
        assert not report.ok

    def test_internal_error(self):
        report = GradingReport(assignment_name="a", error="boom")
        assert report.status == "error"
        assert not report.ok


class TestRenderDistinguishable:
    """Parse errors, match failures, and internal errors must not look
    alike (the satellite fix this PR carries)."""

    def test_headers_carry_the_status(self, engine1, assignment1):
        ok = engine1.grade(assignment1.reference_solutions[0]).render()
        rejected = engine1.grade(EMPTY).render()
        parse = engine1.grade(BROKEN).render()
        error = GradingReport(assignment_name="assignment1",
                              error="boom").render()
        assert "[ok]" in ok
        assert "[rejected]" in rejected
        assert "[parse-error]" in parse
        assert "[error]" in error

    def test_parse_error_render(self, engine1):
        text = engine1.grade(BROKEN).render()
        assert "does not compile" in text
        assert "Score:" not in text

    def test_match_failure_render_differs_from_parse_error(self, engine1):
        text = engine1.grade(EMPTY).render()
        assert "does not compile" not in text
        assert "Score:" in text

    def test_internal_error_render(self):
        text = GradingReport(assignment_name="a", error="boom").render()
        assert "internal error: boom" in text
        assert "does not compile" not in text


class TestToDict:
    def test_roundtrips_through_json(self, engine1, assignment1):
        import json

        report = engine1.grade(assignment1.reference_solutions[0])
        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["status"] == "ok"
        assert payload["score"] == report.score
        assert len(payload["comments"]) == len(report.comments)
        assert payload["comments"][0]["status"] == "Correct"

    def test_parse_error_payload(self, engine1):
        payload = engine1.grade(BROKEN).to_dict()
        assert payload["status"] == "parse-error"
        assert payload["parse_error"]
        assert payload["comments"] == []
