"""Unit tests for cohort analytics."""

import pytest

from repro.core.analytics import analyze_cohort
from repro.kb import get_assignment
from repro.kb.assignments.assignment1 import FIGURE_2A, FIGURE_2B
from repro.synth import sample_submissions


@pytest.fixture(scope="module")
def analysis():
    assignment = get_assignment("assignment1")
    sources = [
        ("reference", assignment.reference_solutions[0]),
        ("fig2a", FIGURE_2A),
        ("fig2b", FIGURE_2B),
    ]
    return analyze_cohort(assignment, sources)


class TestCohortAnalysis:
    def test_counts(self, analysis):
        assert analysis.size == 3
        assert analysis.positive_count == 2  # reference + fig2b
        assert analysis.negative_count == 1

    def test_labels_preserved(self, analysis):
        assert [o.label for o in analysis.outcomes] == \
            ["reference", "fig2a", "fig2b"]

    def test_tests_recorded(self, analysis):
        by_label = {o.label: o for o in analysis.outcomes}
        assert by_label["reference"].tests_passed is True
        assert by_label["fig2a"].tests_passed is False

    def test_figure_2b_is_the_classic_discrepancy(self, analysis):
        # Fig 2b prints both values in one comma-separated print: the
        # strict functional suite rejects it while the patterns accept
        # it — the paper's print-independence discrepancy, surfaced by
        # the analytics
        (discrepancy,) = analysis.discrepancies
        assert discrepancy.label == "fig2b"
        assert discrepancy.positive and not discrepancy.tests_passed
        assert analysis.discrepancy_rate == pytest.approx(1 / 3)

    def test_mistakes_aggregated(self, analysis):
        mistakes = dict(analysis.top_mistakes())
        assert any("seq-even-access" in key for key in mistakes)

    def test_rows_are_flat(self, analysis):
        rows = analysis.to_rows()
        assert len(rows) == 3
        assert set(rows[0]) == {
            "label", "positive", "tests_passed", "discrepancy",
            "score", "max_score",
        }

    def test_summary_text(self, analysis):
        text = analysis.summary()
        assert "3 submissions" in text
        assert "2 positive" in text
        assert "ms per submission" in text

    def test_timing_positive(self, analysis):
        assert analysis.grading_seconds > 0
        assert analysis.grading_ms_per_submission > 0


class TestCohortOptions:
    def test_plain_string_sources(self):
        assignment = get_assignment("assignment1")
        analysis = analyze_cohort(
            assignment, [assignment.reference_solutions[0]],
            run_tests=False,
        )
        assert analysis.outcomes[0].label == "#0"
        assert analysis.outcomes[0].tests_passed is None
        assert analysis.testing_seconds == 0.0

    def test_discrepancy_detection(self):
        # swapped prints: pattern-positive, test-failing
        assignment = get_assignment("assignment1")
        space = assignment.space()
        names = [cp.name for cp in space.choice_points]
        choices = [0] * len(names)
        choices[names.index("prints")] = 1
        swapped = space.submission(space.encode(choices)).source
        analysis = analyze_cohort(assignment, [swapped])
        assert len(analysis.discrepancies) == 1

    def test_synthetic_cohort_end_to_end(self):
        assignment = get_assignment("esc-LAB-3-P2-V2")
        cohort = [
            s.source for s in sample_submissions(
                assignment.space(), 30, seed=4
            )
        ]
        analysis = analyze_cohort(assignment, cohort)
        assert analysis.size == 30
        assert analysis.positive_count >= 1  # the reference is included
        # paper Table I: this assignment has no discrepancies
        assert analysis.discrepancies == []

    def test_empty_cohort(self):
        assignment = get_assignment("assignment1")
        analysis = analyze_cohort(assignment, [])
        assert analysis.size == 0
        assert analysis.discrepancy_rate == 0.0
        assert analysis.grading_ms_per_submission == 0.0
