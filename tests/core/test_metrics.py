"""Unit tests for PipelineStats and the phase-timing instrumentation."""

from __future__ import annotations

import doctest
import time

import pytest

import repro.core.metrics
import repro.core.pipeline
from repro.core.metrics import PipelineStats
from repro.instrumentation import (
    DeadlineExceeded,
    PhaseCollector,
    active_collector,
    active_deadline,
    check_deadline,
    collecting,
    deadline,
    phase,
)


class TestPhaseCollector:
    def test_add_accumulates(self):
        collector = PhaseCollector()
        collector.add("parse", 0.1)
        collector.add("parse", 0.2)
        assert collector.seconds["parse"] == 0.1 + 0.2
        assert collector.counts["parse"] == 2

    def test_merge(self):
        first, second = PhaseCollector(), PhaseCollector()
        first.add("parse", 0.1)
        second.add("parse", 0.2)
        second.add("epdg_build", 0.3)
        first.merge(second)
        assert first.seconds["parse"] == 0.1 + 0.2
        assert first.counts["epdg_build"] == 1


class TestPhaseContext:
    def test_noop_without_collector(self):
        assert active_collector() is None
        with phase("parse"):
            pass  # must not raise, must not record anywhere

    def test_records_into_ambient_collector(self):
        with collecting() as collector:
            with phase("parse"):
                pass
        assert collector.counts["parse"] == 1
        assert collector.seconds["parse"] >= 0

    def test_records_on_exception(self):
        try:
            with collecting() as collector:
                with phase("parse"):
                    raise ValueError("boom")
        except ValueError:
            pass
        assert collector.counts["parse"] == 1

    def test_collector_uninstalled_after_block(self):
        with collecting():
            assert active_collector() is not None
        assert active_collector() is None

    def test_engine_phases_are_captured(self, engine1, assignment1):
        with collecting() as collector:
            engine1.grade(assignment1.reference_solutions[0])
        for name in ("parse", "epdg_build", "pattern_match",
                     "constraint_match"):
            assert name in collector.seconds


class TestPipelineStats:
    def test_counters(self):
        stats = PipelineStats()
        stats.record_submission(seconds=0.2)
        stats.record_submission(cache_hit=True)
        stats.record_submission(seconds=0.1, parse_error=True)
        stats.record_submission(seconds=0.1, error=True)
        assert stats.submissions == 4
        assert stats.graded == 3
        assert stats.cache_hits == 1
        assert stats.parse_errors == 1
        assert stats.errors == 1
        assert stats.cache_hit_rate == 0.25

    def test_throughput(self):
        stats = PipelineStats()
        stats.record_submission()
        stats.record_submission()
        stats.wall_seconds = 0.5
        assert stats.throughput == 4.0

    def test_zero_division_guards(self):
        stats = PipelineStats()
        assert stats.cache_hit_rate == 0.0
        assert stats.throughput == 0.0
        assert stats.grading_ms_per_submission == 0.0

    def test_merge_phases(self):
        stats = PipelineStats()
        collector = PhaseCollector()
        collector.add("parse", 0.25)
        stats.merge_phases(collector)
        stats.merge_phases(collector)
        assert stats.phase_seconds["parse"] == 0.5
        assert stats.phase_counts["parse"] == 2

    def test_merge_runs(self):
        first = PipelineStats()
        first.record_submission(seconds=0.1)
        first.record_phase("parse", 0.1)
        first.wall_seconds = 1.0
        second = PipelineStats()
        second.record_submission(cache_hit=True)
        second.record_phase("parse", 0.2)
        second.wall_seconds = 0.5
        first.merge(second)
        assert first.submissions == 2
        assert first.cache_hits == 1
        assert first.wall_seconds == 1.5
        assert first.phase_seconds["parse"] == 0.1 + 0.2

    def test_to_dict_is_json_friendly(self):
        import json

        stats = PipelineStats(mode="thread", workers=2)
        stats.record_submission(seconds=0.1)
        stats.record_phase("parse", 0.05)
        stats.wall_seconds = 0.2
        payload = stats.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["phase_ms"]["parse"] == 50.0
        assert payload["mode"] == "thread"

    def test_summary_mentions_every_phase(self):
        stats = PipelineStats()
        stats.record_phase("parse", 0.1)
        stats.record_phase("custom_phase", 0.1)
        text = stats.summary()
        assert "parse" in text and "custom_phase" in text


class TestModuleDoctests:
    """The ISSUE requires the module docstrings to stay runnable."""

    def test_metrics_doctest(self):
        failures, tested = doctest.testmod(repro.core.metrics)
        assert tested > 0 and failures == 0

    def test_pipeline_doctest(self):
        failures, tested = doctest.testmod(repro.core.pipeline)
        assert tested > 0 and failures == 0


class TestDeadline:
    """Cooperative deadline primitives in repro.instrumentation."""

    def test_none_is_a_no_op(self):
        with deadline(None):
            assert active_deadline() is None
            check_deadline()  # never raises

    def test_expired_deadline_raises(self):
        with deadline(1e-9):
            time.sleep(0.002)
            with pytest.raises(DeadlineExceeded):
                check_deadline()

    def test_unexpired_deadline_passes(self):
        with deadline(60.0):
            check_deadline()

    def test_phase_checks_deadline_on_entry(self):
        with deadline(1e-9):
            time.sleep(0.002)
            with pytest.raises(DeadlineExceeded):
                with phase("parse"):
                    pass

    def test_nested_keeps_earliest_expiry(self):
        with deadline(60.0):
            outer = active_deadline()
            with deadline(1e-9):
                assert active_deadline() < outer
                time.sleep(0.002)
                with pytest.raises(DeadlineExceeded):
                    check_deadline()
            # inner scope popped; the outer budget is intact
            assert active_deadline() == outer
            check_deadline()

    def test_inner_cannot_extend_outer(self):
        with deadline(1e-9):
            tight = active_deadline()
            with deadline(3600.0):
                assert active_deadline() == tight

    def test_reset_after_block(self):
        with deadline(5.0):
            pass
        assert active_deadline() is None
        check_deadline()

    def test_limit_hint_in_message(self):
        error = DeadlineExceeded(2.5)
        assert "2.5" in str(error)
        assert error.limit_seconds == 2.5

    def test_engine_grade_times_out_under_expired_deadline(
        self, engine1, assignment1
    ):
        # the pipeline converts this into a timeout report; at the
        # engine level the exception itself escapes
        with deadline(1e-9):
            time.sleep(0.002)
            with pytest.raises(DeadlineExceeded):
                engine1.grade(assignment1.reference_solutions[0])
