"""Tests for the streaming campaign runner and its CLI surface.

The campaign runner's contract: grade a lazy stream in journaled
shards, resume an interrupted campaign with zero regrades, refuse to
resume when the journal and the stream disagree (shard size or shard
digest), and produce byte-identical shard outputs whichever store
backend holds the cache.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.campaign import (
    CampaignError,
    CampaignRunner,
    _shard_digest,
    iter_manifest,
    synthetic_stream,
)
from repro.core.metrics import PipelineStats
from repro.core.storage import ResultStore


@pytest.fixture(params=["json", "sqlite"])
def store(request, tmp_path, assignment1):
    return ResultStore(tmp_path / "store", assignment1,
                       backend=request.param)


def _cohort(assignment1, n=10):
    return list(synthetic_stream(assignment1, n, seed=7, unique=4))


class TestSyntheticStream:
    def test_deterministic_per_seed(self, assignment1):
        a = list(synthetic_stream(assignment1, 20, seed=3))
        b = list(synthetic_stream(assignment1, 20, seed=3))
        assert a == b
        assert a != list(synthetic_stream(assignment1, 20, seed=4))

    def test_bounded_pool_makes_duplicates(self, assignment1):
        items = list(synthetic_stream(assignment1, 50, seed=3, unique=5))
        assert len(items) == 50
        assert len({source for _, source in items}) <= 5
        assert len({label for label, _ in items}) == 50  # labels unique

    def test_lazy(self, assignment1):
        stream = synthetic_stream(assignment1, 10**9)
        assert next(stream)[0] == "synthetic-00000000"


class TestShardDigest:
    def test_order_and_content_sensitive(self):
        a = [("s1", "x"), ("s2", "y")]
        assert _shard_digest(a) == _shard_digest(list(a))
        assert _shard_digest(a) != _shard_digest(list(reversed(a)))
        assert _shard_digest(a) != _shard_digest([("s1", "x"), ("s2", "z")])

    def test_label_source_boundary_is_unambiguous(self):
        assert _shard_digest([("ab", "c")]) != _shard_digest([("a", "bc")])


class TestStatsRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        stats = PipelineStats(mode="thread", workers=3, submissions=10,
                              graded=7, cache_hits=3, wall_seconds=1.5)
        stats.phase_seconds["parse"] = 0.25
        stats.phase_counts["parse"] = 7
        stats.counters["cache.store_writes"] = 7
        restored = PipelineStats.from_dict(stats.to_dict())
        assert restored.to_dict() == stats.to_dict()


class TestCampaignRun:
    def test_grades_stream_in_shards(self, store, assignment1, tmp_path):
        runner = CampaignRunner(assignment1, store, shard_size=4)
        result = runner.run(_cohort(assignment1, 10), campaign_id="c1")
        assert result.completed
        assert result.shards_total == 3
        assert result.shards_graded == 3
        assert result.shards_resumed == 0
        assert result.submissions == 10
        assert result.stats.submissions == 10
        # the journal landed: header + one record per shard
        assert store.get_campaign("c1/header") is not None
        for i in range(3):
            assert store.get_campaign(f"c1/shard-{i:08d}") is not None

    def test_resume_finishes_with_zero_regrades(
        self, store, assignment1
    ):
        cohort = _cohort(assignment1, 10)
        runner = CampaignRunner(assignment1, store, shard_size=4)
        partial = runner.run(cohort, campaign_id="c1", max_shards=2)
        assert not partial.completed
        assert partial.shards_total == 2

        resumed = CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1"
        )
        assert resumed.completed
        assert resumed.shards_total == 3
        assert resumed.shards_resumed == 2
        assert resumed.shards_graded == 1
        # the zero-regrade property: this invocation graded only the
        # final shard's unseen work, and nothing from shards 0-1
        assert resumed.run_stats.submissions == 2
        # whole-campaign stats still cover everything
        assert resumed.stats.submissions == 10

    def test_full_rerun_grades_nothing(self, store, assignment1):
        cohort = _cohort(assignment1, 10)
        CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1"
        )
        rerun = CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1"
        )
        assert rerun.shards_resumed == 3
        assert rerun.shards_graded == 0
        assert rerun.run_stats.graded == 0
        assert rerun.run_stats.submissions == 0

    def test_no_resume_regrades_with_identical_output(
        self, store, assignment1, tmp_path
    ):
        cohort = _cohort(assignment1, 8)
        out1 = tmp_path / "out1"
        out2 = tmp_path / "out2"
        CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1", output_dir=out1
        )
        rerun = CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1", resume=False, output_dir=out2
        )
        assert rerun.shards_resumed == 0
        for name in ("shard-00000000.jsonl", "shard-00000001.jsonl"):
            assert (out1 / name).read_bytes() == (out2 / name).read_bytes()

    def test_digest_mismatch_refuses_to_resume(self, store, assignment1):
        cohort = _cohort(assignment1, 8)
        CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1", max_shards=1
        )
        changed = [(label, source + "\n// edited") for label, source in cohort]
        with pytest.raises(CampaignError, match="manifest changed"):
            CampaignRunner(assignment1, store, shard_size=4).run(
                changed, campaign_id="c1"
            )

    def test_shard_size_mismatch_refuses_to_resume(
        self, store, assignment1
    ):
        cohort = _cohort(assignment1, 8)
        CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1", max_shards=1
        )
        with pytest.raises(CampaignError, match="shard_size"):
            CampaignRunner(assignment1, store, shard_size=2).run(
                cohort, campaign_id="c1"
            )

    def test_campaign_id_is_validated(self, store, assignment1):
        runner = CampaignRunner(assignment1, store)
        for bad in ("../evil", "a/b", "", "sp ace"):
            with pytest.raises(CampaignError):
                runner.run([], campaign_id=bad)

    def test_resumed_shard_regenerates_missing_output(
        self, store, assignment1, tmp_path
    ):
        cohort = _cohort(assignment1, 8)
        out = tmp_path / "out"
        CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1", output_dir=out
        )
        first = (out / "shard-00000000.jsonl").read_bytes()
        (out / "shard-00000000.jsonl").unlink()
        resumed = CampaignRunner(assignment1, store, shard_size=4).run(
            cohort, campaign_id="c1", output_dir=out
        )
        assert resumed.run_stats.graded == 0  # replayed from the store
        assert (out / "shard-00000000.jsonl").read_bytes() == first

    def test_output_lines_are_labelled_reports(
        self, store, assignment1, tmp_path
    ):
        cohort = _cohort(assignment1, 3)
        out = tmp_path / "out"
        CampaignRunner(assignment1, store, shard_size=10).run(
            cohort, campaign_id="c1", output_dir=out
        )
        lines = (out / "shard-00000000.jsonl").read_text().splitlines()
        assert len(lines) == 3
        for line, (label, _) in zip(lines, cohort):
            record = json.loads(line)
            assert record["label"] == label
            assert len(record["key"]) == 64
            assert record["report"]["assignment"] == assignment1.name


class TestCrossBackendIdentity:
    def test_outputs_byte_identical_between_backends(
        self, assignment1, tmp_path
    ):
        cohort = _cohort(assignment1, 10)
        outputs = {}
        for backend in ("json", "sqlite"):
            store = ResultStore(tmp_path / backend, assignment1,
                                backend=backend)
            out = tmp_path / f"out-{backend}"
            CampaignRunner(assignment1, store, shard_size=4).run(
                cohort, campaign_id="c1", output_dir=out
            )
            outputs[backend] = b"".join(
                p.read_bytes() for p in sorted(out.glob("*.jsonl"))
            )
        assert outputs["json"] == outputs["sqlite"]
        assert outputs["json"]  # non-empty

    def test_campaign_resumes_across_backend_migration(
        self, assignment1, tmp_path
    ):
        from repro.core.storage.migrate import migrate_to_sqlite

        root = tmp_path / "store"
        cohort = _cohort(assignment1, 8)
        CampaignRunner(assignment1, str(root), shard_size=4).run(
            cohort, campaign_id="c1", max_shards=1
        )
        migrate_to_sqlite(root)
        # backend="auto" now resolves sqlite and the journal carries over
        runner = CampaignRunner(assignment1, str(root), shard_size=4)
        assert runner.store.backend_name == "sqlite"
        resumed = runner.run(cohort, campaign_id="c1")
        assert resumed.shards_resumed == 1


class TestIterManifest:
    def test_inline_sources(self, tmp_path, assignment1):
        path = tmp_path / "m.jsonl"
        good = assignment1.reference_solutions[0]
        path.write_text(
            json.dumps({"label": "s1", "source": good}) + "\n"
            + json.dumps({"source": good}) + "\n"
        )
        items = list(iter_manifest(path))
        assert items[0] == ("s1", good)
        assert items[1][0] == "line-00000002"  # default label

    def test_path_sources_resolve_relative_to_manifest(
        self, tmp_path, assignment1
    ):
        good = assignment1.reference_solutions[0]
        (tmp_path / "subs").mkdir()
        (tmp_path / "subs" / "a.java").write_text(good)
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"label": "a", "path": "subs/a.java"}) + "\n"
        )
        assert list(iter_manifest(path)) == [("a", good)]

    def test_bad_lines_raise_campaign_error(self, tmp_path):
        cases = [
            "not json\n",
            json.dumps(["a", "list"]) + "\n",
            json.dumps({"label": "x"}) + "\n",  # neither source nor path
            json.dumps({"label": "x", "path": "missing.java"}) + "\n",
        ]
        for i, content in enumerate(cases):
            path = tmp_path / f"m{i}.jsonl"
            path.write_text(content)
            with pytest.raises(CampaignError):
                list(iter_manifest(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("\n\n" + json.dumps({"source": "x"}) + "\n\n")
        assert len(list(iter_manifest(path))) == 1


class TestCampaignCli:
    def test_synthetic_campaign_checkpoint_then_resume(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        base = ["grade-campaign", "assignment1", "--synthetic", "10",
                "--cache-dir", cache, "--shard-size", "4",
                "--campaign-id", "cli", "--store-backend", "sqlite"]
        assert main(base + ["--max-shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "stopped" in out and "2 shards" in out

        assert main(base + ["--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] is True
        assert payload["shards_resumed"] == 2
        assert payload["shards_graded"] == 1
        assert payload["run_stats"]["graded"] <= 2

    def test_manifest_campaign_with_output(self, capsys, tmp_path,
                                           assignment1):
        good = assignment1.reference_solutions[0]
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            "".join(
                json.dumps({"label": f"s{i}", "source": good}) + "\n"
                for i in range(3)
            )
        )
        out_dir = tmp_path / "out"
        assert main([
            "grade-campaign", "assignment1", str(manifest),
            "--cache-dir", str(tmp_path / "cache"),
            "--output-dir", str(out_dir),
        ]) == 0
        assert (out_dir / "shard-00000000.jsonl").exists()
        assert "3 submissions" in capsys.readouterr().out

    def test_manifest_and_synthetic_are_exclusive(self, capsys, tmp_path):
        assert main([
            "grade-campaign", "assignment1",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert main([
            "grade-campaign", "assignment1", "whatever.jsonl",
            "--synthetic", "5",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 2

    def test_store_migrate_and_info(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["grade-campaign", "assignment1", "--synthetic", "5",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["store", "info", cache]) == 0
        assert "json" in capsys.readouterr().out
        assert main(["store", "migrate", cache, "--remove-json"]) == 0
        assert "sqlite" in capsys.readouterr().out
        assert main(["store", "info", cache]) == 0
        out = capsys.readouterr().out
        assert "sqlite" in out
