"""Every reference solution must pass its tests and grade fully positive."""

from repro.core import FeedbackEngine
from repro.matching import FeedbackStatus
from repro.testing import run_tests_on_source


class TestReferenceSolutions:
    def test_reference_passes_functional_tests(self, assignment):
        for reference in assignment.reference_solutions:
            report = run_tests_on_source(reference, assignment.tests)
            assert report.passed, (
                f"{assignment.name}: {report.summary()}"
            )

    def test_reference_grades_fully_positive(self, assignment):
        engine = FeedbackEngine(assignment)
        for reference in assignment.reference_solutions:
            report = engine.grade(reference)
            negatives = [
                c for c in report.comments
                if c.status is not FeedbackStatus.CORRECT
            ]
            assert report.is_positive, (
                f"{assignment.name}: " +
                "; ".join(f"{c.source}={c.status}" for c in negatives)
            )

    def test_reference_equals_space_index_zero(self, assignment):
        assert assignment.reference_solutions[0] == \
            assignment.space().reference.source

    def test_reference_score_is_maximal(self, assignment):
        engine = FeedbackEngine(assignment)
        report = engine.grade(assignment.reference_solutions[0])
        assert report.score == report.max_score > 0

    def test_grading_is_deterministic(self, assignment):
        engine = FeedbackEngine(assignment)
        first = engine.grade(assignment.reference_solutions[0])
        second = engine.grade(assignment.reference_solutions[0])
        assert [c.render() for c in first.comments] == \
            [c.render() for c in second.comments]
