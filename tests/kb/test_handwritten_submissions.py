"""Hand-written student-style submissions graded per assignment.

The synthetic corpus exercises the error-model axes; these tests grade
submissions written the way real students write them — different loop
styles, helper structure, and variable names — and assert both the
verdict and the specific feedback the instructor configured.
"""

import pytest

from repro.core import FeedbackEngine
from repro.kb import get_assignment
from repro.matching import FeedbackStatus
from repro.testing import run_tests_on_source


def engine(name):
    return FeedbackEngine(get_assignment(name))


def comment(report, source):
    return next(c for c in report.comments if c.source == source)


class TestEscLab3P1V1:
    def test_for_loop_factorial_style(self):
        source = """
        int fact(int m) {
            int f = 1;
            int i = 1;
            while (i <= m) {
                f = f * i;
                i += 1;
            }
            return f;
        }
        void lab3p1(int k) {
            int n = 0;
            while (!(fact(n) <= k && k < fact(n + 1)))
                n += 1;
            System.out.println(n);
        }
        """
        report = engine("esc-LAB-3-P1-V1").grade(source)
        assert report.is_positive, report.render()

    def test_wrong_factorial_seed_gets_seed_feedback(self):
        source = """
        int fact(int m) {
            int f = 0;
            int i = 1;
            while (i <= m) { f *= i; i++; }
            return f;
        }
        void lab3p1(int k) {
            int n = 0;
            while (!(fact(n) <= k && k < fact(n + 1)))
                n++;
            System.out.println(n);
        }
        """
        report = engine("esc-LAB-3-P1-V1").grade(source)
        factorial = comment(report, "factorial-loop")
        assert factorial.status is FeedbackStatus.INCORRECT
        assert any("must start at 1" in d for d in factorial.details)

    def test_printing_the_input_violates_print_constraint(self):
        source = """
        int fact(int m) {
            int f = 1;
            int i = 1;
            while (i <= m) { f *= i; i++; }
            return f;
        }
        void lab3p1(int k) {
            int n = 0;
            while (!(fact(n) <= k && k < fact(n + 1)))
                n++;
            System.out.println(k);
        }
        """
        report = engine("esc-LAB-3-P1-V1").grade(source)
        printed = comment(report, "result-counter-is-printed")
        assert printed.status is not FeedbackStatus.CORRECT


class TestEscLab3P2V2:
    def test_do_while_style_is_accepted(self):
        # digit loops written as do-while still satisfy every pattern:
        # the body runs unconditionally but the condition node and data
        # edges are present
        source = """
        void isSpecial(int k) {
            int s = 0;
            int n = k;
            while (n > 0) {
                int d = n % 10;
                s = s + d * d * d;
                n = n / 10;
            }
            if (s == k)
                System.out.println("special");
            else
                System.out.println("not special");
        }
        """
        report = engine("esc-LAB-3-P2-V2").grade(source)
        assert report.is_positive, report.render()

    def test_square_instead_of_cube_feedback(self):
        source = """
        void isSpecial(int k) {
            int s = 0;
            int n = k;
            while (n != 0) {
                int d = n % 10;
                s += d * d;
                n /= 10;
            }
            if (s == k)
                System.out.println("special");
            else
                System.out.println("not special");
        }
        """
        report = engine("esc-LAB-3-P2-V2").grade(source)
        cube = comment(report, "cube-sum")
        assert cube.status is FeedbackStatus.INCORRECT
        assert any("d * d * d" in d for d in cube.details)

    def test_consumed_copy_comparison_is_pattern_invisible(self):
        source = """
        void isSpecial(int k) {
            int s = 0;
            int n = k;
            while (n != 0) {
                int d = n % 10;
                s += d * d * d;
                n /= 10;
            }
            if (s == n)
                System.out.println("special");
            else
                System.out.println("not special");
        }
        """
        report = engine("esc-LAB-3-P2-V2").grade(source)
        # documented limit: the constraint can only see that the cube
        # sum participates in the comparison; the consumed copy on the
        # other side is pattern-invisible, so only functional testing
        # catches it (which is why the error model excludes this rule,
        # keeping the assignment at the paper's D = 0)
        check = comment(report, "comparison-uses-cube-sum")
        assert check.status is FeedbackStatus.CORRECT
        assignment = get_assignment("esc-LAB-3-P2-V2")
        assert not run_tests_on_source(source, assignment.tests).passed


class TestEscLab3P3V1:
    def test_different_variable_names(self):
        source = """
        void reverseDiff(int k) {
            int backwards = 0;
            int remaining = k;
            while (remaining != 0) {
                int digit = remaining % 10;
                backwards = backwards * 10 + digit;
                remaining /= 10;
            }
            int answer = k - backwards;
            System.out.println(answer);
        }
        """
        report = engine("esc-LAB-3-P3-V1").grade(source)
        assert report.is_positive, report.render()
        reverse = comment(report, "reverse-build")
        assert "backwards" in " ".join(reverse.details)

    def test_printing_the_reverse_not_the_difference(self):
        source = """
        void reverseDiff(int k) {
            int r = 0;
            int n = k;
            while (n != 0) {
                int d = n % 10;
                r = r * 10 + d;
                n /= 10;
            }
            int diff = k - r;
            System.out.println(r);
        }
        """
        report = engine("esc-LAB-3-P3-V1").grade(source)
        printed = comment(report, "difference-is-printed")
        assert printed.status is not FeedbackStatus.CORRECT


class TestEscLab3P4V1:
    def test_yes_no_with_braces(self):
        source = """
        void isPalindrome(int k) {
            int r = 0;
            int n = k;
            while (n != 0) {
                int d = n % 10;
                r = r * 10 + d;
                n = n / 10;
            }
            if (r == k) {
                System.out.println("yes");
            } else {
                System.out.println("no");
            }
        }
        """
        report = engine("esc-LAB-3-P4-V1").grade(source)
        assert report.is_positive, report.render()

    def test_digit_loop_missing(self):
        source = """
        void isPalindrome(int k) {
            if (k == 0)
                System.out.println("yes");
            else
                System.out.println("no");
        }
        """
        report = engine("esc-LAB-3-P4-V1").grade(source)
        assert not report.is_positive
        assert comment(report, "reverse-build").status is \
            FeedbackStatus.NOT_EXPECTED
        assert comment(report, "shrink-by-ten").status is \
            FeedbackStatus.NOT_EXPECTED


class TestMitxDerivatives:
    def test_renamed_everything(self):
        source = """
        void derivative(int[] coeffs) {
            int[] result = new int[coeffs.length - 1];
            int pos = 1;
            while (pos < coeffs.length) {
                result[pos - 1] = coeffs[pos] * pos;
                System.out.println(result[pos - 1]);
                pos++;
            }
        }
        """
        report = engine("mitx-derivatives").grade(source)
        assert report.is_positive, report.render()

    def test_missing_scale_factor(self):
        source = """
        void derivative(int[] c) {
            int[] d = new int[c.length - 1];
            int i = 1;
            while (i < c.length) {
                d[i - 1] = c[i];
                System.out.println(d[i - 1]);
                i++;
            }
        }
        """
        report = engine("mitx-derivatives").grade(source)
        write = comment(report, "array-write-scaled")
        assert write.status is FeedbackStatus.INCORRECT
        rule = comment(report, "power-rule-scales-by-index")
        assert rule.status is not FeedbackStatus.CORRECT


class TestMitxPolynomials:
    def test_long_accumulator_style(self):
        source = """
        void evaluate(int[] c, int x) {
            long total = 0;
            int i = 0;
            while (i < c.length) {
                total += c[i] * (int) Math.pow(x, i);
                i++;
            }
            System.out.println(total);
        }
        """
        report = engine("mitx-polynomials").grade(source)
        assert report.is_positive, report.render()


class TestRitAssignments:
    def test_all_g_medals_differently_named(self):
        source = """
        void countGoldMedals(int year) {
            int idx = 1;
            int golds = 0;
            int medalType = 0;
            int when = 0;
            String tok = "";
            Scanner input = new Scanner(new File("summer_olympics.txt"));
            while (input.hasNext()) {
                if (idx % 5 == 1)
                    tok = input.next();
                if (idx % 5 == 2)
                    tok = input.next();
                if (idx % 5 == 3)
                    medalType = input.nextInt();
                if (idx % 5 == 4)
                    when = input.nextInt();
                if (idx % 5 == 0) {
                    tok = input.next();
                    if (when == year && medalType == 1)
                        golds += 1;
                }
                idx++;
            }
            input.close();
            System.out.println(golds);
        }
        """
        assignment = get_assignment("rit-all-g-medals")
        assert run_tests_on_source(source, assignment.tests).passed
        report = engine("rit-all-g-medals").grade(source)
        assert report.is_positive, report.render()
        # feedback speaks the student's language
        text = report.render()
        assert "golds" in text and "input" in text

    def test_forgetting_close_is_flagged_but_tests_pass(self):
        assignment = get_assignment("rit-all-g-medals")
        source = assignment.reference_solutions[0].replace("s.close();", "")
        assert run_tests_on_source(source, assignment.tests).passed
        report = engine("rit-all-g-medals").grade(source)
        closing = comment(report, "scanner-close")
        assert closing.status is FeedbackStatus.NOT_EXPECTED
        assert "close" in closing.message

    def test_by_ath_counts_all_medal_types(self):
        assignment = get_assignment("rit-medals-by-ath")
        report = engine("rit-medals-by-ath").grade(
            assignment.reference_solutions[0]
        )
        assert report.is_positive

    def test_bounded_loop_instead_of_hasnext_is_bad_pattern(self):
        source = """
        void countGoldMedals(int year) {
            int i = 1;
            int medals = 0;
            int p = 0;
            int y = 0;
            String e = "";
            int limit = 1000;
            Scanner s = new Scanner(new File("summer_olympics.txt"));
            int t = 0;
            while (t <= limit) {
                if (i % 5 == 1)
                    e = s.next();
                if (i % 5 == 2)
                    e = s.next();
                if (i % 5 == 3)
                    p = s.nextInt();
                if (i % 5 == 4)
                    y = s.nextInt();
                if (i % 5 == 0) {
                    e = s.next();
                    if (y == year && p == 1)
                        medals += 1;
                }
                i++;
                t++;
            }
            s.close();
            System.out.println(medals);
        }
        """
        report = engine("rit-all-g-medals").grade(source)
        assert not report.is_positive
        bound = comment(report, "accumulator-bound-loop")
        assert bound.status is FeedbackStatus.NOT_EXPECTED
