"""Single-rule mutations of each reference produce the right feedback.

For every assignment we flip one error-model rule at a time and check
that the grading verdict flips to negative whenever functional testing
fails for a reason the patterns/constraints cover.  This is the per-
assignment sanity net behind Table I's column D.
"""

import pytest

from repro.core import FeedbackEngine
from repro.kb import get_assignment
from repro.matching import FeedbackStatus
from repro.testing import run_tests_on_source


def mutate(space, **slot_options):
    names = [cp.name for cp in space.choice_points]
    choices = [0] * len(names)
    for slot, option in slot_options.items():
        choices[names.index(slot)] = option
    return space.submission(space.encode(choices)).source


class TestAssignment1Mutations:
    @pytest.fixture(scope="class")
    def ctx(self):
        assignment = get_assignment("assignment1")
        return assignment, assignment.space(), FeedbackEngine(assignment)

    def test_odd_init_one_flagged(self, ctx):
        assignment, space, engine = ctx
        report = engine.grade(mutate(space, **{"odd-init": 1}))
        assert not report.is_positive
        add = next(c for c in report.comments
                   if c.source == "cond-cumulative-add")
        assert any("should start at 0" in d for d in add.details)

    def test_bound_off_by_one_flagged(self, ctx):
        assignment, space, engine = ctx
        report = engine.grade(mutate(space, bound=1))
        odd = next(c for c in report.comments
                   if c.source == "seq-odd-access")
        assert odd.status is FeedbackStatus.INCORRECT
        assert any("out of bounds" in d for d in odd.details)

    def test_even_guard_on_odd_condition_flagged(self, ctx):
        assignment, space, engine = ctx
        report = engine.grade(mutate(space, **{"even-strategy": 3}))
        even = next(c for c in report.comments
                    if c.source == "seq-even-access")
        assert even.status is FeedbackStatus.NOT_EXPECTED

    def test_swapped_prints_stay_positive(self, ctx):
        # print order independence: the paper's discrepancy class
        assignment, space, engine = ctx
        source = mutate(space, prints=1)
        assert engine.grade(source).is_positive
        assert not run_tests_on_source(source, assignment.tests).passed

    def test_equivalent_variants_stay_positive(self, ctx):
        assignment, space, engine = ctx
        source = mutate(space, advance=1, **{"odd-update": 1,
                                             "even-strategy": 2,
                                             "null-guard": 1})
        assert engine.grade(source).is_positive
        assert run_tests_on_source(source, assignment.tests).passed


class TestEscLabMutations:
    def test_p1v1_lower_bound_discrepancy(self):
        assignment = get_assignment("esc-LAB-3-P1-V1")
        space = assignment.space()
        engine = FeedbackEngine(assignment)
        source = mutate(space, **{"lower-bound": 1})
        # the paper's 8-discrepancy rule: tests pass, technique objects
        assert run_tests_on_source(source, assignment.tests).passed
        report = engine.grade(source)
        assert not report.is_positive
        bound = next(c for c in report.comments
                     if c.source == "accumulator-bound-loop")
        assert bound.status is FeedbackStatus.INCORRECT

    def test_p1v1_inlined_factorial_is_bad_pattern(self):
        assignment = get_assignment("esc-LAB-3-P1-V1")
        engine = FeedbackEngine(assignment)
        inlined = """
        int fact(int m) {
            int f = 1;
            int i = 1;
            while (i <= m) { f *= i; i++; }
            return f;
        }
        void lab3p1(int k) {
            int n = 0;
            int f = 1;
            int i = 1;
            while (i <= k) { f *= i; i++; }
            while (!(fact(n) <= k && k < fact(n + 1))) { n++; }
            System.out.println(n);
        }
        """
        report = engine.grade(inlined)
        bad = [c for c in report.comments
               if c.source == "factorial-loop"
               and c.status is FeedbackStatus.NOT_EXPECTED]
        assert bad, report.render()

    def test_p2v1_fib_lower_bound_discrepancy(self):
        assignment = get_assignment("esc-LAB-3-P2-V1")
        space = assignment.space()
        source = mutate(space, lower=1)
        assert run_tests_on_source(source, assignment.tests).passed
        assert not FeedbackEngine(assignment).grade(source).is_positive

    def test_p2v2_wrong_cube_flagged(self):
        assignment = get_assignment("esc-LAB-3-P2-V2")
        space = assignment.space()
        report = FeedbackEngine(assignment).grade(mutate(space, cube=1))
        cube = next(c for c in report.comments if c.source == "cube-sum")
        assert cube.status is FeedbackStatus.INCORRECT

    def test_p3v1_reversed_difference_is_discrepancy(self):
        assignment = get_assignment("esc-LAB-3-P3-V1")
        space = assignment.space()
        source = mutate(space, diff=1)  # r - k instead of k - r
        assert not run_tests_on_source(source, assignment.tests).passed
        # the difference pattern accepts either direction: documented
        # pattern-positive/test-fail discrepancy
        assert FeedbackEngine(assignment).grade(source).is_positive

    def test_p3v2_double_count_discrepancy(self):
        assignment = get_assignment("esc-LAB-3-P3-V2")
        space = assignment.space()
        source = mutate(space, **{"i-start": 1})
        assert not run_tests_on_source(source, assignment.tests).passed
        # the paper's class: 1 counted twice (0! and 1!); patterns all hold
        assert FeedbackEngine(assignment).grade(source).is_positive

    def test_p4v1_wrong_digit_flagged(self):
        assignment = get_assignment("esc-LAB-3-P4-V1")
        space = assignment.space()
        report = FeedbackEngine(assignment).grade(mutate(space, digit=1))
        assert not report.is_positive

    def test_p4v2_zero_start_discrepancy(self):
        assignment = get_assignment("esc-LAB-3-P4-V2")
        space = assignment.space()
        source = mutate(space, **{"p-init": 1})
        # functionally identical for n >= 1 but flagged: the paper's
        # 248-discrepancy rule with "modify the starting point" feedback
        assert run_tests_on_source(source, assignment.tests).passed
        report = FeedbackEngine(assignment).grade(source)
        assert not report.is_positive
        start = next(c for c in report.comments
                     if c.source == "fib-starts-at-one")
        assert "starting point" in start.message


class TestMitxMutations:
    def test_derivatives_zero_start_flagged(self):
        assignment = get_assignment("mitx-derivatives")
        space = assignment.space()
        report = FeedbackEngine(assignment).grade(
            mutate(space, **{"i-start": 1})
        )
        assert not report.is_positive

    def test_polynomials_swapped_pow_arguments_flagged(self):
        assignment = get_assignment("mitx-polynomials")
        space = assignment.space()
        report = FeedbackEngine(assignment).grade(mutate(space, term=1))
        assert not report.is_positive

    def test_polynomials_wrong_print_caught_by_constraint(self):
        # the paper reports D = 0 here: printing the evaluation point
        # fails the tests AND violates the result-is-printed constraint
        assignment = get_assignment("mitx-polynomials")
        space = assignment.space()
        source = mutate(space, print=1)
        assert not run_tests_on_source(source, assignment.tests).passed
        report = FeedbackEngine(assignment).grade(source)
        assert not report.is_positive
        printed = next(c for c in report.comments
                       if c.source == "result-is-printed")
        assert printed.status is not FeedbackStatus.CORRECT


class TestRitMutations:
    def test_missing_close_is_discrepancy(self):
        assignment = get_assignment("rit-all-g-medals")
        space = assignment.space()
        source = mutate(space, close=1)
        assert run_tests_on_source(source, assignment.tests).passed
        report = FeedbackEngine(assignment).grade(source)
        closing = next(c for c in report.comments
                       if c.source == "scanner-close")
        assert closing.status is FeedbackStatus.NOT_EXPECTED

    def test_silver_check_flagged(self):
        assignment = get_assignment("rit-all-g-medals")
        space = assignment.space()
        report = FeedbackEngine(assignment).grade(
            mutate(space, **{"medal-check": 1})
        )
        gold = next(c for c in report.comments
                    if c.source == "gold-check-tests-medal-type-one")
        assert gold.status is FeedbackStatus.INCORRECT

    def test_by_ath_first_name_only_flagged(self):
        assignment = get_assignment("rit-medals-by-ath")
        space = assignment.space()
        source = mutate(space, **{"name-check": 1})
        assert not run_tests_on_source(source, assignment.tests).passed
        report = FeedbackEngine(assignment).grade(source)
        both = next(c for c in report.comments
                    if c.source == "both-names-are-checked")
        assert both.status is not FeedbackStatus.CORRECT
