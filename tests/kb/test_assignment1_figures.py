"""Grade the paper's Figure 2 submissions (Section III)."""

import pytest

from repro.kb.assignments.assignment1 import (
    FIGURE_2A,
    FIGURE_2B,
    FIGURE_2C,
    FIGURE_8A,
    FIGURE_8B,
)
from repro.matching import FeedbackStatus
from repro.testing import run_tests_on_source


class TestFigure2A:
    """Incorrect: even init 0, i <= a.length, i%2==1 for even, even not
    effectively printed."""

    def test_negative_verdict(self, engine1):
        assert not engine1.grade(FIGURE_2A).is_positive

    def test_fails_functional_tests(self, assignment1):
        assert not run_tests_on_source(FIGURE_2A, assignment1.tests).passed

    def test_even_access_reported_missing(self, engine1):
        report = engine1.grade(FIGURE_2A)
        comment = next(c for c in report.comments
                       if c.source == "seq-even-access")
        assert comment.status is FeedbackStatus.NOT_EXPECTED
        assert "i % 2 == 0" in comment.message

    def test_even_product_initialization_flagged(self, engine1):
        report = engine1.grade(FIGURE_2A)
        comment = next(c for c in report.comments
                       if c.source == "cond-cumulative-mul")
        assert comment.status is FeedbackStatus.INCORRECT
        assert any("should start at 1" in d for d in comment.details)


class TestFigure2B:
    """Correct: while loop, combined single print."""

    def test_fully_positive(self, engine1):
        report = engine1.grade(FIGURE_2B)
        assert report.is_positive, report.render()

    def test_feedback_uses_student_variable_names(self, engine1):
        report = engine1.grade(FIGURE_2B)
        odd = next(c for c in report.comments
                   if c.source == "cond-cumulative-add")
        assert "o" in odd.message

    def test_print_order_independence(self, engine1):
        # a single concatenated print still satisfies both print patterns
        report = engine1.grade(FIGURE_2B)
        prints = next(c for c in report.comments
                      if c.source == "assign-print")
        assert prints.status is FeedbackStatus.CORRECT


class TestFigure2C:
    """Incorrect: x and y initializations swapped (x *= on 0 stays 0)."""

    def test_negative_verdict(self, engine1):
        assert not engine1.grade(FIGURE_2C).is_positive

    def test_fails_functional_tests(self, assignment1):
        assert not run_tests_on_source(FIGURE_2C, assignment1.tests).passed

    def test_initializations_flagged(self, engine1):
        report = engine1.grade(FIGURE_2C)
        add = next(c for c in report.comments
                   if c.source == "cond-cumulative-add")
        mul = next(c for c in report.comments
                   if c.source == "cond-cumulative-mul")
        # x *= (should be the sum's var) and y += are cross-wired, so both
        # accumulator patterns report problems
        assert add.status is not FeedbackStatus.CORRECT
        assert mul.status is not FeedbackStatus.CORRECT


class TestFigure8:
    def test_8a_and_8b_are_functionally_equivalent(self, assignment1):
        from repro.interp import JavaArray, run_method
        from repro.java import parse_submission
        for array in ([3, 4, 5, 6], [], [7]):
            out_a = run_method(
                parse_submission(FIGURE_8A), "assignment1",
                [JavaArray("int", list(array))],
            ).stdout
            out_b = run_method(
                parse_submission(FIGURE_8B), "assignment1",
                [JavaArray("int", list(array))],
            ).stdout
            assert out_a == out_b

    def test_both_variants_satisfy_our_patterns(self, engine1):
        # unlike CLARA, the pattern matcher is independent of the
        # variable ordering difference between 8a and 8b
        for source in (FIGURE_8A, FIGURE_8B):
            report = engine1.grade(source)
            for name in ("seq-odd-access", "seq-even-access",
                         "cond-cumulative-add", "cond-cumulative-mul"):
                comment = next(c for c in report.comments
                               if c.source == name)
                assert comment.status is FeedbackStatus.CORRECT, (
                    f"{name}: {comment.message}"
                )
