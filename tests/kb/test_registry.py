"""Knowledge-base invariants asserted against the paper's Table I."""

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb import (
    all_assignment_names,
    all_patterns,
    get_assignment,
    get_pattern,
    table1_expectations,
)


class TestPatternLibrary:
    def test_twenty_four_unique_patterns(self):
        assert len(all_patterns()) == 24

    def test_variable_names_globally_disjoint(self):
        # Definition 10 requires disjoint variable sets when unioning γ
        owners: dict[str, str] = {}
        for name, pattern in all_patterns().items():
            for variable in pattern.variables:
                assert variable not in owners, (
                    f"variable {variable!r} shared by {name} "
                    f"and {owners[variable]}"
                )
                owners[variable] = name

    def test_every_pattern_has_feedback(self):
        for pattern in all_patterns().values():
            assert pattern.feedback_present
            assert pattern.feedback_missing
            assert pattern.description

    def test_get_pattern_unknown_raises(self):
        with pytest.raises(KnowledgeBaseError):
            get_pattern("no-such-pattern")

    def test_every_pattern_used_by_some_assignment(self):
        used = set()
        for name in all_assignment_names():
            assignment = get_assignment(name)
            for method in assignment.expected_methods:
                used.update(method.pattern_names())
        assert used == set(all_patterns())


class TestTableOne:
    def test_twelve_assignments(self):
        assert len(all_assignment_names()) == 12

    def test_search_space_sizes_match_table1(self, assignment):
        expected = table1_expectations(assignment.name)
        assert assignment.space().size == expected["S"]

    def test_pattern_counts_match_table1(self, assignment):
        expected = table1_expectations(assignment.name)
        assert assignment.pattern_count == expected["P"]

    def test_constraint_counts_match_table1(self, assignment):
        expected = table1_expectations(assignment.name)
        assert assignment.constraint_count == expected["C"]

    def test_pattern_uses_sum_to_81(self):
        total = sum(
            get_assignment(name).pattern_count
            for name in all_assignment_names()
        )
        assert total == 81  # Table I column P summed

    def test_unknown_assignment_raises(self):
        with pytest.raises(KnowledgeBaseError):
            get_assignment("no-such-assignment")
        with pytest.raises(KnowledgeBaseError):
            table1_expectations("no-such-assignment")

    def test_assignments_are_cached(self):
        assert get_assignment("assignment1") is get_assignment("assignment1")


class TestAssignmentShape:
    def test_has_reference_and_tests(self, assignment):
        assert assignment.reference_solutions
        assert len(assignment.tests) >= 5

    def test_constraints_reference_known_patterns(self, assignment):
        for method in assignment.expected_methods:
            pattern_names = set(method.pattern_names())
            for constraint in method.constraints:
                for referenced in constraint.referenced_patterns():
                    assert referenced in pattern_names, (
                        f"{assignment.name}: constraint {constraint.name} "
                        f"references {referenced} which the method does "
                        "not use"
                    )

    def test_constraint_node_ids_exist(self, assignment):
        from repro.patterns.model import (
            ContainmentConstraint,
            EdgeExistenceConstraint,
            EqualityConstraint,
        )
        for method in assignment.expected_methods:
            by_name = {p.name: p for p, _ in method.patterns}
            for constraint in method.constraints:
                if isinstance(constraint,
                              (EqualityConstraint, EdgeExistenceConstraint)):
                    assert constraint.node_i < len(
                        by_name[constraint.pattern_i].nodes
                    )
                    assert constraint.node_j < len(
                        by_name[constraint.pattern_j].nodes
                    )
                elif isinstance(constraint, ContainmentConstraint):
                    assert constraint.node < len(
                        by_name[constraint.pattern].nodes
                    )

    def test_average_loc_in_reasonable_range(self, assignment):
        # Table I's L column spans 5.75 to 33.5 lines
        loc = assignment.space().average_loc(
            sample=list(range(0, assignment.space().size,
                              max(1, assignment.space().size // 64)))[:64]
        )
        assert 4 <= loc <= 45
