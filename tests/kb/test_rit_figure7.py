"""Paper Figure 7: functionally correct but semantically incorrect.

The submission reads record fields under duplicated/shifted ``i % 5``
conditions that coincidentally consume the right tokens, so functional
testing passes — but the technique detects the misplaced field selectors
and provides targeted feedback (the source of the assignment's 1,872
discrepancies)."""

import pytest

from repro.core import FeedbackEngine
from repro.kb import get_assignment
from repro.kb.assignments._olympics import (
    FIGURE_7,
    RECORDS,
    file_content,
    gold_medals_in,
    medals_of,
)
from repro.matching import FeedbackStatus
from repro.testing import run_tests_on_source


@pytest.fixture(scope="module")
def rit():
    return get_assignment("rit-all-g-medals")


class TestOlympicsData:
    def test_file_has_five_fields_per_record(self):
        for line in file_content().strip().splitlines():
            assert len(line.split()) == 5

    def test_ground_truth_helpers(self):
        assert gold_medals_in(2012) == sum(
            1 for _, _, m, y in RECORDS if m == 1 and y == 2012
        )
        assert medals_of("Usain", "Bolt") == 3

    def test_shared_first_names_exist(self):
        # needed so the by-athlete first-name-only bug is observable
        firsts = {}
        shared = False
        for first, last, _, _ in RECORDS:
            if first in firsts and firsts[first] != last:
                shared = True
            firsts.setdefault(first, last)
        assert shared


class TestFigure7:
    def test_functionally_correct(self, rit):
        report = run_tests_on_source(FIGURE_7, rit.tests)
        assert report.passed, report.summary()

    def test_semantically_flagged(self, rit):
        report = FeedbackEngine(rit).grade(FIGURE_7)
        assert not report.is_positive

    def test_field_selector_feedback_is_specific(self, rit):
        report = FeedbackEngine(rit).grade(FIGURE_7)
        comment = next(c for c in report.comments
                       if c.source == "record-position-read")
        assert comment.status is FeedbackStatus.INCORRECT
        details = " ".join(comment.details)
        # the last name is read under a duplicated i % 5 == 1 condition;
        # the feedback names the right selector
        assert "i % 5 == 2" in details

    def test_reference_is_not_flagged(self, rit):
        report = FeedbackEngine(rit).grade(rit.reference_solutions[0])
        assert report.is_positive
