"""The paper's three illustrated patterns (Figures 4-6) behave as stated."""

import pytest

from repro.java import parse_submission
from repro.kb import get_pattern
from repro.kb.assignments.assignment1 import FIGURE_2A, FIGURE_2B
from repro.matching import match_pattern
from repro.pdg import NodeType, extract_epdg


@pytest.fixture(scope="module")
def graph_2a():
    return extract_epdg(parse_submission(FIGURE_2A).method("assignment1"))


@pytest.fixture(scope="module")
def graph_2b():
    return extract_epdg(parse_submission(FIGURE_2B).method("assignment1"))


class TestPatternPo:
    """Figure 4: accessing odd positions sequentially in an array."""

    def test_shape(self):
        pattern = get_pattern("seq-odd-access")
        assert len(pattern.nodes) == 6
        assert pattern.node(0).type is NodeType.UNTYPED
        assert pattern.node(5).type is NodeType.UNTYPED
        assert pattern.node(3).type is NodeType.COND
        # u4 is crucial: no approximate expression, no incorrect feedback
        assert pattern.node(4).approx is None
        assert pattern.node(4).feedback_incorrect == ""

    def test_sample_embedding_of_section_iv(self, graph_2a):
        # the paper's worked embedding: γ = {s→a, x→i}, u3 approximate
        embeddings = match_pattern(get_pattern("seq-odd-access"), graph_2a)
        chosen = embeddings[0]
        assert chosen.gamma_map == {"s": "a", "x": "i"}
        mapped = {u: graph_2a.node(v).content for u, v in chosen.iota}
        assert mapped[0] == "a"
        assert mapped[1] == "i = 0"
        assert mapped[3] == "i <= a.length"
        assert 3 in chosen.incorrect_nodes

    def test_combination_order_rejected(self, graph_2a):
        # the paper: γ(s)=i, γ(x)=a never matches
        for embedding in match_pattern(get_pattern("seq-odd-access"),
                                       graph_2a):
            assert embedding.gamma_map != {"s": "i", "x": "a"}


class TestPatternPa:
    """Figure 5: conditional cumulative adding."""

    def test_matches_odd_accumulation(self, graph_2b):
        embeddings = match_pattern(get_pattern("cond-cumulative-add"),
                                   graph_2b)
        (embedding,) = embeddings
        assert embedding.gamma_map["c"] == "o"
        accumulation = graph_2b.node(embedding.graph_node(3))
        assert accumulation.content == "o += a[i]"

    def test_reused_for_medal_counting(self):
        # the same pattern recognizes `medals += 1` in the RIT assignment
        from repro.kb import get_assignment
        assignment = get_assignment("rit-all-g-medals")
        graph = extract_epdg(
            parse_submission(assignment.reference_solutions[0])
            .method("countGoldMedals")
        )
        embeddings = match_pattern(get_pattern("cond-cumulative-add"), graph)
        assert any(e.gamma_map["c"] == "medals" for e in embeddings)


class TestPatternPp:
    """Figure 6: assign and print to console."""

    def test_matches_both_printed_variables(self, graph_2b):
        embeddings = match_pattern(get_pattern("assign-print"), graph_2b)
        printed = {e.gamma_map["z"] for e in embeddings}
        assert printed == {"o", "e"}

    def test_data_edge_required(self):
        # printing an unrelated variable does not match
        graph = extract_epdg(parse_submission("""
        void f(int q) {
            int x = 1;
            System.out.println(q);
        }
        """).method("f"))
        embeddings = match_pattern(get_pattern("assign-print"), graph)
        assert {e.gamma_map["z"] for e in embeddings} == {"q"}
