"""Golden tests for the submission diagnostic checks.

Each check gets at least one positive snippet (the defect is present and
the check fires) and one negative snippet (a near-miss that must stay
silent).  Snippets are bare methods — the frontend accepts them — except
where class fields matter.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ANALYSIS_VERSION,
    CHECKS,
    Severity,
    analysis_fingerprint,
    check_by_id,
    run_checks,
)
from repro.instrumentation import collecting
from repro.java import parse_submission
from repro.pdg.builder import extract_all_epdgs


def diagnose(source):
    unit = parse_submission(source)
    return run_checks(unit, extract_all_epdgs(unit))


def ids(diagnostics):
    return [d.check for d in diagnostics]


class TestUseBeforeInit:
    def test_read_of_uninitialized_local_fires(self):
        found = diagnose("int f() { int x; return x; }")
        assert "use-before-init" in ids(found)
        finding = next(d for d in found if d.check == "use-before-init")
        assert finding.severity is Severity.ERROR
        assert "'x'" in finding.message
        assert finding.method == "f"
        assert finding.line == 1
        assert finding.snippet == "return x"

    def test_initialized_local_is_silent(self):
        assert "use-before-init" not in ids(
            diagnose("int f() { int x = 1; return x; }")
        )

    def test_parameters_and_fields_are_initialized(self):
        assert "use-before-init" not in ids(
            diagnose("int f(int n) { return n; }")
        )
        source = """
        public class C {
            int total;
            int get() { return total; }
        }
        """
        assert "use-before-init" not in ids(diagnose(source))


class TestMissingReturn:
    def test_fallthrough_path_fires(self):
        found = diagnose("int f(int n) { if (n > 0) { return 1; } }")
        assert "missing-return" in ids(found)
        finding = next(d for d in found if d.check == "missing-return")
        assert "int" in finding.message

    def test_all_paths_return_is_silent(self):
        source = """
        int f(int n) {
            if (n > 0) { return 1; } else { return 0; }
        }
        """
        assert "missing-return" not in ids(diagnose(source))

    def test_void_method_is_silent(self):
        assert "missing-return" not in ids(
            diagnose("void f(int n) { int x = n; }")
        )


class TestUnreachableCode:
    def test_statement_after_return_fires(self):
        found = diagnose("int f() { return 1; int x = 2; }")
        assert "unreachable-code" in ids(found)

    def test_statement_after_infinite_loop_fires(self):
        source = "void f() { while (true) { int x = 1; } int y = 2; }"
        assert "unreachable-code" in ids(diagnose(source))

    def test_plain_straight_line_is_silent(self):
        assert "unreachable-code" not in ids(
            diagnose("int f() { int x = 1; return x; }")
        )


class TestInfiniteLoop:
    def test_while_true_without_escape_fires(self):
        found = diagnose("void f() { while (true) { int x = 1; } }")
        assert "infinite-loop" in ids(found)
        finding = next(d for d in found if d.check == "infinite-loop")
        assert "while" in finding.message

    def test_break_and_return_escape(self):
        assert "infinite-loop" not in ids(
            diagnose("void f() { while (true) { break; } }")
        )
        assert "infinite-loop" not in ids(
            diagnose("int f() { while (true) { return 1; } }")
        )

    def test_non_constant_condition_is_silent(self):
        assert "infinite-loop" not in ids(
            diagnose("void f(int n) { while (n > 0) { n = n - 1; } }")
        )


class TestLoopNeverEntered:
    def test_while_false_fires(self):
        found = diagnose("void f() { while (false) { int x = 1; } }")
        assert "loop-never-entered" in ids(found)

    def test_do_while_false_is_silent(self):
        # a do-while body runs at least once regardless of the condition
        assert "loop-never-entered" not in ids(
            diagnose("void f() { do { int x = 1; } while (false); }")
        )


class TestUnusedVariable:
    def test_written_never_read_fires(self):
        found = diagnose("void f() { int x = 1; }")
        assert "unused-variable" in ids(found)

    def test_declared_never_touched_fires(self):
        # no initializer and no use: the EPDG has no node for it at all,
        # so this exercises the AST-declaration side of the check
        found = diagnose("void f() { int x; }")
        assert "unused-variable" in ids(found)

    def test_read_variable_is_silent(self):
        assert "unused-variable" not in ids(
            diagnose("int f() { int x = 1; return x; }")
        )


class TestUnusedParameter:
    def test_unused_parameter_fires_as_info(self):
        found = diagnose("void f(int n) { int x = 1; int y = x; }")
        finding = next(d for d in found if d.check == "unused-parameter")
        assert finding.severity is Severity.INFO
        assert "'n'" in finding.message

    def test_used_parameter_is_silent(self):
        assert "unused-parameter" not in ids(
            diagnose("int f(int n) { return n; }")
        )


class TestRunChecks:
    def test_clean_method_yields_no_diagnostics(self):
        assert diagnose("int f(int n) { return n + 1; }") == []

    def test_deterministic_across_runs(self):
        source = """
        int f(int a, int b) {
            int x; int dead = 3;
            while (true) { int y = a; }
            return x + b;
        }
        """
        assert diagnose(source) == diagnose(source)

    def test_counters_and_phases_recorded(self):
        source = "int f() { int x; return x; }"
        with collecting() as collector:
            found = diagnose(source)
        assert collector.counters["analysis.runs"] == 1
        assert collector.counters["analysis.diagnostics"] == len(found)
        assert collector.counters["analysis.use-before-init"] == 1
        assert "analysis.use-before-init" in collector.seconds
        # every registered check was timed, even the silent ones
        for check in CHECKS:
            assert f"analysis.{check.id}" in collector.seconds

    def test_duplicate_method_names_analyze_last_declaration(self):
        # mirrors extract_all_epdgs: the later declaration wins
        source = """
        int f() { int dead = 1; return 2; }
        int f() { return 3; }
        """
        assert diagnose(source) == []

    def test_messages_never_leak_placeholders(self):
        source = """
        int f(int unused) {
            int x; int dead = 3;
            while (true) { int y = 1; }
            return x;
        }
        """
        for diagnostic in diagnose(source):
            assert "{" not in diagnostic.message


class TestRegistry:
    def test_check_ids_unique_and_resolvable(self):
        seen = {check.id for check in CHECKS}
        assert len(seen) == len(CHECKS)
        for check in CHECKS:
            assert check_by_id(check.id) is check
        with pytest.raises(KeyError):
            check_by_id("no-such-check")

    def test_fingerprint_names_version_and_every_check(self):
        fingerprint = analysis_fingerprint()
        assert f"analysis-v{ANALYSIS_VERSION}" in fingerprint
        for check in CHECKS:
            assert check.id in fingerprint
