"""PerfAnalyzer end-to-end: escalation, mismatch, engine integration.

Also the two compatibility gates the tentpole demands: byte-identical
reports when perf is disabled, and zero perf diagnostics on every
reference solution with the full dynamic pass on.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.perf.analyzer import PerfAnalyzer
from repro.core.engine import FeedbackEngine
from repro.instrumentation import PhaseCollector, collecting
from repro.java import parse_submission
from repro.kb import get_assignment

SLOW_EVALUATE = """
void evaluate(int[] c, int x) {
    int r = 0;
    for (int i = 0; i < c.length; i++) {
        int p = 1;
        for (int k = 0; k < i; k++) {
            p = p * x;
        }
        r += c[i] * p;
    }
    System.out.println(r);
}
"""

FAST_EVALUATE = """
void evaluate(int[] c, int x) {
    int r = 0;
    int p = 1;
    for (int i = 0; i < c.length; i++) {
        r += c[i] * p;
        p = p * x;
    }
    System.out.println(r);
}
"""


@pytest.fixture(scope="module")
def polynomials():
    return get_assignment("mitx-polynomials")


@pytest.fixture(scope="module")
def perf_engine(polynomials):
    return FeedbackEngine(
        polynomials, perf_analyzer=PerfAnalyzer(polynomials)
    )


class TestEscalation:
    def test_slow_submission_escalates_to_error(self, perf_engine):
        report = perf_engine.grade(SLOW_EVALUATE)
        assert [d.check for d in report.perf] == [
            "perf.loop-invariant-recomputation"
        ]
        diagnostic = report.perf[0]
        assert diagnostic.severity is Severity.ERROR
        assert "quadratic" in diagnostic.message
        assert "linear suffices" in diagnostic.message

    def test_fast_submission_is_clean(self, perf_engine):
        assert perf_engine.grade(FAST_EVALUATE).perf == []

    def test_static_only_without_spec_stays_advisory(self, polynomials):
        analyzer = PerfAnalyzer(polynomials)
        analyzer.spec = None  # simulate an assignment with no PerfSpec
        diagnostics = analyzer.analyze(parse_submission(SLOW_EVALUATE))
        assert [d.severity for d in diagnostics] == [Severity.WARNING]
        assert "Measured cost" not in diagnostics[0].message

    def test_counters_flow_through_collector(self, polynomials):
        engine = FeedbackEngine(
            polynomials, perf_analyzer=PerfAnalyzer(polynomials)
        )
        collector = PhaseCollector()
        with collecting(collector):
            engine.grade(SLOW_EVALUATE)
        counters = collector.counters
        assert counters.get("perf.runs") == 1
        assert counters.get("perf.static_findings") == 1
        assert counters.get("perf.escalations") == 1
        assert counters.get("perf.findings") == 1
        assert counters.get("perf.probe_runs", 0) > 0
        assert "perf" in collector.seconds
        assert "perf.static" in collector.seconds
        assert "perf.dynamic" in collector.seconds


class TestDynamicGating:
    def test_loopless_submission_skips_dynamic(self, polynomials):
        analyzer = PerfAnalyzer(polynomials)
        collector = PhaseCollector()
        with collecting(collector):
            diagnostics = analyzer.analyze(parse_submission("""
                void evaluate(int[] c, int x) {
                    System.out.println(0);
                }
            """))
        assert diagnostics == []
        assert "perf.dynamic" not in collector.seconds

    def test_mismatch_without_static_finding(self, polynomials):
        # quadratic busy-work no static detector models (no lookup
        # probe, nothing recomputed, no string): only the entry-method
        # cost shape catches it
        analyzer = PerfAnalyzer(polynomials)
        diagnostics = analyzer.analyze(parse_submission("""
            void evaluate(int[] c, int x) {
                int r = 0;
                int p = 1;
                for (int i = 0; i < c.length; i++) {
                    for (int k = 0; k < c.length; k++) {
                        r += 0;
                    }
                    r += c[i] * p;
                    p = p * x;
                }
                System.out.println(r);
            }
        """))
        checks = [d.check for d in diagnostics]
        assert "perf.cost-shape-mismatch" in checks
        mismatch = diagnostics[checks.index("perf.cost-shape-mismatch")]
        assert mismatch.severity is Severity.WARNING
        assert mismatch.method == "evaluate"


class TestDisabledCompatibility:
    def test_reports_byte_identical_when_disabled(self, polynomials):
        plain = FeedbackEngine(polynomials)
        for source in (FAST_EVALUATE, SLOW_EVALUATE):
            report = plain.grade(source)
            assert report.perf == []
            assert "perf" not in report.to_dict()

    def test_enabled_and_disabled_agree_outside_perf(
        self, polynomials, perf_engine
    ):
        plain = FeedbackEngine(polynomials)
        with_perf = perf_engine.grade(SLOW_EVALUATE).to_dict()
        without = plain.grade(SLOW_EVALUATE).to_dict()
        with_perf.pop("perf")
        assert with_perf == without


class TestReferenceGate:
    def test_references_are_perf_clean(self, assignment):
        """Full two-sided pass, zero diagnostics on every reference."""
        engine = FeedbackEngine(
            assignment, perf_analyzer=PerfAnalyzer(assignment)
        )
        for reference in assignment.reference_solutions:
            report = engine.grade(reference)
            assert report.status == "ok"
            assert report.perf == []
