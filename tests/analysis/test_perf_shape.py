"""Cost-shape fitter unit tests on synthetic counter ladders."""

from __future__ import annotations

import pytest

from repro.analysis.perf.model import CostShape
from repro.analysis.perf.shape import (
    MIN_POINTS,
    MIN_POINTS_QUADRATIC,
    UNKNOWN_FIT,
    fit_shape,
)


def ladder(f, xs):
    return [(float(x), float(f(x))) for x in xs]


class TestExactShapes:
    def test_constant(self):
        fit = fit_shape(ladder(lambda x: 17, [1, 4, 8, 16]))
        assert fit.shape is CostShape.CONSTANT

    def test_linear(self):
        fit = fit_shape(ladder(lambda x: 3 * x + 5, [1, 4, 8, 16]))
        assert fit.shape is CostShape.LINEAR

    def test_quadratic(self):
        fit = fit_shape(ladder(lambda x: x * x + 2 * x + 1, [2, 4, 8, 16]))
        assert fit.shape is CostShape.QUADRATIC

    def test_residual_and_points_recorded(self):
        fit = fit_shape(ladder(lambda x: 2 * x, [1, 2, 3, 4]))
        assert fit.points == 4
        assert fit.residual is not None
        assert fit.residual < 0.01


class TestRealisticLadders:
    def test_linear_with_small_noise(self):
        # interpreter step counts are never a perfect line: branches
        # taken differ per input
        points = [(4, 131), (8, 258), (12, 395), (16, 519)]
        assert fit_shape(points).shape is CostShape.LINEAR

    def test_quadratic_inner_loop_iterations(self):
        # sum 0..n-1 ~ n^2/2: the nested-lookup inner loop's counter
        points = [(4, 6), (8, 28), (12, 66), (16, 120)]
        assert fit_shape(points).shape is CostShape.QUADRATIC

    def test_constant_with_jitter_within_tolerance(self):
        points = [(1, 100), (5, 104), (9, 98), (13, 101)]
        assert fit_shape(points).shape is CostShape.CONSTANT


class TestConservatism:
    def test_too_few_points_is_unknown(self):
        assert fit_shape([(1, 1), (2, 2)]).shape is CostShape.UNKNOWN
        assert MIN_POINTS == 3

    def test_quadratic_needs_four_distinct_sizes(self):
        # three points fit a parabola exactly — that is not evidence
        points = ladder(lambda x: x * x, [2, 4, 8])
        assert fit_shape(points).shape is not CostShape.QUADRATIC
        assert MIN_POINTS_QUADRATIC == 4

    def test_duplicate_sizes_collapse(self):
        # repeated probes at one size average, not multiply, evidence
        points = [(4.0, 10.0), (4.0, 12.0), (8.0, 20.0)]
        assert fit_shape(points).shape is CostShape.UNKNOWN

    def test_empty_is_unknown(self):
        assert fit_shape([]) == UNKNOWN_FIT

    def test_unknown_never_escalates(self):
        assert not CostShape.UNKNOWN.exceeds(CostShape.CONSTANT)
        assert not CostShape.QUADRATIC.exceeds(CostShape.UNKNOWN)

    def test_insignificant_leading_term_falls_back(self):
        # y = 1000 + 0.001x over x <= 16: the slope never moves the
        # value by 10% of its scale, so this is constant, not linear
        points = ladder(lambda x: 1000 + 0.001 * x, [1, 4, 8, 16])
        assert fit_shape(points).shape is CostShape.CONSTANT

    def test_noisy_data_is_unknown_not_guessed(self):
        points = [(1, 5), (2, 90), (3, 7), (4, 120), (5, 2), (6, 200)]
        assert fit_shape(points).shape is CostShape.UNKNOWN


class TestShapeOrdering:
    @pytest.mark.parametrize("bigger, smaller", [
        (CostShape.LINEAR, CostShape.CONSTANT),
        (CostShape.QUADRATIC, CostShape.CONSTANT),
        (CostShape.QUADRATIC, CostShape.LINEAR),
    ])
    def test_exceeds(self, bigger, smaller):
        assert bigger.exceeds(smaller)
        assert not smaller.exceeds(bigger)

    def test_equal_shapes_do_not_exceed(self):
        for shape in CostShape:
            assert not shape.exceeds(shape)
