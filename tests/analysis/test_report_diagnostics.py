"""Diagnostics on GradingReport: round-trip, back-compat, promotion,
and persistent-store invalidation."""

from __future__ import annotations

import json

from repro.analysis import Severity
from repro.analysis.diagnostics import Diagnostic
from repro.core.engine import FeedbackEngine
from repro.core.report import GradingReport
from repro.core.store import ResultStore, kb_fingerprint

BUGGY = """
public class Sub {
    public static int f(int n) {
        int x;
        return x;
    }
}
"""


def buggy_report(assignment1):
    report = FeedbackEngine(assignment1).grade(BUGGY)
    assert report.diagnostics, "buggy source must produce diagnostics"
    return report


class TestRoundTrip:
    def test_diagnostics_survive_to_dict_from_dict(self, assignment1):
        report = buggy_report(assignment1)
        clone = GradingReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.diagnostics == report.diagnostics
        assert clone.render() == report.render()

    def test_diagnostic_payload_shape(self):
        diagnostic = Diagnostic(
            check="use-before-init", severity=Severity.ERROR,
            method="f", message="m", line=4, column=9, snippet="return x",
        )
        payload = diagnostic.to_dict()
        assert payload["severity"] == "error"
        assert Diagnostic.from_dict(payload) == diagnostic

    def test_pre_diagnostics_payload_rebuilds_empty(self, assignment1):
        # a PR-4 era store entry has no "diagnostics" key at all
        report = buggy_report(assignment1)
        payload = report.to_dict()
        del payload["diagnostics"]
        clone = GradingReport.from_dict(payload)
        assert clone.diagnostics == []
        assert clone.status == report.status

    def test_error_shapes_keep_diagnostics_key(self, assignment1):
        for payload in (
            {"assignment": "a", "parse_error": "boom"},
            {"assignment": "a", "timeout": "slow"},
            {"assignment": "a", "status": "error", "error": "bad"},
        ):
            assert GradingReport.from_dict(payload).diagnostics == []


class TestPromotion:
    def test_unmatched_submission_promotes_diagnostics(self, assignment1):
        report = buggy_report(assignment1)
        # nothing matched: every comment is NotExpected, diagnostics lead
        assert report.diagnostics_are_primary
        rendered = report.render()
        assert "static analysis found" in rendered
        assert rendered.index("static analysis") < rendered.index("[NotExpected]")

    def test_matched_submission_keeps_pattern_feedback_first(self, assignment1):
        # correct solution + an extra buggy helper method: patterns
        # match, so diagnostics ride along as secondary observations
        source = (
            "int g() { int x; return x; }\n"
            + assignment1.reference_solutions[0]
        )
        report = FeedbackEngine(assignment1).grade(source)
        assert report.outcome is not None
        assert report.diagnostics
        assert not report.diagnostics_are_primary
        assert "Additional observations" in report.render()

    def test_reference_solutions_have_no_error_diagnostics(self, assignment):
        # some RIT references legitimately carry write-only locals
        # (unused-variable warnings), but a working reference solution
        # must never trip an ERROR-severity check
        engine = FeedbackEngine(assignment)
        for source in assignment.reference_solutions:
            report = engine.grade(source)
            errors = [
                d for d in report.diagnostics
                if d.severity is Severity.ERROR
            ]
            assert errors == [], (
                f"{assignment.name}: reference solution trips errors: "
                f"{[d.render() for d in errors]}"
            )


class TestStore:
    def test_store_roundtrips_diagnostics(self, tmp_path, assignment1):
        report = buggy_report(assignment1)
        store = ResultStore(tmp_path, assignment1)
        assert store.put("k" * 64, report)
        cached = store.get("k" * 64)
        assert cached is not None
        assert cached.diagnostics == report.diagnostics

    def test_fingerprint_covers_check_set(self, monkeypatch, assignment1):
        before = kb_fingerprint(assignment1)
        monkeypatch.setattr(
            "repro.analysis.checks.ANALYSIS_VERSION", 999
        )
        assert kb_fingerprint(assignment1) != before

    def test_legacy_entry_without_diagnostics_still_reads(
        self, tmp_path, assignment1
    ):
        report = buggy_report(assignment1)
        store = ResultStore(tmp_path, assignment1)
        key = "a" * 64
        assert store.put(key, report)
        # rewrite the entry the way a pre-diagnostics writer produced it
        path = store.path_for(key)
        entry = json.loads(path.read_text())
        del entry["report"]["diagnostics"]
        path.write_text(json.dumps(entry))
        cached = store.get(key)
        assert cached is not None
        assert cached.diagnostics == []
