"""Perf across the batch pipeline, clustering, campaigns, and serving.

The two load-bearing guarantees: with ``--perf`` *disabled* nothing
changes (byte-identical reports, untouched plain caches), and with it
*enabled* under clustering the grader falls back to full per-submission
grading — measured cost shapes are member-specific (rename-equivalent
members may differ in normalized constants), so representative replay
is unsound.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.perf.analyzer import PerfAnalyzer
from repro.cluster import ClusterGrader
from repro.core.engine import FeedbackEngine
from repro.core.pipeline import BatchGrader
from repro.core.store import ResultStore
from repro.instrumentation import collecting
from repro.kb import get_assignment

SLOW_EVALUATE = """
void evaluate(int[] c, int x) {
    int r = 0;
    for (int i = 0; i < c.length; i++) {
        int p = 1;
        for (int k = 0; k < i; k++) {
            p = p * x;
        }
        r += c[i] * p;
    }
    System.out.println(r);
}
"""


@pytest.fixture(scope="module")
def polynomials():
    return get_assignment("mitx-polynomials")


def cohort_for(assignment):
    return [
        ("ok", assignment.reference_solutions[0]),
        ("slow", SLOW_EVALUATE),
    ]


class TestBatchGrader:
    def test_disabled_perf_is_byte_identical_to_plain(self, polynomials):
        cohort = cohort_for(polynomials)
        plain = BatchGrader(polynomials, cache=False).grade_batch(cohort)
        flagged = BatchGrader(
            polynomials, cache=False, perf=False
        ).grade_batch(cohort)
        for left, right in zip(plain.reports, flagged.reports):
            assert left.to_dict() == right.to_dict()
            assert left.render() == right.render()

    def test_enabled_perf_attaches_diagnostics(self, polynomials):
        grader = BatchGrader(polynomials, cache=False, perf=True)
        batch = grader.grade_batch(cohort_for(polynomials))
        results = {item.label: item.report for item in batch.items}
        assert results["ok"].perf == []
        assert results["slow"].perf
        assert results["slow"].perf[0].check == (
            "perf.loop-invariant-recomputation"
        )

    def test_perf_counters_reach_batch_stats(self, polynomials):
        grader = BatchGrader(polynomials, cache=False, perf=True)
        batch = grader.grade_batch(cohort_for(polynomials))
        counters = batch.stats.counters
        assert counters.get("perf.runs") == 2
        assert counters.get("perf.findings", 0) >= 1

    def test_perf_run_leaves_the_plain_store_cold(
        self, polynomials, tmp_path
    ):
        grader = BatchGrader(polynomials, store=tmp_path, perf=True)
        grader.grade_batch(cohort_for(polynomials))
        plain = ResultStore(tmp_path, polynomials)
        assert plain.entry_count() == 0
        scoped = ResultStore(tmp_path, polynomials, perf=True)
        assert scoped.entry_count() == 2


class TestClusterFallback:
    def test_perf_forces_full_grading(self, polynomials):
        engine = FeedbackEngine(
            polynomials, perf_analyzer=PerfAnalyzer(polynomials)
        )
        grader = ClusterGrader(engine)
        with collecting() as phases:
            report = grader.grade(SLOW_EVALUATE)
        assert phases.counters.get("cluster.perf_fallbacks") == 1
        assert "cluster.representatives" not in phases.counters
        assert report.perf
        expected = engine.grade(SLOW_EVALUATE)
        assert report.to_dict() == expected.to_dict()

    def test_without_perf_clustering_is_untouched(self, polynomials):
        grader = ClusterGrader(FeedbackEngine(polynomials))
        with collecting() as phases:
            grader.grade(polynomials.reference_solutions[0])
        assert "cluster.perf_fallbacks" not in phases.counters
        assert phases.counters.get("cluster.representatives") == 1


class TestCampaignRunner:
    def test_perf_campaign_completes_and_scopes_its_store(
        self, polynomials, tmp_path
    ):
        from repro.core.campaign import CampaignRunner

        runner = CampaignRunner(
            polynomials, tmp_path / "store", shard_size=2, perf=True
        )
        result = runner.run(cohort_for(polynomials), campaign_id="c1")
        assert result.completed
        reports = {
            item.label: item.report
            for item in runner.grader.grade_batch(
                cohort_for(polynomials)
            ).items
        }
        assert reports["slow"].perf
        # Perf-scoped records never leak into a plain store on the path.
        plain = ResultStore(tmp_path / "store", polynomials)
        assert plain.entry_count() == 0


class TestServePool:
    def test_inline_pool_grades_with_perf(self):
        from repro.serve import GradingWorkerPool

        async def go():
            pool = GradingWorkerPool(workers=1, mode="inline")
            await pool.start()
            try:
                flagged = await pool.grade(
                    "mitx-polynomials", SLOW_EVALUATE, 30.0, perf=True
                )
                plain = await pool.grade(
                    "mitx-polynomials", SLOW_EVALUATE, 30.0
                )
            finally:
                await pool.stop()
            return flagged, plain

        flagged, plain = asyncio.run(go())
        assert flagged.report.perf
        assert plain.report.perf == []
