"""KB linter tests: the shipped KB is clean, seeded defects are caught.

The differential half builds minimal in-memory assignments, each
corrupted to trigger exactly one lint rule, and asserts the rule (and
only the expected rule) fires.
"""

from __future__ import annotations

from repro.analysis import (
    LINT_RULES,
    Severity,
    lint_assignment,
    lint_knowledge_base,
)
from repro.core.assignment import Assignment
from repro.kb.registry import all_assignment_names
from repro.matching.submission import ExpectedMethod
from repro.patterns.groups import PatternGroup, PatternVariant
from repro.patterns.model import (
    ContainmentConstraint,
    EqualityConstraint,
    Pattern,
    PatternNode,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType, GraphEdge, NodeType


def tmpl(source, variables=()):
    return ExprTemplate(source, frozenset(variables))


def make_node(node_id, type=NodeType.ASSIGN, source="v = 1",
              variables=("v",), **kwargs):
    return PatternNode(
        node_id=node_id, type=type, expr=tmpl(source, variables), **kwargs
    )


def make_pattern(name="p", **kwargs):
    kwargs.setdefault(
        "nodes", [make_node(0), make_node(1, source="v \\+ 1")]
    )
    kwargs.setdefault("edges", [GraphEdge(0, 1, EdgeType.DATA)])
    return Pattern(name=name, description="test pattern", **kwargs)


def make_assignment(patterns=None, constraints=None):
    method = ExpectedMethod(
        name="solve",
        patterns=patterns if patterns is not None else [(make_pattern(), 1)],
        constraints=constraints or [],
    )
    return Assignment(
        name="lint-test", title="lint test", statement="",
        expected_methods=[method],
    )


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestCleanKnowledgeBase:
    def test_shipped_kb_lints_clean(self):
        report = lint_knowledge_base()
        assert report.assignments == all_assignment_names()
        assert report.findings == []
        assert report.ok
        assert report.worst_rank() == -1

    def test_report_shape(self):
        payload = lint_knowledge_base().to_dict()
        assert payload["ok"] is True
        assert len(payload["assignments"]) == 12
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert payload["findings"] == []


class TestSeededDefects:
    def test_clean_synthetic_assignment_passes(self):
        assert lint_assignment(make_assignment()) == []

    def test_dangling_pattern_reference(self):
        bad = make_assignment(constraints=[
            EqualityConstraint(
                name="c", pattern_i="p", node_i=0,
                pattern_j="ghost", node_j=0,
            ),
        ])
        findings = lint_assignment(bad)
        assert rules_of(findings) == {"dangling-pattern-reference"}
        assert "'ghost'" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_duplicate_pattern(self):
        bad = make_assignment(patterns=[
            (make_pattern("p"), 1), (make_pattern("p"), 1),
        ])
        assert rules_of(lint_assignment(bad)) == {"duplicate-pattern"}

    def test_duplicate_through_group_variant(self):
        group = PatternGroup([
            PatternVariant(make_pattern("p")),
            PatternVariant(make_pattern("q"), node_map={0: 0, 1: 1}),
        ])
        bad = make_assignment(patterns=[(group, 1), (make_pattern("q"), 1)])
        assert rules_of(lint_assignment(bad)) == {"duplicate-pattern"}

    def test_disconnected_pattern(self):
        # two nodes, no edge, disjoint variables: nothing correlates them
        orphan = make_pattern("p", nodes=[
            make_node(0, source="a = 1", variables=("a",)),
            make_node(1, source="b = 2", variables=("b",)),
        ], edges=[])
        findings = lint_assignment(make_assignment([(orphan, 1)]))
        assert rules_of(findings) == {"disconnected-pattern"}
        assert "u1" in findings[0].message

    def test_shared_variable_counts_as_connected(self):
        # edge-disjoint but correlated through γ, like record-position-read
        linked = make_pattern("p", nodes=[
            make_node(0, source="a = 1", variables=("a",)),
            make_node(1, source="a \\+ 2", variables=("a",)),
        ], edges=[])
        assert lint_assignment(make_assignment([(linked, 1)])) == []

    def test_invalid_node_expression(self):
        bad_node = make_pattern("p", nodes=[
            make_node(0, source="(", variables=()),
            make_node(1),
        ])
        findings = lint_assignment(make_assignment([(bad_node, 1)]))
        assert rules_of(findings) == {"invalid-node-expression"}

    def test_invalid_containment_expression(self):
        bad = make_assignment(constraints=[
            ContainmentConstraint(
                name="c", pattern="p", node=0,
                expr=tmpl("[unclosed"), supporting=(),
            ),
        ])
        assert "invalid-node-expression" in rules_of(lint_assignment(bad))

    def test_unbound_feedback_placeholder_in_pattern(self):
        bad_pattern = make_pattern(
            "p", feedback_missing="initialize {ghost} first"
        )
        findings = lint_assignment(make_assignment([(bad_pattern, 1)]))
        assert rules_of(findings) == {"unbound-feedback-placeholder"}
        assert "{ghost}" in findings[0].message

    def test_unbound_feedback_placeholder_in_constraint(self):
        bad = make_assignment(constraints=[
            EqualityConstraint(
                name="c", pattern_i="p", node_i=0,
                pattern_j="p", node_j=1,
                feedback_incorrect="expected {ghost} here",
            ),
        ])
        assert rules_of(lint_assignment(bad)) == {
            "unbound-feedback-placeholder"
        }

    def test_bound_placeholder_is_fine(self):
        good = make_pattern("p", feedback_missing="initialize {v} first")
        assert lint_assignment(make_assignment([(good, 1)])) == []

    def test_unmatchable_ctrl_out_of_assign(self):
        bad = make_pattern("p", edges=[GraphEdge(0, 1, EdgeType.CTRL)])
        findings = lint_assignment(make_assignment([(bad, 1)]))
        assert rules_of(findings) == {"unmatchable-pattern"}
        assert "Ctrl" in findings[0].message

    def test_unmatchable_data_out_of_return(self):
        bad = make_pattern("p", nodes=[
            make_node(0, type=NodeType.RETURN, source="return v"),
            make_node(1),
        ])
        assert rules_of(lint_assignment(make_assignment([(bad, 1)]))) == {
            "unmatchable-pattern"
        }

    def test_unmatchable_self_loop(self):
        bad = make_pattern("p", edges=[GraphEdge(0, 0, EdgeType.DATA)])
        findings = lint_assignment(make_assignment([(bad, 1)]))
        assert "unmatchable-pattern" in rules_of(findings)

    def test_unmatchable_two_control_parents(self):
        three = make_pattern("p", nodes=[
            make_node(0, type=NodeType.COND, source="v > 0"),
            make_node(1, type=NodeType.COND, source="v < 9"),
            make_node(2),
        ], edges=[
            GraphEdge(0, 2, EdgeType.CTRL),
            GraphEdge(1, 2, EdgeType.CTRL),
        ])
        findings = lint_assignment(make_assignment([(three, 1)]))
        assert rules_of(findings) == {"unmatchable-pattern"}
        assert "control parent" in findings[0].message

    def test_empty_pattern_is_unmatchable(self):
        empty = Pattern(name="p", description="empty")
        findings = lint_assignment(make_assignment([(empty, 1)]))
        # a node-less pattern is also trivially "disconnected-free":
        # only the unmatchable rule speaks up
        assert rules_of(findings) == {"unmatchable-pattern"}


class TestLoadErrors:
    def test_unknown_assignment_reports_load_error(self):
        report = lint_knowledge_base(["does-not-exist"])
        assert not report.ok
        assert [f.rule for f in report.findings] == ["kb-load-error"]
        assert "does-not-exist" in report.findings[0].message

    def test_broken_module_names_module_and_rest_still_lints(self, monkeypatch):
        from repro.kb import registry

        monkeypatch.setitem(registry._MODULES, "broken", "no_such_module")
        report = lint_knowledge_base(["broken", "assignment1"])
        assert report.assignments == ["broken", "assignment1"]
        load_errors = [f for f in report.findings if f.rule == "kb-load-error"]
        assert len(load_errors) == 1
        assert "repro.kb.assignments.no_such_module" in load_errors[0].message
        # assignment1 still linted (cleanly) after the failure
        assert [f for f in report.findings if f.assignment == "assignment1"] == []


class TestReportRendering:
    def test_render_lists_findings(self):
        report = lint_knowledge_base(["does-not-exist"])
        text = report.render()
        assert "1 finding(s)" in text
        assert "kb-load-error" in text

    def test_rule_registry_covers_documented_rules(self):
        ids = [rule_id for rule_id, _runner in LINT_RULES]
        assert ids == [
            "dangling-pattern-reference",
            "duplicate-pattern",
            "disconnected-pattern",
            "invalid-node-expression",
            "unbound-feedback-placeholder",
            "unmatchable-pattern",
            "dangling-cost-shape-reference",
        ]
