"""Static side of the performance analyzer: loop table + detectors.

Golden positives and negatives per anti-pattern, the loop-id agreement
invariant (static numbering == interpreter counter keys), and the
clean-KB gate: zero perf findings on all twelve reference solutions.
"""

from __future__ import annotations

import pytest

from repro.analysis.perf.static import (
    BOUND_CONSTANT,
    BOUND_DATA_DEPENDENT,
    BOUND_INPUT_LINEAR,
    detect_patterns,
    method_loops,
    render_expr,
)
from repro.core.assignment import FunctionalTest
from repro.java import parse_submission
from repro.testing.functional import run_tests


def loops_of(source):
    return method_loops(parse_submission(source))


def findings_of(source):
    return detect_patterns(parse_submission(source))


def pattern_ids(source):
    return [finding.pattern_id for finding in findings_of(source)]


class TestLoopTable:
    def test_ids_depths_and_kinds(self):
        table = loops_of("""
            void m(int[] a) {
                for (int i = 0; i < a.length; i++) {
                    int j = 0;
                    while (j < 2) { j++; }
                }
                do { } while (false);
            }
        """)
        loops = table["m"]
        assert [l.loop_id for l in loops] == [
            "m:for@0", "m:while@1", "m:dowhile@2",
        ]
        assert [l.depth for l in loops] == [1, 2, 1]
        assert loops[1].parent is loops[0]
        assert loops[2].parent is None

    def test_ids_match_runtime_counter_keys(self):
        """The invariant the dynamic pass rests on: the static walk
        reproduces the compiler's loop numbering exactly."""
        source = """
            int sum(int[] a) {
                int t = 0;
                for (int i = 0; i < a.length; i++) {
                    int j = 0;
                    while (j < 2) { t += a[i]; j++; }
                }
                return t;
            }
        """
        unit = parse_submission(source)
        static_ids = {l.loop_id for l in method_loops(unit)["sum"]}
        report = run_tests(
            unit, [FunctionalTest(method="sum", arguments=([1, 2, 3],))]
        )
        cost = report.results[0].cost
        assert cost is not None
        assert set(cost.loop_iterations) == static_ids

    def test_loops_inside_if_and_foreach(self):
        table = loops_of("""
            void m(int[] a, boolean b) {
                if (b) {
                    for (int x : a) { }
                } else {
                    while (b) { b = false; }
                }
            }
        """)
        assert [l.kind for l in table["m"]] == ["foreach", "while"]

    def test_bound_classification(self):
        table = loops_of("""
            void m(int[] a, int n) {
                for (int i = 0; i < a.length; i++) { }
                for (int i = 0; i < 10; i++) { }
                while (n > 0) { n /= 10; }
                for (int x : a) { }
            }
        """)
        assert [l.bound for l in table["m"]] == [
            BOUND_INPUT_LINEAR, BOUND_CONSTANT, BOUND_DATA_DEPENDENT,
            BOUND_INPUT_LINEAR,
        ]

    def test_while_loop_variable(self):
        table = loops_of("""
            void m(int n) {
                int i = 0;
                while (i < n) { i++; }
            }
        """)
        assert table["m"][0].loop_var == "i"


class TestNestedLoopLookup:
    SLOW = """
        int[] reorder(int[] a, int[] order) {
            int[] out = new int[a.length];
            for (int i = 0; i < a.length; i++) {
                for (int j = 0; j < order.length; j++) {
                    if (order[j] == i) { out[i] = a[j]; }
                }
            }
            return out;
        }
    """

    def test_positive(self):
        findings = findings_of(self.SLOW)
        assert [f.pattern_id for f in findings] == ["nested-loop-lookup"]
        finding = findings[0]
        assert finding.loop.loop_id == "reorder:for@1"
        assert finding.gamma["outer_var"] == "i"
        assert finding.gamma["inner_var"] == "j"
        assert finding.gamma["probe"] == "order[j] == i"

    def test_equals_call_probe(self):
        assert pattern_ids("""
            void m(String[] a, String[] b) {
                for (int i = 0; i < a.length; i++) {
                    for (int j = 0; j < b.length; j++) {
                        if (b[j].equals(a[i])) { System.out.println(j); }
                    }
                }
            }
        """) == ["nested-loop-lookup"]

    def test_negative_independent_nested_loops(self):
        # a legitimate O(n*m) pairwise computation: no equality probe
        assert pattern_ids("""
            int m(int[] a, int[] b) {
                int t = 0;
                for (int i = 0; i < a.length; i++) {
                    for (int j = 0; j < b.length; j++) {
                        t += a[i] * b[j];
                    }
                }
                return t;
            }
        """) == []

    def test_negative_single_loop_with_equality(self):
        assert pattern_ids("""
            int find(int[] a, int k) {
                for (int i = 0; i < a.length; i++) {
                    if (a[i] == k) { return i; }
                }
                return -1;
            }
        """) == []


class TestLoopInvariantRecomputation:
    SLOW = """
        int evaluate(int[] c, int x) {
            int total = 0;
            for (int i = 0; i < c.length; i++) {
                int p = 1;
                for (int k = 0; k < i; k++) { p = p * x; }
                total = total + c[i] * p;
            }
            return total;
        }
    """

    def test_positive(self):
        findings = findings_of(self.SLOW)
        assert [f.pattern_id for f in findings] == [
            "loop-invariant-recomputation"
        ]
        assert findings[0].gamma["var"] == "p"
        assert findings[0].loop.loop_id == "evaluate:for@1"

    def test_negative_incremental_update(self):
        # the fast fix: p carried across outer iterations, no inner loop
        assert pattern_ids("""
            int evaluate(int[] c, int x) {
                int total = 0;
                int p = 1;
                for (int i = 0; i < c.length; i++) {
                    total = total + c[i] * p;
                    p = p * x;
                }
                return total;
            }
        """) == []

    def test_negative_accumulator_not_reset(self):
        # inner loop writes a variable initialized *outside* the outer
        # loop: a running total, not a per-iteration recomputation
        assert pattern_ids("""
            int m(int[][] a) {
                int t = 0;
                for (int i = 0; i < a.length; i++) {
                    for (int j = 0; j < a[i].length; j++) { t += a[i][j]; }
                }
                return t;
            }
        """) == []


class TestStringConcatInLoop:
    def test_positive_plus_equals(self):
        findings = findings_of("""
            String join(int[] a) {
                String s = "";
                for (int i = 0; i < a.length; i++) { s += a[i] + ","; }
                return s;
            }
        """)
        assert [f.pattern_id for f in findings] == ["string-concat-in-loop"]
        assert findings[0].gamma == {"var": "s", "kind": "for"}

    def test_positive_self_append(self):
        assert pattern_ids("""
            String m(int n) {
                String s = "";
                int i = 0;
                while (i < n) { s = s + "x"; i++; }
                return s;
            }
        """) == ["string-concat-in-loop"]

    def test_negative_declared_inside_loop(self):
        # a fresh per-iteration string never accumulates
        assert pattern_ids("""
            void m(int[] a) {
                for (int i = 0; i < a.length; i++) {
                    String s = "v=" + a[i];
                    System.out.println(s);
                }
            }
        """) == []

    def test_negative_int_accumulator(self):
        assert pattern_ids("""
            int m(int[] a) {
                int s = 0;
                for (int i = 0; i < a.length; i++) { s += a[i]; }
                return s;
            }
        """) == []


class TestRenderExpr:
    @pytest.mark.parametrize("source, rendered", [
        ("a[j] == i", "a[j] == i"),
        ("b[j].equals(a[i])", "b[j].equals(a[i])"),
        ("s += x", "s += x"),
        ("x > 0 ? x : -x", "x > 0 ? x : -x"),
    ])
    def test_round_trips_common_shapes(self, source, rendered):
        from repro.java.parser import parse_expression

        assert render_expr(parse_expression(source)) == rendered


class TestCleanKnowledgeBase:
    def test_references_have_no_perf_findings(self, assignment):
        """The clean-KB gate: every reference solution is finding-free."""
        for reference in assignment.reference_solutions:
            assert detect_patterns(parse_submission(reference)) == []
