"""Analysis riding the batch pipeline, metrics, and the serving layer."""

from __future__ import annotations

import asyncio
import json

from repro.core.pipeline import BatchGrader
from repro.serve.metrics import render_prometheus

from tests.serve.conftest import http_call, running_service

BUGGY = "int f(int n) { int x; while (true) { int y = 1; } return x; }"


class TestBatchStats:
    def test_analysis_counters_and_phase_in_stats(self, assignment1):
        grader = BatchGrader(assignment1, mode="serial", cache=False)
        result = grader.grade_batch([("s1", BUGGY)])
        stats = result.stats.to_dict()
        assert stats["counters"]["analysis.runs"] == 1
        assert stats["counters"]["analysis.diagnostics"] > 0
        assert stats["counters"]["analysis.use-before-init"] == 1
        assert stats["phase_ms"].get("analysis", 0) > 0
        assert "analysis" in result.stats.summary()

    def test_unmatched_submission_still_gets_diagnostics(self, assignment1):
        # acceptance: matching finds nothing, diagnostics carry feedback
        result = BatchGrader(assignment1, mode="serial", cache=False) \
            .grade_batch([("s1", BUGGY)])
        report = result.items[0].report
        assert report.comments  # every expected method reported missing
        assert report.diagnostics
        assert report.diagnostics_are_primary

    def test_diagnostics_identical_across_modes(self, assignment1):
        batch = [("s1", BUGGY), ("s2", "int g() { return 1; int z = 2; }")]
        serial = BatchGrader(assignment1, mode="serial", cache=False) \
            .grade_batch(batch)
        threaded = BatchGrader(assignment1, mode="thread", workers=2,
                               cache=False).grade_batch(batch)
        process = BatchGrader(assignment1, mode="process", workers=2,
                              cache=False).grade_batch(batch)
        assert serial.rendered() == threaded.rendered() == process.rendered()
        for left, right in zip(serial.items, process.items):
            assert left.report.diagnostics == right.report.diagnostics


class TestPrometheus:
    def test_analysis_counters_and_phase_exported(self):
        snapshot = {
            "serve": {},
            "pipeline": {
                "counters": {
                    "analysis.runs": 4,
                    "analysis.use-before-init": 2,
                    "match.candidates_pruned": 9,
                },
                "phase_ms": {"parse": 1.0, "analysis": 3.25},
            },
        }
        text = render_prometheus(snapshot)
        assert "repro_analysis_runs 4" in text
        assert "repro_analysis_use_before_init 2" in text
        assert "repro_pipeline_analysis_ms 3.25" in text
        # non-analysis pipeline counters stay JSON-only
        assert "candidates_pruned" not in text


class TestServeLint:
    def test_lint_endpoint_reports_clean_kb(self):
        async def scenario():
            async with running_service() as service:
                host, port = service.config.host, service.port
                status, _headers, raw = await http_call(
                    host, port, "GET", "/lint"
                )
                return status, json.loads(raw)

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload["ok"] is True
        assert len(payload["assignments"]) == 12

    def test_grade_response_carries_diagnostics(self):
        async def scenario():
            async with running_service() as service:
                host, port = service.config.host, service.port
                status, _headers, raw = await http_call(
                    host, port, "POST", "/assignments/assignment1/grade",
                    body={"source": BUGGY},
                )
                return status, json.loads(raw)

        status, payload = asyncio.run(scenario())
        assert status == 200
        report = payload["report"]
        checks = {d["check"] for d in report["diagnostics"]}
        assert "use-before-init" in checks

    def test_metrics_expose_analysis_after_grading(self):
        async def scenario():
            async with running_service() as service:
                host, port = service.config.host, service.port
                await http_call(
                    host, port, "POST", "/assignments/assignment1/grade",
                    body={"source": BUGGY},
                )
                _status, _headers, raw = await http_call(
                    host, port, "GET", "/metrics?format=prometheus"
                )
                return raw.decode()

        text = asyncio.run(scenario())
        assert "repro_analysis_runs 1" in text
        assert "repro_pipeline_analysis_ms" in text
