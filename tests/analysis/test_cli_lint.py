"""CLI ``lint-kb`` subcommand and lazy registry iteration."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import KnowledgeBaseError
from repro.kb.registry import all_assignment_names, iter_assignments


class TestLintKbCommand:
    def test_clean_kb_exits_zero(self, capsys):
        assert main(["lint-kb"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_unknown_assignment_exits_nonzero(self, capsys):
        assert main(["lint-kb", "does-not-exist"]) == 1
        out = capsys.readouterr().out
        assert "kb-load-error" in out

    def test_json_to_stdout(self, capsys):
        assert main(["lint-kb", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["assignments"]) == 12

    def test_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "lint.json"
        assert main(["lint-kb", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        # the human summary still prints alongside the file
        assert "0 finding(s)" in capsys.readouterr().out

    def test_fail_on_never_always_exits_zero(self, capsys):
        assert main(["lint-kb", "does-not-exist", "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_subset_selection(self, capsys):
        assert main(["lint-kb", "assignment1"]) == 0
        capsys.readouterr()


class TestIterAssignments:
    def test_yields_all_twelve_in_order(self):
        pairs = list(iter_assignments())
        assert [name for name, _ in pairs] == all_assignment_names()
        assert len(pairs) == 12
        for name, assignment in pairs:
            assert assignment.name == name

    def test_subset_keeps_requested_order(self):
        names = ["rit-medals-by-ath", "assignment1"]
        assert [n for n, _ in iter_assignments(names)] == names

    def test_unknown_name_raises_kb_error(self):
        with pytest.raises(KnowledgeBaseError, match="nope"):
            list(iter_assignments(["nope"]))

    def test_broken_module_error_names_module(self, monkeypatch):
        from repro.kb import registry

        monkeypatch.setitem(registry._MODULES, "broken", "missing_mod")
        with pytest.raises(KnowledgeBaseError) as excinfo:
            list(iter_assignments(["broken"]))
        assert "repro.kb.assignments.missing_mod" in str(excinfo.value)
