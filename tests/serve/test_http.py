"""Unit tests for the hand-rolled HTTP layer (repro.serve.http)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    DEFAULT_MAX_BODY,
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
)


def parse(raw: bytes, max_body: int = DEFAULT_MAX_BODY):
    """Feed raw bytes to read_request through a fresh StreamReader."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive  # HTTP/1.1 default

    def test_query_string_and_percent_decoding(self):
        request = parse(
            b"GET /metrics?format=prometheus&x=a%20b HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/metrics"
        assert request.query == {"format": "prometheus", "x": "a b"}

    def test_post_body_read_exactly(self):
        request = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.method == "POST"
        assert request.body == b"abcd"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_disables_keep_alive(self):
        request = parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        request = parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert request.keep_alive

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET /x\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_protocol_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert excinfo.value.status == 400

    def test_chunked_upload_is_501(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 501

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_negative_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"a" * 100,
                max_body=10,
            )
        assert excinfo.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_too_many_headers_is_431(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(65)
        )
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert excinfo.value.status == 431

    def test_overlong_header_line_is_431(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 9000 + b"\r\n\r\n")
        assert excinfo.value.status == 431

    def test_header_without_colon_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n")
        assert excinfo.value.status == 400


class TestHttpRequestJson:
    def test_decodes_object(self):
        request = HttpRequest("POST", "/", body=b'{"a": 1}')
        assert request.json() == {"a": 1}

    def test_invalid_json_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            HttpRequest("POST", "/", body=b"{nope").json()
        assert excinfo.value.status == 400

    def test_non_object_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            HttpRequest("POST", "/", body=b"[1, 2]").json()
        assert excinfo.value.status == 400


class TestHttpResponse:
    def test_encode_frames_the_body(self):
        wire = HttpResponse.json({"ok": True}).encode(keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Type: application/json" in head
        assert b"Connection: keep-alive" in head
        assert f"Content-Length: {len(body)}".encode() in head

    def test_close_connection_header(self):
        wire = HttpResponse.text("bye").encode(keep_alive=False)
        assert b"Connection: close" in wire

    def test_extra_headers_emitted(self):
        wire = HttpResponse.json(
            {}, status=429, headers={"Retry-After": "7"}
        ).encode(keep_alive=False)
        assert wire.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 7" in wire
