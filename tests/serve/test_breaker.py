"""Unit tests for the circuit breaker (repro.serve.breaker).

All transitions are driven by a fake clock — no sleeping.
"""

from __future__ import annotations

import pytest

from repro.serve import BreakerRegistry, BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(clock, **overrides):
    params = dict(
        window=10,
        min_volume=5,
        failure_ratio=0.5,
        cooldown_seconds=30.0,
        half_open_probes=2,
        clock=clock,
    )
    params.update(overrides)
    return CircuitBreaker(**params)


class TestTrip:
    def test_starts_closed_and_allows(self):
        breaker = make(FakeClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_below_min_volume_never_trips(self):
        breaker = make(FakeClock())
        for _ in range(4):
            breaker.record(failure=True)
        assert breaker.state is BreakerState.CLOSED

    def test_trips_at_ratio_with_volume(self):
        breaker = make(FakeClock())
        for _ in range(3):
            breaker.record(failure=False)
        breaker.record(failure=True)
        breaker.record(failure=True)  # 2/5 = 0.4 < 0.5
        assert breaker.state is BreakerState.CLOSED
        breaker.record(failure=True)  # 3/6 = 0.5 — trip
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_successes_keep_it_closed(self):
        breaker = make(FakeClock())
        for _ in range(50):
            breaker.record(failure=False)
        assert breaker.state is BreakerState.CLOSED

    def test_window_slides(self):
        # old outcomes age out: with window=2 and ratio=1.0, a failure
        # followed by a success no longer counts once two newer
        # outcomes arrive
        breaker = make(
            FakeClock(), window=2, min_volume=2, failure_ratio=1.0
        )
        breaker.record(failure=True)
        breaker.record(failure=False)   # window [T, F] — ratio 0.5
        assert breaker.state is BreakerState.CLOSED
        breaker.record(failure=True)    # window [F, T] — ratio 0.5
        assert breaker.state is BreakerState.CLOSED
        breaker.record(failure=True)    # window [T, T] — ratio 1.0
        assert breaker.state is BreakerState.OPEN


class TestRecovery:
    def trip(self, breaker):
        for _ in range(5):
            breaker.record(failure=True)
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_promotes_to_half_open(self):
        clock = FakeClock()
        breaker = make(clock)
        self.trip(breaker)
        clock.advance(29.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_only_probe_quota(self):
        clock = FakeClock()
        breaker = make(clock)
        self.trip(breaker)
        clock.advance(31)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # quota of 2 spent

    def test_all_probes_succeeding_closes(self):
        clock = FakeClock()
        breaker = make(clock)
        self.trip(breaker)
        clock.advance(31)
        assert breaker.allow() and breaker.allow()
        breaker.record(failure=False)
        breaker.record(failure=False)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make(clock)
        self.trip(breaker)
        clock.advance(31)
        assert breaker.allow()
        breaker.record(failure=True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow()

    def test_late_result_while_open_is_ignored(self):
        clock = FakeClock()
        breaker = make(clock)
        self.trip(breaker)
        breaker.record(failure=False)  # admitted pre-trip, finished late
        assert breaker.state is BreakerState.OPEN


class TestRetryAfter:
    def test_counts_down_with_the_clock(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(5):
            breaker.record(failure=True)
        assert breaker.retry_after_seconds() == 31
        clock.advance(25)
        assert breaker.retry_after_seconds() == 6

    def test_minimum_one_second(self):
        breaker = make(FakeClock())
        assert breaker.retry_after_seconds() == 1


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(min_volume=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_ratio=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_ratio=1.5)


class TestSnapshotAndRegistry:
    def test_snapshot_shape(self):
        breaker = make(FakeClock())
        breaker.record(failure=True)
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": "closed",
            "window_failures": 1,
            "window_size": 1,
            "trips": 0,
        }

    def test_registry_is_per_assignment(self):
        registry = BreakerRegistry(min_volume=1, failure_ratio=1.0)
        first = registry.get("assignment1")
        assert registry.get("assignment1") is first
        assert registry.get("assignment2") is not first
        first.record(failure=True)
        assert registry.get("assignment2").state is BreakerState.CLOSED
        assert set(registry.snapshot()) == {"assignment1", "assignment2"}
