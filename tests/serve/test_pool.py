"""Tests for the grading worker pool (repro.serve.pool).

Process-mode tests fork real workers; they are kept few and small
(one worker each) so the suite stays fast.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serve import GradingWorkerPool


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            GradingWorkerPool(mode="threads")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            GradingWorkerPool(workers=0)

    def test_grade_before_start_raises(self):
        async def go():
            pool = GradingWorkerPool(workers=1, mode="inline")
            with pytest.raises(RuntimeError):
                await pool.grade("assignment1", "int x;", None)

        run(go())


class TestInlineMode:
    def test_grades_ok(self, good_source):
        async def go():
            pool = GradingWorkerPool(workers=1, mode="inline")
            await pool.start()
            try:
                result = await pool.grade("assignment1", good_source, 10.0)
            finally:
                await pool.stop()
            return result

        result = run(go())
        assert result.report.status == "ok"
        assert not result.killed
        assert result.collector is not None
        assert "parse" in result.collector.seconds

    def test_hang_hits_hard_timeout(self, good_source):
        async def go():
            pool = GradingWorkerPool(
                workers=1, mode="inline", kill_grace_seconds=0.1
            )
            await pool.start()
            try:
                started = time.perf_counter()
                result = await pool.grade(
                    "assignment1", good_source, 0.1, hang_seconds=5.0
                )
                return result, time.perf_counter() - started
            finally:
                await pool.stop()

        result, elapsed = run(go())
        assert result.report.status == "timeout"
        assert result.killed
        assert elapsed < 2.0

    def test_unknown_assignment_is_isolated(self):
        async def go():
            pool = GradingWorkerPool(workers=1, mode="inline")
            await pool.start()
            try:
                return await pool.grade("no-such", "int x;", 5.0)
            finally:
                await pool.stop()

        result = run(go())
        assert result.report.status == "error"


class TestProcessMode:
    def test_grades_ok_and_reuses_worker(self, good_source):
        async def go():
            pool = GradingWorkerPool(workers=1, mode="process")
            await pool.start()
            try:
                first = await pool.grade("assignment1", good_source, 30.0)
                started = time.perf_counter()
                second = await pool.grade(
                    "assignment1", good_source + "//2", 30.0
                )
                warm_seconds = time.perf_counter() - started
            finally:
                await pool.stop()
            return first, second, warm_seconds

        first, second, warm_seconds = run(go())
        assert first.report.status == "ok"
        assert second.report.status == "ok"
        # the second grade reuses the warm engine: no fork, no rebuild
        assert warm_seconds < 1.0
        assert first.collector is not None
        assert "pattern_match" in first.collector.seconds

    def test_hung_worker_is_killed_and_respawned(self, good_source):
        async def go():
            pool = GradingWorkerPool(
                workers=1, mode="process", kill_grace_seconds=0.2
            )
            await pool.start()
            try:
                started = time.perf_counter()
                hung = await pool.grade(
                    "assignment1", good_source, 0.2, hang_seconds=60.0
                )
                kill_seconds = time.perf_counter() - started
                after = await pool.grade(
                    "assignment1", good_source + "//after", 30.0
                )
            finally:
                await pool.stop()
            return hung, kill_seconds, after, pool.respawns

        hung, kill_seconds, after, respawns = run(go())
        assert hung.report.status == "timeout"
        assert hung.killed
        assert hung.collector is None  # stats died with the worker
        # hard timeout (0.4s) plus kill/reap, nowhere near the 60s hang
        assert kill_seconds < 5.0
        assert respawns == 1
        assert after.report.status == "ok"

    def test_worker_exception_keeps_worker_alive(self, good_source):
        async def go():
            pool = GradingWorkerPool(workers=1, mode="process")
            await pool.start()
            try:
                broken = await pool.grade("no-such", "int x;", 30.0)
                healthy = await pool.grade("assignment1", good_source, 30.0)
            finally:
                await pool.stop()
            return broken, healthy, pool.respawns

        broken, healthy, respawns = run(go())
        assert broken.report.status == "error"
        assert healthy.report.status == "ok"
        assert respawns == 0

    def test_cooperative_deadline_returns_timeout_without_kill(
        self, good_source
    ):
        async def go():
            pool = GradingWorkerPool(workers=1, mode="process")
            await pool.start()
            try:
                return await pool.grade(
                    "assignment1", good_source, 0.000001
                ), pool.respawns
            finally:
                await pool.stop()

        result, respawns = run(go())
        # the child noticed the expired deadline at a phase boundary
        # and answered on its own: no kill, no respawn
        assert result.report.status == "timeout"
        assert not result.killed
        assert respawns == 0
