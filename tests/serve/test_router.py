"""Tests for the consistent-hash shard router.

The ring tests are pure unit tests; the integration tests fork real
shard processes (each a full :class:`GradingService` on an ephemeral
port) behind a router and drive it with the same stdlib HTTP client
the server tests use — synchronous tests, one event loop per test.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from repro.core.pipeline import source_key
from repro.core.storage import ResultStore
from repro.serve import HashRing, ServiceConfig, ShardRouter

from tests.serve.conftest import http_call

import pytest


class TestHashRing:
    def test_deterministic(self):
        a = HashRing(4)
        b = HashRing(4)
        for i in range(100):
            assert a.shard_for("assignment1", f"key-{i}") == b.shard_for(
                "assignment1", f"key-{i}"
            )

    def test_every_shard_owns_a_reasonable_share(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(1000):
            counts[ring.shard_for("assignment1", f"key-{i:04d}")] += 1
        assert sum(counts) == 1000
        for count in counts:
            assert count > 100  # perfectly even would be 250

    def test_adding_a_shard_moves_a_bounded_fraction(self):
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            1
            for i in range(1000)
            if before.shard_for("a1", f"k{i}") != after.shard_for("a1", f"k{i}")
        )
        # consistent hashing moves ~1/5 of keys; naive modulo would move ~4/5
        assert moved < 400

    def test_assignment_is_part_of_the_key(self):
        ring = HashRing(8)
        owners = {ring.shard_for(f"assignment{i}", "same-key")
                  for i in range(20)}
        assert len(owners) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


@contextlib.asynccontextmanager
async def running_router(shards=2, **overrides):
    """A started :class:`ShardRouter` on an ephemeral port.

    ``overrides`` configure the per-shard services (inline pool, one
    worker by default — the cheapest real shard).  Always drained.
    """
    kwargs = dict(port=0, workers=1, pool_mode="inline", debug_hooks=True)
    kwargs.update(overrides)
    router = ShardRouter(ServiceConfig(**kwargs), shards=shards)
    await router.start()
    try:
        yield router
    finally:
        await router.drain()


async def router_grade(router, assignment, body):
    status, _, raw = await http_call(
        router.config.host, router.port,
        "POST", f"/assignments/{assignment}/grade", body=body,
    )
    return status, json.loads(raw)


class TestRouterIntegration:
    def test_grade_proxies_and_matches_direct_grading(
        self, good_source, engine1
    ):
        async def scenario():
            async with running_router(shards=2) as router:
                return await router_grade(
                    router, "assignment1",
                    {"source": good_source, "label": "s1"},
                )

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload["from_cache"] is False
        assert payload["report"] == engine1.grade(good_source).to_dict()

    def test_resubmission_lands_on_the_warm_shard(self, good_source):
        async def scenario():
            async with running_router(shards=2) as router:
                first = await router_grade(
                    router, "assignment1", {"source": good_source}
                )
                # normalization-stable routing: CRLF + trailing blank
                # lines hash to the same content key, hence same shard
                variant = good_source.replace("\n", "\r\n") + "\n\n"
                second = await router_grade(
                    router, "assignment1", {"source": variant}
                )
                return first, second

        first, second = asyncio.run(scenario())
        assert first[1]["from_cache"] is False
        assert second[1]["from_cache"] is True
        assert second[1]["report"] == first[1]["report"]

    def test_shards_share_one_sqlite_store(
        self, tmp_path, good_source, assignment1
    ):
        async def scenario():
            async with running_router(
                shards=2, cache_dir=tmp_path, store_backend="sqlite"
            ) as router:
                return await router_grade(
                    router, "assignment1", {"source": good_source}
                )

        status, payload = asyncio.run(scenario())
        assert status == 200

        # the report landed in the shared store, under the content key
        store = ResultStore(tmp_path, assignment1, backend="sqlite")
        cached = store.get(source_key(good_source))
        assert cached is not None
        assert cached.to_dict() == payload["report"]

        # a brand-new router replays it: persistence across restarts
        async def replay():
            async with running_router(
                shards=2, cache_dir=tmp_path, store_backend="sqlite"
            ) as router:
                return await router_grade(
                    router, "assignment1", {"source": good_source}
                )

        status, payload = asyncio.run(replay())
        assert status == 200
        assert payload["from_cache"] is True

    def test_error_passthrough_and_routing_fallback(self, good_source):
        async def scenario():
            async with running_router(shards=2) as router:
                host, port = router.config.host, router.port
                bad_json = await http_call(
                    host, port, "POST", "/assignments/assignment1/grade",
                    raw_body=b"{not json",
                )
                bad_assignment = await http_call(
                    host, port, "POST", "/assignments/nope/grade",
                    body={"source": good_source},
                )
                not_found = await http_call(host, port, "GET", "/nope")
                unroutable = router.counters["router.unroutable"]
                return bad_json, bad_assignment, not_found, unroutable

        bad_json, bad_assignment, not_found, unroutable = asyncio.run(
            scenario()
        )
        assert bad_json[0] == 400  # shard 0's canonical error
        assert bad_assignment[0] == 404
        assert not_found[0] == 404
        assert unroutable == 1

    def test_health_and_topology_endpoints(self):
        async def scenario():
            async with running_router(shards=2) as router:
                host, port = router.config.host, router.port
                health = await http_call(host, port, "GET", "/healthz")
                ready = await http_call(host, port, "GET", "/readyz")
                shards = await http_call(host, port, "GET", "/shards")
                assignments = await http_call(
                    host, port, "GET", "/assignments"
                )
                return health, ready, shards, assignments

        health, ready, shards, assignments = asyncio.run(scenario())
        assert health[0] == 200 and health[2] == b"ok\n"
        assert ready[0] == 200
        topology = json.loads(shards[2])["shards"]
        assert len(topology) == 2
        assert all(s["alive"] and s["port"] for s in topology)
        assert topology[0]["port"] != topology[1]["port"]
        assert "assignment1" in json.loads(assignments[2])["assignments"]

    def test_metrics_aggregate_across_shards(self, tmp_path, good_source):
        async def scenario():
            async with running_router(
                shards=2, cache_dir=tmp_path, store_backend="sqlite"
            ) as router:
                host, port = router.config.host, router.port
                # spread traffic: distinct sources hash to both shards
                # with high probability (7 keys, 2 shards)
                for i in range(7):
                    await router_grade(
                        router, "assignment1",
                        {"source": good_source + f"\n// v{i}"},
                    )
                _, _, raw = await http_call(host, port, "GET", "/metrics")
                _, _, prom = await http_call(
                    host, port, "GET", "/metrics?format=prometheus"
                )
                return json.loads(raw), prom.decode()

        snapshot, prom = asyncio.run(scenario())
        assert snapshot["router"]["shards"] == 2
        assert snapshot["router"]["counters"]["router.proxied"] == 7
        # shard counters sum through the aggregate
        assert snapshot["serve"]["serve.grade_requests"] == 7
        assert snapshot["pipeline"]["submissions"] == 7
        assert snapshot["store"] == {"enabled": True, "backend": "sqlite"}
        assert len(snapshot["shards"]) == 2
        assert all(
            s["up"] and s["port"] for s in snapshot["shards"].values()
        )

        assert "repro_router_shards 2" in prom
        assert 'repro_router_shard_up{shard="0"} 1' in prom
        assert 'repro_router_shard_up{shard="1"} 1' in prom
        assert 'repro_store_backend{backend="sqlite"} 1' in prom
        assert 'repro_cache_store_writes{backend="sqlite"}' in prom
        assert "repro_serve_grade_requests 7" in prom

    def test_drain_rejects_new_work_and_stops_shards(self, good_source):
        async def scenario():
            router = ShardRouter(
                ServiceConfig(port=0, workers=1, pool_mode="inline"),
                shards=2,
            )
            await router.start()
            pids = [h.process for h in router._handles]
            clean = await router.drain()
            after = await asyncio.to_thread(
                lambda: [p.is_alive() for p in pids]
            )
            return clean, after

        clean, after = asyncio.run(scenario())
        assert clean is True
        assert after == [False, False]

    def test_router_validates_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(ServiceConfig(), shards=0)
