"""End-to-end tests for the grading service over real sockets.

Most scenarios run on the inline pool (no fork cost); the hard-kill
path gets one process-mode test mirroring the bench's hang scenario.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import pytest

from repro.core.pipeline import BatchGrader
from tests.serve.conftest import (
    grade_call,
    http_call,
    http_exchange,
    running_service,
)


def run(coro):
    return asyncio.run(coro)


class TestOperationalEndpoints:
    def test_healthz_readyz_index(self):
        async def go():
            async with running_service() as service:
                host, port = service.config.host, service.port
                health = await http_call(host, port, "GET", "/healthz")
                ready = await http_call(host, port, "GET", "/readyz")
                index = await http_call(host, port, "GET", "/")
                listing = await http_call(host, port, "GET", "/assignments")
            return health, ready, index, listing

        health, ready, index, listing = run(go())
        assert health[0] == 200 and health[2] == b"ok\n"
        assert ready[0] == 200 and ready[2] == b"ready\n"
        assert index[0] == 200
        assert "POST /assignments/{name}/grade" in json.loads(index[2])[
            "endpoints"
        ]
        assert "assignment1" in json.loads(listing[2])["assignments"]

    def test_unknown_route_is_404(self):
        async def go():
            async with running_service() as service:
                return await http_call(
                    service.config.host, service.port, "GET", "/nope"
                )

        status, _, raw = run(go())
        assert status == 404
        assert "no route" in json.loads(raw)["error"]

    def test_method_mismatches_are_405(self):
        async def go():
            async with running_service() as service:
                host, port = service.config.host, service.port
                get_grade = await http_call(
                    host, port, "GET", "/assignments/assignment1/grade"
                )
                post_health = await http_call(
                    host, port, "POST", "/healthz"
                )
            return get_grade[0], post_health[0]

        assert run(go()) == (405, 405)

    def test_keep_alive_serves_multiple_requests(self):
        async def go():
            async with running_service() as service:
                reader, writer = await asyncio.open_connection(
                    service.config.host, service.port
                )
                try:
                    first = await http_exchange(
                        reader, writer, "GET", "/healthz"
                    )
                    second = await http_exchange(
                        reader, writer, "GET", "/readyz"
                    )
                finally:
                    writer.close()
                    with contextlib.suppress(OSError):
                        await writer.wait_closed()
            return first, second

        first, second = run(go())
        assert first[0] == 200 and second[0] == 200
        assert first[1]["connection"] == "keep-alive"


class TestGrading:
    def test_grade_matches_offline_batch_grader(
        self, assignment1, good_source
    ):
        offline = BatchGrader(assignment1, cache=False).grade_batch(
            [good_source]
        ).reports[0].to_dict()

        async def go():
            async with running_service() as service:
                return await grade_call(
                    service, "assignment1",
                    {"source": good_source, "label": "s1"},
                )

        status, payload = run(go())
        assert status == 200
        assert payload["label"] == "s1"
        assert payload["from_cache"] is False
        assert payload["report"] == offline

    def test_duplicate_source_hits_cache(self, good_source):
        async def go():
            async with running_service() as service:
                first = await grade_call(
                    service, "assignment1", {"source": good_source}
                )
                second = await grade_call(
                    service, "assignment1", {"source": good_source}
                )
            return first, second

        first, second = run(go())
        assert first[1]["from_cache"] is False
        assert second[1]["from_cache"] is True
        assert second[1]["report"] == first[1]["report"]

    def test_persistent_cache_survives_a_service_restart(
        self, good_source, tmp_path
    ):
        async def serve_once():
            async with running_service(cache_dir=tmp_path) as service:
                status, payload = await grade_call(
                    service, "assignment1", {"source": good_source}
                )
                counters = dict(
                    service.metrics.pipeline.counters
                )
            return status, payload, counters

        first = run(serve_once())
        second = run(serve_once())  # fresh service, warm disk
        assert first[0] == second[0] == 200
        assert first[1]["from_cache"] is False
        assert second[1]["from_cache"] is True
        assert second[1]["report"] == first[1]["report"]
        assert first[2].get("cache.store_writes") == 1
        assert second[2].get("cache.store_hits") == 1
        # the warm service never parsed or matched anything
        assert not any(
            name.startswith("match.") for name in second[2]
        )

    def test_batch_grader_warms_the_service_cache(
        self, assignment1, good_source, tmp_path
    ):
        BatchGrader(assignment1, store=tmp_path).grade_batch([good_source])

        async def go():
            async with running_service(cache_dir=tmp_path) as service:
                return await grade_call(
                    service, "assignment1", {"source": good_source}
                )

        status, payload = run(go())
        assert status == 200
        assert payload["from_cache"] is True

    def test_parse_error_is_a_successful_grading(self):
        async def go():
            async with running_service() as service:
                return await grade_call(
                    service, "assignment1",
                    {"source": "void assignment1(int[] a) { int = ; }"},
                )

        status, payload = run(go())
        assert status == 200
        assert payload["report"]["status"] == "parse-error"

    def test_unknown_assignment_is_404(self, good_source):
        async def go():
            async with running_service() as service:
                return await grade_call(
                    service, "no-such", {"source": good_source}
                )

        status, payload = run(go())
        assert status == 404
        assert "unknown assignment" in payload["error"]

    def test_validation_errors_are_400(self, good_source):
        async def go():
            async with running_service() as service:
                host, port = service.config.host, service.port
                results = {}
                results["no_source"] = await grade_call(
                    service, "assignment1", {}
                )
                results["empty_source"] = await grade_call(
                    service, "assignment1", {"source": "   "}
                )
                results["bad_label"] = await grade_call(
                    service, "assignment1",
                    {"source": good_source, "label": 7},
                )
                results["bad_deadline"] = await grade_call(
                    service, "assignment1",
                    {"source": good_source, "deadline_seconds": 0},
                )
                results["bad_json"] = await http_call(
                    host, port, "POST",
                    "/assignments/assignment1/grade", raw_body=b"{nope",
                )
            return results

        results = run(go())
        assert results["no_source"][0] == 400
        assert results["empty_source"][0] == 400
        assert results["bad_label"][0] == 400
        assert results["bad_deadline"][0] == 400
        assert results["bad_json"][0] == 400

    def test_debug_sleep_requires_debug_hooks(self, good_source):
        async def go():
            async with running_service(debug_hooks=False) as service:
                return await grade_call(
                    service, "assignment1",
                    {"source": good_source, "debug_sleep_seconds": 1},
                )

        status, payload = run(go())
        assert status == 400
        assert "debug-hooks" in payload["error"]

    def test_oversized_body_is_413(self):
        async def go():
            async with running_service(max_body_bytes=256) as service:
                return await grade_call(
                    service, "assignment1", {"source": "x" * 1000}
                )

        status, _ = run(go())
        assert status == 413

    def test_deadline_is_clamped_to_server_maximum(self, good_source):
        async def go():
            async with running_service(
                max_deadline_seconds=5.0
            ) as service:
                # a huge requested deadline is accepted but clamped —
                # the request still grades fine well inside 5s
                return await grade_call(
                    service, "assignment1",
                    {"source": good_source, "deadline_seconds": 9999},
                )

        status, payload = run(go())
        assert status == 200
        assert payload["report"]["status"] == "ok"


class TestOverloadAndDeadlines:
    def test_queue_full_produces_429_with_retry_after(self, good_source):
        async def go():
            async with running_service(
                workers=1, queue_capacity=1
            ) as service:
                host, port = service.config.host, service.port
                # admission capacity is workers + queue = 2: occupy it
                # with two slow requests, then the third must bounce
                slow = [
                    asyncio.create_task(grade_call(
                        service, "assignment1",
                        {
                            "source": good_source + f"//slow{i}",
                            "debug_sleep_seconds": 1.0,
                        },
                    ))
                    for i in range(2)
                ]
                await asyncio.sleep(0.3)  # let both get admitted
                rejected = await http_call(
                    host, port, "POST",
                    "/assignments/assignment1/grade",
                    body={"source": good_source + "//reject"},
                )
                done = await asyncio.gather(*slow)
                metrics = json.loads((await http_call(
                    host, port, "GET", "/metrics"
                ))[2])
            return rejected, done, metrics

        rejected, done, metrics = run(go())
        status, headers, raw = rejected
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert json.loads(raw)["queue_capacity"] == 2
        assert all(status == 200 for status, _ in done)
        assert metrics["serve"]["serve.rejected_queue_full"] == 1

    def test_deadline_timeout_answers_504(self, good_source):
        async def go():
            async with running_service(
                workers=1, kill_grace_seconds=0.1
            ) as service:
                return await grade_call(
                    service, "assignment1",
                    {
                        "source": good_source + "//hang",
                        "debug_sleep_seconds": 1.0,
                        "deadline_seconds": 0.2,
                    },
                )

        status, payload = run(go())
        assert status == 504
        assert payload["report"]["status"] == "timeout"

    def test_breaker_quarantines_after_repeated_timeouts(
        self, good_source
    ):
        async def go():
            async with running_service(
                workers=1,
                kill_grace_seconds=0.1,
                breaker_min_volume=2,
                breaker_failure_ratio=1.0,
                breaker_cooldown_seconds=300.0,
            ) as service:
                for i in range(2):
                    await grade_call(
                        service, "assignment1",
                        {
                            "source": good_source + f"//hang{i}",
                            "debug_sleep_seconds": 1.0,
                            "deadline_seconds": 0.2,
                        },
                    )
                quarantined = await http_call(
                    service.config.host, service.port, "POST",
                    "/assignments/assignment1/grade",
                    body={"source": good_source + "//next"},
                )
                metrics = json.loads((await http_call(
                    service.config.host, service.port, "GET", "/metrics"
                ))[2])
            return quarantined, metrics

        (status, headers, raw), metrics = run(go())
        assert status == 503
        assert int(headers["retry-after"]) >= 1
        payload = json.loads(raw)
        assert "quarantined" in payload["error"]
        assert payload["breaker"]["state"] == "open"
        assert metrics["breakers"]["assignment1"]["state"] == "open"
        assert metrics["serve"]["serve.rejected_breaker_open"] == 1

    def test_hard_kill_in_process_mode(self, good_source):
        async def go():
            async with running_service(
                pool_mode="process", workers=2
            ) as service:
                hang = asyncio.create_task(grade_call(
                    service, "assignment1",
                    {
                        "source": good_source + "//hang",
                        "debug_sleep_seconds": 60,
                        "deadline_seconds": 0.3,
                    },
                ))
                healthy = asyncio.create_task(grade_call(
                    service, "assignment1", {"source": good_source}
                ))
                (hang_status, hang_payload), (ok_status, ok_payload) = (
                    await asyncio.wait_for(
                        asyncio.gather(hang, healthy), 30
                    )
                )
                metrics = json.loads((await http_call(
                    service.config.host, service.port, "GET", "/metrics"
                ))[2])
            return (
                hang_status, hang_payload, ok_status, ok_payload, metrics
            )

        hang_status, hang_payload, ok_status, ok_payload, metrics = run(go())
        # the wedged request was killed by its hard deadline...
        assert hang_status == 504
        assert hang_payload["report"]["status"] == "timeout"
        assert "terminated" in hang_payload["report"]["timeout"]
        # ...while the healthy one completed on the other worker
        assert ok_status == 200
        assert ok_payload["report"]["status"] == "ok"
        assert metrics["serve"]["serve.deadline_kills"] == 1
        assert metrics["serve"]["serve.worker_respawns"] == 1


class TestMetricsEndpoint:
    def test_json_snapshot_counts_requests(self, good_source):
        async def go():
            async with running_service() as service:
                await grade_call(
                    service, "assignment1", {"source": good_source}
                )
                await grade_call(
                    service, "assignment1", {"source": good_source}
                )
                return json.loads((await http_call(
                    service.config.host, service.port, "GET", "/metrics"
                ))[2])

        metrics = run(go())
        serve = metrics["serve"]
        assert serve["serve.grade_requests"] == 2
        assert serve["serve.cache_hits"] == 1
        assert serve["serve.completed"] == 2
        assert metrics["latency_ms"]["count"] == 2
        assert metrics["pipeline"]["submissions"] == 2
        assert metrics["pipeline"]["cache_hits"] == 1
        assert metrics["queue"]["workers"] == 2

    def test_prometheus_format(self, good_source):
        async def go():
            async with running_service() as service:
                await grade_call(
                    service, "assignment1", {"source": good_source}
                )
                return (await http_call(
                    service.config.host, service.port,
                    "GET", "/metrics?format=prometheus",
                ))[2].decode()

        text = run(go())
        assert "repro_serve_grade_requests 1" in text
        assert "repro_pipeline_graded 1" in text
        assert "repro_serve_latency_p50_ms" in text


class TestDrain:
    def test_drain_finishes_cleanly_and_stops_accepting(self, good_source):
        async def go():
            service = None
            async with running_service() as service_:
                service = service_
                await grade_call(
                    service, "assignment1", {"source": good_source}
                )
            # context manager exit ran drain(); listener must be closed
            with pytest.raises(OSError):
                await asyncio.open_connection(
                    service.config.host, service.port
                )
            return service

        service = run(go())
        assert service.draining

    def test_drain_reports_clean_when_idle(self):
        async def go():
            async with running_service() as service:
                # drain is called by the context manager too, but calling
                # it directly returns the cleanliness verdict
                return await service.drain()

        assert run(go()) is True

    def test_readyz_flips_during_drain(self, good_source):
        async def go():
            async with running_service() as service:
                reader, writer = await asyncio.open_connection(
                    service.config.host, service.port
                )
                try:
                    before = await http_exchange(
                        reader, writer, "GET", "/readyz"
                    )
                    # keep the service busy so the drain has in-flight
                    # work to wait for while we probe readiness
                    slow = asyncio.create_task(grade_call(
                        service, "assignment1",
                        {
                            "source": good_source + "//slow",
                            "debug_sleep_seconds": 0.5,
                        },
                    ))
                    await asyncio.sleep(0.1)  # let it get admitted
                    drain_task = asyncio.create_task(service.drain())
                    await asyncio.sleep(0.05)
                    after = await http_exchange(
                        reader, writer, "GET", "/readyz"
                    )
                    slow_status, _ = await slow
                    clean = await drain_task
                finally:
                    writer.close()
                    with contextlib.suppress(OSError):
                        await writer.wait_closed()
            return before[0], after[0], slow_status, clean

        before, after, slow_status, clean = run(go())
        assert (before, after) == (200, 503)
        assert slow_status == 200  # admitted work finished during drain
        assert clean is True
