"""Unit tests for the admission controller (repro.serve.admission)."""

from __future__ import annotations

import pytest

from repro.serve import AdmissionController


class TestAdmission:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(capacity=2)
        assert controller.try_admit()
        assert controller.try_admit()
        assert not controller.try_admit()
        assert controller.pending == 2

    def test_release_frees_a_slot(self):
        controller = AdmissionController(capacity=1)
        assert controller.try_admit()
        controller.release(0.1)
        assert controller.try_admit()

    def test_release_without_admit_raises(self):
        controller = AdmissionController(capacity=1)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_drain_refuses_new_admissions(self):
        controller = AdmissionController(capacity=4)
        assert controller.try_admit()
        controller.begin_drain()
        assert not controller.try_admit()
        assert not controller.idle  # in-flight request still out there
        controller.release(0.1)
        assert controller.idle


class TestRetryAfter:
    def test_floor_is_one_second(self):
        controller = AdmissionController(capacity=4)
        assert controller.retry_after_seconds(workers=4) == 1

    def test_scales_with_backlog_and_service_time(self):
        controller = AdmissionController(capacity=100)
        for _ in range(20):
            controller.try_admit()
        # teach the EWMA a 2s service time
        controller.try_admit()
        controller.release(2.0)
        # 20 pending * ~2s / 2 workers = ~20s
        estimate = controller.retry_after_seconds(workers=2)
        assert 10 <= estimate <= 30

    def test_ceiling_is_sixty_seconds(self):
        controller = AdmissionController(capacity=1000)
        for _ in range(900):
            controller.try_admit()
        controller.release(30.0)
        assert controller.retry_after_seconds(workers=1) == 60

    def test_ewma_tracks_recent_service_times(self):
        controller = AdmissionController(capacity=10)
        for seconds in (1.0, 1.0, 1.0):
            controller.try_admit()
            controller.release(seconds)
        first = controller._ewma_seconds
        for _ in range(20):
            controller.try_admit()
            controller.release(0.01)
        assert controller._ewma_seconds < first

    def test_negative_service_time_ignored(self):
        controller = AdmissionController(capacity=2)
        controller.try_admit()
        controller.release(-5.0)
        assert controller._ewma_seconds is None
