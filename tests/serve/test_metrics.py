"""Unit tests for service metrics (repro.serve.metrics)."""

from __future__ import annotations

import pytest

from repro.serve import LatencyReservoir, ServiceMetrics, render_prometheus
from repro.serve.metrics import SERVE_COUNTERS


class TestLatencyReservoir:
    def test_empty_quantiles_are_zero(self):
        reservoir = LatencyReservoir()
        assert reservoir.quantile(0.5) == 0.0
        assert reservoir.snapshot()["p99_ms"] == 0.0

    def test_single_observation(self):
        reservoir = LatencyReservoir()
        reservoir.observe(0.25)
        assert reservoir.quantile(0.5) == 0.25
        assert reservoir.quantile(0.99) == 0.25

    def test_nearest_rank_median(self):
        reservoir = LatencyReservoir()
        for value in range(1, 101):
            reservoir.observe(value / 1000)
        assert reservoir.quantile(0.50) == pytest.approx(0.050)
        assert reservoir.quantile(0.95) == pytest.approx(0.095)
        assert reservoir.quantile(0.99) == pytest.approx(0.099)

    def test_ring_keeps_most_recent_window(self):
        reservoir = LatencyReservoir(capacity=4)
        for value in (1, 2, 3, 4, 100, 200):
            reservoir.observe(float(value))
        snapshot = reservoir.snapshot()
        assert snapshot["count"] == 6
        assert snapshot["window"] == 4
        # 1 and 2 were overwritten; the max must come from the window
        assert snapshot["max_ms"] == 200_000.0

    def test_snapshot_units_are_milliseconds(self):
        reservoir = LatencyReservoir()
        reservoir.observe(0.5)
        assert reservoir.snapshot()["p50_ms"] == 500.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


class TestServiceMetrics:
    def test_all_counters_preregistered_at_zero(self):
        metrics = ServiceMetrics()
        assert set(SERVE_COUNTERS) <= set(metrics.counters)
        assert all(value == 0 for value in metrics.counters.values())

    def test_increment(self):
        metrics = ServiceMetrics()
        metrics.increment("serve.admitted")
        metrics.increment("serve.admitted", 2)
        assert metrics.counters["serve.admitted"] == 3

    def test_snapshot_schema(self):
        metrics = ServiceMetrics()
        metrics.increment("serve.requests_total")
        metrics.latency.observe(0.1)
        snapshot = metrics.snapshot(
            queue_depth=3,
            queue_capacity=10,
            workers=2,
            breakers={"assignment1": {"state": "open"}},
            draining=True,
        )
        assert snapshot["serve"]["serve.requests_total"] == 1
        assert snapshot["queue"] == {
            "depth": 3, "capacity": 10, "workers": 2,
        }
        assert snapshot["latency_ms"]["count"] == 1
        assert snapshot["breakers"]["assignment1"]["state"] == "open"
        assert snapshot["draining"] is True
        assert snapshot["pipeline"]["mode"] == "serve"


class TestRenderPrometheus:
    def test_exposition_lines(self):
        metrics = ServiceMetrics()
        metrics.increment("serve.deadline_kills", 2)
        metrics.latency.observe(0.1)
        metrics.pipeline.record_submission(seconds=0.1)
        text = render_prometheus(metrics.snapshot(
            queue_depth=1,
            queue_capacity=8,
            workers=2,
            breakers={"assignment1": {"state": "open"}},
        ))
        lines = text.splitlines()
        assert "repro_serve_deadline_kills 2" in lines
        assert "repro_serve_queue_depth 1" in lines
        assert "repro_serve_queue_capacity 8" in lines
        assert "repro_serve_draining 0" in lines
        assert 'repro_serve_breaker_open{assignment="assignment1"} 1' in lines
        assert "repro_pipeline_submissions 1" in lines
        assert text.endswith("\n")

    def test_every_counter_exported(self):
        text = render_prometheus(ServiceMetrics().snapshot())
        for name in SERVE_COUNTERS:
            assert f"repro_{name.replace('.', '_')} 0" in text

    def test_channel_counter_families_exported(self):
        # the flattened per-channel counters: analysis checks, repair,
        # the interpreter's program cache, and the perf analyzer
        metrics = ServiceMetrics()
        metrics.pipeline.record_counter("analysis.use-before-init", 2)
        metrics.pipeline.record_counter("repair.suggestions", 1)
        metrics.pipeline.record_counter("interp.compile_hits", 3)
        metrics.pipeline.record_counter("perf.escalations", 1)
        metrics.pipeline.record_phase("perf", 0.002)
        lines = render_prometheus(metrics.snapshot()).splitlines()
        assert "repro_analysis_use_before_init 2" in lines
        assert "repro_repair_suggestions 1" in lines
        assert "repro_interp_compile_hits 3" in lines
        assert "repro_perf_escalations 1" in lines
        assert any(l.startswith("repro_pipeline_perf_ms ") for l in lines)
