"""Shared helpers for the serving tests.

No external HTTP client and no pytest-asyncio: tests are synchronous
functions that drive one event loop per test via ``asyncio.run``, and
the client is a tiny asyncio-streams HTTP/1.1 reader that frames
responses by ``Content-Length`` (never read-to-EOF, which a forked
worker holding a stray socket dup could stall).
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import pytest

from repro.serve import GradingService, ServiceConfig


@contextlib.asynccontextmanager
async def running_service(**overrides):
    """A started :class:`GradingService` on an ephemeral port.

    Defaults to the inline pool (no fork cost) with debug hooks on;
    tests override per-scenario (e.g. ``pool_mode="process"`` for the
    hard-kill path).  Always drained on exit.
    """
    kwargs = dict(port=0, workers=2, pool_mode="inline", debug_hooks=True)
    kwargs.update(overrides)
    service = GradingService(ServiceConfig(**kwargs))
    await service.start()
    try:
        yield service
    finally:
        await service.drain()


async def http_call(
    host,
    port,
    method,
    path,
    body=None,
    raw_body=None,
    headers=None,
    keep_alive=False,
):
    """One request, one response: ``(status, headers, body_bytes)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await http_exchange(
            reader, writer, method, path,
            body=body, raw_body=raw_body, headers=headers,
            keep_alive=keep_alive,
        )
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()


async def http_exchange(
    reader,
    writer,
    method,
    path,
    body=None,
    raw_body=None,
    headers=None,
    keep_alive=True,
):
    """Send one request on an open connection and read its response."""
    payload = (
        raw_body
        if raw_body is not None
        else b"" if body is None else json.dumps(body).encode()
    )
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: test",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    response_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode().partition(":")
        response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", "0"))
    raw = await reader.readexactly(length) if length else b""
    return status, response_headers, raw


async def grade_call(service, assignment, body):
    """POST a grade request; returns ``(status, decoded_json)``."""
    status, _, raw = await http_call(
        service.config.host, service.port,
        "POST", f"/assignments/{assignment}/grade", body=body,
    )
    return status, json.loads(raw)


@pytest.fixture(scope="session")
def good_source(assignment1):
    return assignment1.reference_solutions[0]
