"""Unit tests for pattern variant groups (Section VII future work)."""

import pytest

from repro.errors import PatternDefinitionError
from repro.java import parse_submission
from repro.kb import get_pattern
from repro.kb.extensions import (
    SKIP_INDEX_SUBMISSION,
    even_access_group,
    odd_access_group,
)
from repro.matching.groups import match_group
from repro.patterns import (
    ExprTemplate,
    Pattern,
    PatternGroup,
    PatternNode,
    PatternVariant,
    group_of,
)
from repro.pdg import NodeType, extract_epdg


def tiny_pattern(name, expr):
    return Pattern(
        name=name, description=name,
        nodes=[PatternNode(0, NodeType.ASSIGN,
                           ExprTemplate(expr, frozenset({"v"})))],
    )


class TestGroupValidation:
    def test_empty_group_rejected(self):
        with pytest.raises(PatternDefinitionError, match="needs variants"):
            PatternGroup(variants=[])

    def test_group_presents_primary_name(self):
        group = group_of(tiny_pattern("alpha", "v = 0"))
        assert group.name == "alpha"

    def test_primary_gets_identity_node_map(self):
        group = group_of(tiny_pattern("alpha", "v = 0"))
        assert group.primary.node_map == {0: 0}

    def test_out_of_range_node_map_rejected(self):
        with pytest.raises(PatternDefinitionError, match="out of range"):
            group_of(
                tiny_pattern("alpha", "v = 0"),
                (tiny_pattern("beta", "v = 1"), {0: 7}),
            )

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(PatternDefinitionError, match="distinct"):
            group_of(
                tiny_pattern("alpha", "v = 0"),
                (tiny_pattern("alpha", "v = 1"), {0: 0}),
            )

    def test_variant_translate(self):
        variant = PatternVariant(tiny_pattern("beta", "v = 1"), {5: 0})
        assert variant.translate(5) == 0
        with pytest.raises(PatternDefinitionError, match="does not map"):
            variant.translate(1)


class TestGroupMatching:
    def graph(self, source):
        return extract_epdg(parse_submission(source).methods()[0])

    def test_primary_wins_when_it_matches(self):
        group = group_of(
            tiny_pattern("alpha", "v = 0"),
            (tiny_pattern("beta", "v = 1"), {0: 0}),
        )
        result = match_group(group, self.graph("void f() { int x = 0; }"))
        assert result.pattern.name == "alpha"
        assert result.embeddings

    def test_variant_wins_when_primary_misses(self):
        group = group_of(
            tiny_pattern("alpha", "v = 0"),
            (tiny_pattern("beta", "v = 1"), {0: 0}),
        )
        result = match_group(group, self.graph("void f() { int x = 1; }"))
        assert result.pattern.name == "beta"

    def test_exact_variant_beats_approximate_primary(self):
        primary = Pattern(
            name="alpha", description="",
            nodes=[PatternNode(
                0, NodeType.ASSIGN,
                ExprTemplate("v = 0", frozenset({"v"})),
                approx=ExprTemplate("v =", frozenset({"v"})),
            )],
        )
        group = group_of(primary, (tiny_pattern("beta", "v = 1"), {0: 0}))
        result = match_group(group, self.graph("void f() { int x = 1; }"))
        assert result.pattern.name == "beta"
        assert result.embeddings[0].is_fully_correct

    def test_translated_embeddings_use_primary_ids(self):
        variant = tiny_pattern("beta", "v = 1")
        group = group_of(tiny_pattern("alpha", "v = 0"),
                         (variant, {0: 0}))
        result = match_group(group, self.graph("void f() { int x = 1; }"))
        assert result.translated[0].iota_map.keys() == {0}

    def test_no_match_returns_empty(self):
        group = group_of(tiny_pattern("alpha", "v = 0"))
        result = match_group(group, self.graph("void f() { return; }"))
        assert result.embeddings == []


class TestPaperVariantScenario:
    """The paper's own example: even access via i % 2 == 0 or i += 2."""

    def test_skip_variant_matches_jumping_loop(self):
        graph = extract_epdg(
            parse_submission(SKIP_INDEX_SUBMISSION).methods()[0]
        )
        result = match_group(even_access_group(), graph)
        assert result.pattern.name == "seq-even-access-skip"
        assert result.embeddings[0].is_fully_correct

    def test_primary_still_matches_modulo_style(self):
        from repro.kb import get_assignment
        reference = get_assignment("assignment1").reference_solutions[0]
        graph = extract_epdg(parse_submission(reference).methods()[0])
        result = match_group(even_access_group(), graph)
        assert result.pattern.name == "seq-even-access"

    def test_translated_access_node_is_the_array_access(self):
        graph = extract_epdg(
            parse_submission(SKIP_INDEX_SUBMISSION).methods()[0]
        )
        result = match_group(odd_access_group(), graph)
        # primary node 5 is the access node; its translation must land on
        # the `odd += a[i]` graph node
        access = graph.node(result.translated[0].iota_map[5])
        assert access.content == "odd += a[i]"

    def test_variants_do_not_cross_match_parities(self):
        graph = extract_epdg(
            parse_submission(SKIP_INDEX_SUBMISSION).methods()[0]
        )
        odd = match_group(odd_access_group(), graph)
        even = match_group(even_access_group(), graph)
        assert odd.embeddings[0].gamma_map["x"] == "i"
        assert even.embeddings[0].gamma_map["w"] == "j"


class TestAssignmentWithVariants:
    def test_skip_submission_fully_positive(self):
        from repro.core import FeedbackEngine
        from repro.kb.extensions import assignment1_with_variants
        engine = FeedbackEngine(assignment1_with_variants())
        report = engine.grade(SKIP_INDEX_SUBMISSION)
        assert report.is_positive, report.render()

    def test_plain_kb_rejects_skip_submission(self):
        # without the hierarchy this is the paper's discrepancy class 3
        from repro.core import FeedbackEngine
        from repro.kb import get_assignment
        engine = FeedbackEngine(get_assignment("assignment1"))
        assert not engine.grade(SKIP_INDEX_SUBMISSION).is_positive

    def test_upgrade_preserves_existing_verdicts(self):
        from repro.core import FeedbackEngine
        from repro.kb import get_assignment
        from repro.kb.assignments.assignment1 import FIGURE_2A, FIGURE_2B
        from repro.kb.extensions import assignment1_with_variants
        engine = FeedbackEngine(assignment1_with_variants())
        assert engine.grade(FIGURE_2B).is_positive
        assert not engine.grade(FIGURE_2A).is_positive
        reference = get_assignment("assignment1").reference_solutions[0]
        assert engine.grade(reference).is_positive

    def test_library_counts_untouched(self):
        # the extension must not change the Table I bookkeeping
        from repro.kb import all_patterns, get_assignment
        assert len(all_patterns()) == 24
        assert get_assignment("assignment1").pattern_count == 6
