"""Unit tests for pattern/constraint models and serialization."""

import pytest

from repro.errors import PatternDefinitionError
from repro.kb import all_patterns
from repro.patterns import (
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
    ExprTemplate,
    Pattern,
    PatternNode,
    constraint_from_dict,
    constraint_to_dict,
    pattern_from_dict,
    pattern_to_dict,
)
from repro.pdg.graph import EdgeType, GraphEdge, NodeType


def simple_pattern():
    return Pattern(
        name="p",
        description="d",
        nodes=[
            PatternNode(0, NodeType.COND, ExprTemplate("x > 0",
                                                       frozenset({"x"}))),
            PatternNode(1, NodeType.ASSIGN,
                        ExprTemplate(r"x \+= 1", frozenset({"x"})),
                        approx=ExprTemplate("x", frozenset({"x"}))),
        ],
        edges=[GraphEdge(0, 1, EdgeType.CTRL)],
        feedback_present="found",
        feedback_missing="missing",
    )


class TestPatternValidation:
    def test_dense_node_ids_required(self):
        with pytest.raises(PatternDefinitionError, match="dense"):
            Pattern(
                name="bad", description="",
                nodes=[PatternNode(1, NodeType.COND,
                                   ExprTemplate("", frozenset()))],
            )

    def test_edge_endpoints_validated(self):
        with pytest.raises(PatternDefinitionError, match="missing node"):
            Pattern(
                name="bad", description="",
                nodes=[PatternNode(0, NodeType.COND,
                                   ExprTemplate("", frozenset()))],
                edges=[GraphEdge(0, 7, EdgeType.DATA)],
            )

    def test_approx_variables_must_be_subset(self):
        # Definition 4: Y ⊆ X
        with pytest.raises(PatternDefinitionError, match="subset"):
            Pattern(
                name="bad", description="",
                nodes=[PatternNode(
                    0, NodeType.COND,
                    ExprTemplate("x", frozenset({"x"})),
                    approx=ExprTemplate("y", frozenset({"y"})),
                )],
            )

    def test_pattern_variables_union(self):
        assert simple_pattern().variables == frozenset({"x"})

    def test_edges_touching(self):
        pattern = simple_pattern()
        assert len(pattern.edges_touching(0)) == 1
        assert len(pattern.edges_touching(1)) == 1

    def test_str_rendering(self):
        assert "u0[Cond]" in str(simple_pattern())


class TestSerialization:
    def test_pattern_round_trip(self):
        original = simple_pattern()
        restored = pattern_from_dict(pattern_to_dict(original))
        assert restored.name == original.name
        assert len(restored.nodes) == len(original.nodes)
        assert restored.nodes[1].approx is not None
        assert restored.edges == original.edges
        assert restored.feedback_missing == "missing"

    def test_whole_library_round_trips(self):
        # the public knowledge base must be fully serializable
        import json
        for name, pattern in all_patterns().items():
            payload = json.dumps(pattern_to_dict(pattern))
            restored = pattern_from_dict(json.loads(payload))
            assert restored.name == name
            assert len(restored.nodes) == len(pattern.nodes)
            assert restored.edges == pattern.edges
            for mine, theirs in zip(pattern.nodes, restored.nodes):
                assert mine.expr.source == theirs.expr.source
                assert (mine.approx is None) == (theirs.approx is None)

    @pytest.mark.parametrize("constraint", [
        EqualityConstraint(name="eq", pattern_i="a", node_i=1,
                           pattern_j="b", node_j=2),
        EdgeExistenceConstraint(name="ed", pattern_i="a", node_i=0,
                                pattern_j="b", node_j=1,
                                edge_type=EdgeType.CTRL),
        ContainmentConstraint(
            name="ct", pattern="a", node=3,
            expr=ExprTemplate("c", frozenset({"c"})),
            supporting=("b",),
        ),
    ])
    def test_constraint_round_trip(self, constraint):
        restored = constraint_from_dict(constraint_to_dict(constraint))
        assert type(restored) is type(constraint)
        assert restored.name == constraint.name
        assert restored.referenced_patterns() == \
            constraint.referenced_patterns()

    def test_unknown_constraint_kind_raises(self):
        with pytest.raises(PatternDefinitionError, match="unknown"):
            constraint_from_dict({"kind": "nope", "name": "x"})


class TestConstraintModel:
    def test_referenced_patterns(self):
        constraint = ContainmentConstraint(
            name="c", pattern="main", node=0,
            expr=ExprTemplate("", frozenset()),
            supporting=("s1", "s2"),
        )
        assert constraint.referenced_patterns() == ("main", "s1", "s2")
