"""Unit tests for incomplete-expression templates (r ⪯_γ c)."""

import pytest

from repro.errors import PatternDefinitionError
from repro.patterns.template import ExprTemplate, render_feedback


def template(source, *variables):
    return ExprTemplate(source, frozenset(variables))


class TestMatching:
    def test_literal_template(self):
        assert template(r"x = 0", "x").matches("i = 0", {"x": "i"})

    def test_substring_semantics(self):
        # incomplete expressions match anywhere inside the content
        assert template(r"s\[x\]", "s", "x").matches(
            "odd += a[i]", {"s": "a", "x": "i"}
        )

    def test_no_match(self):
        assert not template(r"x = 0", "x").matches("i = 1", {"x": "i"})

    def test_variable_boundary_left(self):
        # variable x bound to `i` must not match inside `mi`
        assert not template(r"x = 0", "x").matches("mi = 0", {"x": "i"})

    def test_variable_boundary_right(self):
        assert not template(r"x = 0", "x").matches("iq = 0", {"x": "i"})

    def test_variable_bound_to_dollar_identifier(self):
        assert template(r"x = 0", "x").matches("$tmp = 0", {"x": "$tmp"})

    def test_literal_identifiers_match_literally(self):
        tpl = template(r"x < s\.length", "x", "s")
        assert tpl.matches("i < a.length", {"x": "i", "s": "a"})
        assert not tpl.matches("i < a.size", {"x": "i", "s": "a"})

    def test_space_matches_any_whitespace_amount(self):
        tpl = template(r"x = 0", "x")
        assert tpl.matches("i=0", {"x": "i"})
        assert tpl.matches("i  =  0", {"x": "i"})

    def test_alternation(self):
        tpl = template(r"x\+\+|x \+= 1", "x")
        assert tpl.matches("i++", {"x": "i"})
        assert tpl.matches("i += 1", {"x": "i"})
        assert not tpl.matches("i -= 1", {"x": "i"})

    def test_regex_classes_pass_through(self):
        tpl = template(r"x % \d+", "x")
        assert tpl.matches("n % 10", {"x": "n"})
        assert not tpl.matches("n % m", {"x": "n"})

    def test_dollar_anchor_is_regex_not_variable(self):
        tpl = template(r"= p1 \+ p2$", "p1", "p2")
        assert tpl.matches("t = p + q", {"p1": "p", "p2": "q"})
        assert not tpl.matches("t = p + q + 1", {"p1": "p", "p2": "q"})

    def test_empty_template_matches_everything(self):
        tpl = ExprTemplate("", frozenset())
        assert tpl.matches("anything at all", {})

    def test_same_variable_twice(self):
        tpl = template(r"x \* x", "x")
        assert tpl.matches("d * d", {"x": "d"})
        assert not tpl.matches("d * e", {"x": "d"})

    def test_unbound_variable_raises(self):
        with pytest.raises(PatternDefinitionError, match="unbound"):
            template(r"x = 0", "x").matches("i = 0", {})

    def test_escaped_regex_shorthand_not_a_variable(self):
        # `\b` is regex syntax, the standalone `b` is the variable
        tpl = ExprTemplate(r"\bfoo = b", frozenset({"b"}))
        rendered = tpl.render({"b": "z"})
        assert rendered.startswith(r"\bfoo")
        assert "z" in rendered

    def test_declared_but_unmentioned_variable_rejected(self):
        with pytest.raises(PatternDefinitionError, match="never mentions"):
            template(r"y = 0", "x")

    def test_invalid_regex_reported(self):
        tpl = template(r"x ((", "x")
        with pytest.raises(PatternDefinitionError, match="invalid"):
            tpl.matches("i ((", {"x": "i"})

    def test_mentioned_variables(self):
        tpl = template(r"x < s\.length", "x", "s")
        assert tpl.mentioned_variables() == frozenset({"x", "s"})


class TestRenderFeedback:
    def test_substitutes_bound_variables(self):
        text = render_feedback("{x} should be initialized to 0", {"x": "i"})
        assert text == "i should be initialized to 0"

    def test_multiple_variables(self):
        text = render_feedback(
            "{x} is out of bounds going beyond {s}.length - 1",
            {"x": "i", "s": "a"},
        )
        assert text == "i is out of bounds going beyond a.length - 1"

    def test_unbound_reference_left_verbatim(self):
        assert render_feedback("{x} and {y}", {"x": "i"}) == "i and {y}"

    def test_plain_text_untouched(self):
        assert render_feedback("no placeholders", {}) == "no placeholders"
