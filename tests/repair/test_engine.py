"""RepairEngine behaviour and its wiring into the feedback pipeline."""

from __future__ import annotations

import pytest

from repro.core import FeedbackEngine
from repro.core.report import GradingReport
from repro.core.storage import ResultStore, repair_fingerprint
from repro.instrumentation import collecting, deadline
from repro.java import parse_submission
from repro.pdg.builder import extract_all_epdgs
from repro.repair import RepairConfig, RepairCorpus, RepairEngine
from repro.testing import run_tests_on_source

# assignment1's reference with the odd/even guards swapped and the
# locals renamed — functionally wrong, structurally one rewrite away.
BUGGY = """
void assignment1(int[] xs) {
    int o = 0;
    int e = 1;
    int i = 0;
    while (i < xs.length) {
        if (i % 2 == 0)
            o += xs[i];
        if (i % 2 == 0)
            e *= xs[i];
        i++;
    }
    System.out.println(o);
    System.out.println(e);
}
"""


@pytest.fixture(scope="module")
def corpus1(assignment1):
    return RepairCorpus.build(assignment1, synth_samples=4)


@pytest.fixture(scope="module")
def repairer(assignment1, corpus1):
    return RepairEngine(assignment1, corpus=corpus1)


def graphs_of(assignment, source):
    return extract_all_epdgs(
        parse_submission(source), assignment.synthesize_else_conditions
    )


class TestSuggest:
    def test_seeded_bug_gets_a_verified_suggestion(
        self, assignment1, repairer
    ):
        assert not run_tests_on_source(BUGGY, assignment1.tests).passed
        suggestions = repairer.suggest(graphs_of(assignment1, BUGGY))
        assert len(suggestions) == 1
        (suggestion,) = suggestions
        assert suggestion.verified
        assert suggestion.edits
        # The promise behind "verified": the repaired source passes.
        assert run_tests_on_source(
            suggestion.repaired_source, assignment1.tests
        ).passed
        # Identifier substitution talks in the student's names.
        assert "xs" in suggestion.repaired_source

    def test_correct_submission_yields_no_edits(
        self, assignment1, repairer
    ):
        graphs = graphs_of(assignment1, assignment1.reference_solutions[0])
        assert repairer.suggest(graphs) == []

    def test_empty_corpus_degrades_to_no_suggestion(self, assignment1):
        engine = RepairEngine(
            assignment1, corpus=RepairCorpus(assignment1, [])
        )
        with collecting() as phases:
            assert engine.suggest(graphs_of(assignment1, BUGGY)) == []
        assert phases.counters.get("repair.no_suggestion") == 1

    def test_counters_for_the_happy_path(self, assignment1, corpus1):
        engine = RepairEngine(assignment1, corpus=corpus1)
        with collecting() as phases:
            engine.suggest(graphs_of(assignment1, BUGGY))
        assert phases.counters.get("repair.requests") == 1
        assert phases.counters.get("repair.suggestions") == 1
        assert phases.counters.get("repair.verified") == 1

    def test_exhausted_budget_degrades_to_empty(self, assignment1, corpus1):
        engine = RepairEngine(
            assignment1,
            corpus=corpus1,
            config=RepairConfig(budget_seconds=1e-9),
        )
        with collecting() as phases:
            assert engine.suggest(graphs_of(assignment1, BUGGY)) == []
        assert phases.counters.get("repair.deadline_stops") == 1

    def test_expired_outer_deadline_propagates(self, assignment1, corpus1):
        from repro.instrumentation import DeadlineExceeded

        engine = RepairEngine(assignment1, corpus=corpus1)
        with pytest.raises(DeadlineExceeded):
            with deadline(1e-9):
                engine.suggest(graphs_of(assignment1, BUGGY))

    def test_unparseable_corpus_entry_is_skipped(self, assignment1):
        from repro.core.pipeline import source_key
        from repro.repair.corpus import CorpusEntry

        broken = "void assignment1(int[ {"
        corpus = RepairCorpus(
            assignment1,
            [CorpusEntry(source_key(broken), broken, "reference")],
        )
        engine = RepairEngine(assignment1, corpus=corpus)
        assert engine.suggest(graphs_of(assignment1, BUGGY)) == []


class TestCorpusLifecycle:
    def test_builds_once_and_saves_to_store(self, tmp_path, assignment1):
        store = ResultStore(
            tmp_path, assignment1, backend="json", repair=True
        )
        config = RepairConfig(synth_samples=2)
        first = RepairEngine(assignment1, store=store, config=config)
        with collecting() as phases:
            built = first.corpus()
        assert phases.counters.get("repair.corpus_builds") == 1
        assert len(built) >= 1

        second = RepairEngine(assignment1, store=store, config=config)
        with collecting() as phases:
            loaded = second.corpus()
        assert phases.counters.get("repair.corpus_loads") == 1
        assert "repair.corpus_builds" not in phases.counters
        assert loaded.entries == built.entries

    def test_storeless_engine_builds_in_memory(self, assignment1):
        engine = RepairEngine(
            assignment1, config=RepairConfig(synth_samples=0)
        )
        assert len(engine.corpus()) >= 1


class TestFeedbackEngineWiring:
    def test_failing_submission_report_carries_repair(
        self, assignment1, repairer
    ):
        engine = FeedbackEngine(assignment1, repairer=repairer)
        report = engine.grade(BUGGY)
        assert report.repair
        assert report.repair[0].verified
        rendered = report.render()
        assert "Suggested fix" in rendered

    def test_round_trip_preserves_suggestions(self, assignment1, repairer):
        engine = FeedbackEngine(assignment1, repairer=repairer)
        report = engine.grade(BUGGY)
        again = GradingReport.from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()
        assert again.render() == report.render()

    def test_correct_submission_skips_the_repair_phase(
        self, assignment1, repairer
    ):
        engine = FeedbackEngine(assignment1, repairer=repairer)
        with collecting() as phases:
            report = engine.grade(assignment1.reference_solutions[0])
        assert not report.repair
        assert "repair.requests" not in phases.counters

    def test_without_repairer_reports_are_unchanged(self, assignment1):
        plain = FeedbackEngine(assignment1)
        report = plain.grade(BUGGY)
        assert report.repair == []
        assert "repair" not in report.to_dict()


class TestStoreScoping:
    """Repair-enabled runs must never contaminate plain caches."""

    def test_fingerprints_are_disjoint(self, assignment1, tmp_path):
        plain = ResultStore(tmp_path, assignment1)
        scoped = ResultStore(tmp_path, assignment1, repair=True)
        assert scoped.kb == plain.kb
        assert scoped.fingerprint == repair_fingerprint(plain.kb)
        assert scoped.fingerprint != plain.fingerprint

    def test_scoped_write_is_invisible_to_plain_store(
        self, assignment1, engine1, tmp_path
    ):
        report = engine1.grade(assignment1.reference_solutions[0])
        scoped = ResultStore(tmp_path, assignment1, repair=True)
        assert scoped.put("a" * 64, report)
        plain = ResultStore(tmp_path, assignment1)
        assert plain.get("a" * 64) is None
        assert scoped.get("a" * 64) is not None
