"""Signature pre-filtering: cheap vectors that respect structure."""

from __future__ import annotations

import pytest

from repro.java import parse_submission
from repro.pdg.builder import extract_all_epdgs
from repro.repair.search import (
    SIGNATURE_LENGTH,
    method_signature,
    rank_candidates,
    signature_distance,
    submission_signature,
)

LOOP = """
void f(int[] a) {
    int s = 0;
    int i = 0;
    while (i < a.length) {
        s += a[i];
        i++;
    }
    System.out.println(s);
}
"""

LOOP_RENAMED = """
void f(int[] a) {
    int total = 0;
    int j = 0;
    while (j < a.length) {
        total += a[j];
        j++;
    }
    System.out.println(total);
}
"""

STRAIGHT = """
void f(int[] a) {
    System.out.println(a.length);
}
"""


def graphs_of(source):
    return extract_all_epdgs(parse_submission(source), False)


class TestMethodSignature:
    def test_fixed_length(self):
        for source in (LOOP, STRAIGHT):
            (graph,) = graphs_of(source).values()
            assert len(method_signature(graph)) == SIGNATURE_LENGTH

    def test_invariant_under_renaming(self):
        (left,) = graphs_of(LOOP).values()
        (right,) = graphs_of(LOOP_RENAMED).values()
        assert method_signature(left) == method_signature(right)

    def test_separates_different_structure(self):
        (left,) = graphs_of(LOOP).values()
        (right,) = graphs_of(STRAIGHT).values()
        assert method_signature(left) != method_signature(right)


class TestDistance:
    def test_zero_for_identical(self):
        sig = submission_signature(graphs_of(LOOP))
        assert signature_distance(sig, sig) == 0

    def test_symmetric_and_positive(self):
        left = submission_signature(graphs_of(LOOP))
        right = submission_signature(graphs_of(STRAIGHT))
        assert signature_distance(left, right) > 0
        assert signature_distance(left, right) == signature_distance(
            right, left
        )

    def test_missing_method_counts_from_zero(self):
        sig = submission_signature(graphs_of(LOOP))
        assert signature_distance(sig, {}) > 0


class TestRanking:
    def test_orders_by_distance_and_slices(self):
        submission = submission_signature(graphs_of(LOOP))
        candidates = {
            "near": submission_signature(graphs_of(LOOP_RENAMED)),
            "far": submission_signature(graphs_of(STRAIGHT)),
            "exact": submission_signature(graphs_of(LOOP)),
        }
        ranked = rank_candidates(submission, candidates, top=2)
        assert [key for _, key in ranked] == ["exact", "near"]
        assert ranked[0][0] == 0

    def test_deterministic_tie_break_on_key(self):
        submission = submission_signature(graphs_of(LOOP))
        same = submission_signature(graphs_of(LOOP_RENAMED))
        ranked = rank_candidates(
            submission, {"b": same, "a": same}, top=5
        )
        assert [key for _, key in ranked] == ["a", "b"]

    def test_empty_candidates(self):
        submission = submission_signature(graphs_of(LOOP))
        assert rank_candidates(submission, {}, top=3) == []
