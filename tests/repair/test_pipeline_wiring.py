"""Repair across the batch pipeline, clustering, and result stores.

The two load-bearing guarantees here: with repair *disabled* nothing
changes (byte-identical reports, untouched plain caches), and with
repair *enabled* under clustering the grader falls back to full
per-submission grading so every member gets suggestions phrased in its
own identifiers.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterGrader
from repro.core.engine import FeedbackEngine
from repro.core.pipeline import BatchGrader
from repro.core.storage import ResultStore
from repro.instrumentation import collecting
from repro.repair import RepairConfig, RepairCorpus, RepairEngine

from tests.repair.test_engine import BUGGY


@pytest.fixture(scope="module")
def repairer(assignment1):
    return RepairEngine(
        assignment1,
        corpus=RepairCorpus.build(assignment1, synth_samples=4),
    )


def cohort_for(assignment):
    return [
        ("ok", assignment.reference_solutions[0]),
        ("bad", BUGGY),
    ]


class TestBatchGrader:
    def test_disabled_repair_is_byte_identical_to_plain(self, assignment1):
        cohort = cohort_for(assignment1)
        plain = BatchGrader(assignment1, cache=False).grade_batch(cohort)
        flagged = BatchGrader(
            assignment1, cache=False, repair=False
        ).grade_batch(cohort)
        for left, right in zip(plain.reports, flagged.reports):
            assert left.to_dict() == right.to_dict()
            assert left.render() == right.render()

    def test_enabled_repair_attaches_suggestions(
        self, assignment1, repairer
    ):
        grader = BatchGrader(assignment1, cache=False, repair=True)
        grader.engine.repairer = repairer  # skip a per-test corpus build
        batch = grader.grade_batch(cohort_for(assignment1))
        results = {item.label: item.report for item in batch.items}
        assert results["ok"].repair == []
        assert results["bad"].repair
        assert results["bad"].repair[0].verified

    def test_store_scope_mismatch_is_rejected(self, assignment1, tmp_path):
        plain_store = ResultStore(tmp_path, assignment1)
        with pytest.raises(ValueError, match="repair scope"):
            BatchGrader(assignment1, store=plain_store, repair=True)
        scoped = ResultStore(tmp_path, assignment1, repair=True)
        with pytest.raises(ValueError, match="repair scope"):
            BatchGrader(assignment1, store=scoped, repair=False)

    def test_repair_run_leaves_the_plain_store_cold(
        self, assignment1, tmp_path, repairer
    ):
        grader = BatchGrader(assignment1, store=tmp_path, repair=True)
        grader.engine.repairer = repairer
        grader.grade_batch(cohort_for(assignment1))
        plain = ResultStore(tmp_path, assignment1)
        assert plain.entry_count() == 0


class TestClusterFallback:
    def test_repair_forces_full_grading(self, assignment1, repairer):
        engine = FeedbackEngine(assignment1, repairer=repairer)
        grader = ClusterGrader(engine)
        with collecting() as phases:
            report = grader.grade(BUGGY)
        assert phases.counters.get("cluster.repair_fallbacks") == 1
        assert "cluster.representatives" not in phases.counters
        assert report.repair
        # Full-path equivalence: same report the engine alone produces.
        expected = engine.grade(BUGGY)
        assert report.to_dict() == expected.to_dict()

    def test_suggestions_speak_each_members_identifiers(
        self, assignment1, repairer
    ):
        engine = FeedbackEngine(assignment1, repairer=repairer)
        grader = ClusterGrader(engine)
        renamed = BUGGY.replace("xs", "numbers")
        first = grader.grade(BUGGY)
        second = grader.grade(renamed)
        assert "xs" in first.repair[0].repaired_source
        assert "numbers" in second.repair[0].repaired_source

    def test_without_repairer_clustering_is_untouched(self, assignment1):
        grader = ClusterGrader(FeedbackEngine(assignment1))
        with collecting() as phases:
            grader.grade(assignment1.reference_solutions[0])
        assert "cluster.repair_fallbacks" not in phases.counters
        assert phases.counters.get("cluster.representatives") == 1


class TestCampaignRunner:
    def test_repair_campaign_completes_and_scopes_its_store(
        self, assignment1, tmp_path
    ):
        from repro.core.campaign import CampaignRunner

        runner = CampaignRunner(
            assignment1, tmp_path / "store", shard_size=2, repair=True
        )
        cohort = cohort_for(assignment1) + [
            ("bad2", BUGGY.replace("xs", "numbers")),
        ]
        result = runner.run(cohort, campaign_id="c1")
        assert result.completed
        reports = {
            item.label: item.report
            for item in runner.grader.grade_batch(cohort).items
        }
        assert reports["bad"].repair
        assert "numbers" in reports["bad2"].repair[0].repaired_source
        # The repair-scoped records never leak into a plain store on
        # the same path.
        plain = ResultStore(tmp_path / "store", assignment1)
        assert plain.entry_count() == 0
