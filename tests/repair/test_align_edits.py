"""Alignment and edit-script extraction on hand-built submissions."""

from __future__ import annotations

import pytest

from repro.java import parse_submission
from repro.pdg.builder import extract_all_epdgs
from repro.repair.align import (
    EXACT_LIMIT,
    MIN_PAIR_WEIGHT,
    align_graphs,
    node_shape,
    _solve_exact,
    _solve_greedy,
)
from repro.repair.edits import (
    edit_script,
    repaired_source,
    variable_mapping,
)

CANDIDATE = """
void f(int[] a) {
    int sum = 0;
    int i = 0;
    while (i < a.length) {
        sum += a[i];
        i++;
    }
    System.out.println(sum);
}
"""

# Same program with the accumulator renamed and the loop guard broken.
STUDENT_BUGGY = """
void f(int[] a) {
    int total = 0;
    int i = 0;
    while (i <= a.length) {
        total += a[i];
        i++;
    }
    System.out.println(total);
}
"""

STUDENT_MISSING_PRINT = """
void f(int[] a) {
    int total = 0;
    int i = 0;
    while (i < a.length) {
        total += a[i];
        i++;
    }
}
"""


def graphs_of(source):
    return extract_all_epdgs(parse_submission(source), False)


class TestNodeShape:
    def test_wildcards_own_variables_only(self):
        (graph,) = graphs_of(CANDIDATE).values()
        by_content = {node.content: node for node in graph.nodes}
        node = by_content["sum += a[i]"]
        shape = node_shape(node)
        assert "sum" not in shape
        assert shape.count("_") >= 2

    def test_shape_equal_across_renaming(self):
        (left,) = graphs_of(CANDIDATE).values()
        (right,) = graphs_of(STUDENT_MISSING_PRINT).values()
        left_shapes = {node_shape(n) for n in left.nodes}
        right_shapes = {node_shape(n) for n in right.nodes}
        # Everything but the print the student dropped lines up.
        assert right_shapes <= left_shapes


class TestAlignGraphs:
    def test_self_alignment_is_total(self):
        graphs = graphs_of(CANDIDATE)
        (alignment,) = align_graphs(graphs, graphs)
        assert not alignment.unmatched_left
        assert not alignment.unmatched_right
        for left, right in alignment.pairs:
            assert left.content == right.content

    def test_renamed_buggy_student_aligns_fully(self):
        (alignment,) = align_graphs(
            graphs_of(STUDENT_BUGGY), graphs_of(CANDIDATE)
        )
        assert not alignment.unmatched_left
        assert not alignment.unmatched_right

    def test_missing_statement_surfaces_as_unmatched_right(self):
        (alignment,) = align_graphs(
            graphs_of(STUDENT_MISSING_PRINT), graphs_of(CANDIDATE)
        )
        assert [n.content for n in alignment.unmatched_right] == [
            "System.out.println(sum)"
        ]

    def test_method_present_on_one_side_only(self):
        alignments = align_graphs(graphs_of(CANDIDATE), {})
        (alignment,) = alignments
        assert not alignment.pairs
        assert alignment.unmatched_left
        assert not alignment.unmatched_right


class TestSolvers:
    def test_exact_prefers_total_weight_over_greedy_choice(self):
        # Greedy grabs (0,0) at 3.0 and strands row 1; exact pairs
        # (0,1)+(1,0) for 4.0 total.
        weights = [[3.0, 2.0], [2.0, MIN_PAIR_WEIGHT - 0.1]]
        exact = _solve_exact(weights)
        assert exact == [1, 0]
        greedy = _solve_greedy(weights)
        assert greedy == [0, None]

    def test_floor_leaves_nodes_unmatched(self):
        weights = [[MIN_PAIR_WEIGHT - 0.01]]
        assert _solve_exact(weights) == [None]
        assert _solve_greedy(weights) == [None]

    def test_exact_limit_is_sane(self):
        assert 1 <= EXACT_LIMIT <= 20


class TestVariableMapping:
    def test_maps_candidate_names_to_student_names(self):
        student = graphs_of(STUDENT_BUGGY)
        candidate = graphs_of(CANDIDATE)
        alignments = align_graphs(student, candidate)
        mapping = variable_mapping(alignments, candidate, CANDIDATE)
        assert mapping == {"sum": "total"}

    def test_identity_renames_are_stripped(self):
        graphs = graphs_of(CANDIDATE)
        alignments = align_graphs(graphs, graphs)
        assert variable_mapping(alignments, graphs, CANDIDATE) == {}


class TestEditScript:
    def test_rewrite_for_seeded_guard_bug(self):
        student = graphs_of(STUDENT_BUGGY)
        candidate = graphs_of(CANDIDATE)
        alignments = align_graphs(student, candidate)
        mapping = variable_mapping(alignments, candidate, CANDIDATE)
        edits = edit_script(alignments, mapping)
        assert [edit.op for edit in edits] == ["rewrite"]
        (edit,) = edits
        assert edit.before == "i <= a.length"
        assert edit.after == "i < a.length"

    def test_insert_speaks_the_students_names(self):
        student = graphs_of(STUDENT_MISSING_PRINT)
        candidate = graphs_of(CANDIDATE)
        alignments = align_graphs(student, candidate)
        mapping = variable_mapping(alignments, candidate, CANDIDATE)
        inserts = [e for e in edit_script(alignments, mapping) if e.op == "insert"]
        assert [e.after for e in inserts] == ["System.out.println(total)"]

    def test_identical_programs_need_no_edits(self):
        graphs = graphs_of(CANDIDATE)
        alignments = align_graphs(graphs, graphs)
        assert edit_script(alignments, {}) == ()

    def test_ordering_rewrites_then_inserts_then_deletes(self):
        student = graphs_of(STUDENT_MISSING_PRINT)
        # Give the student an extra statement the candidate lacks by
        # aligning against the buggy variant (guard differs -> rewrite,
        # print missing -> insert).
        candidate = graphs_of(CANDIDATE)
        alignments = align_graphs(student, candidate)
        mapping = variable_mapping(alignments, candidate, CANDIDATE)
        ops = [e.op for e in edit_script(alignments, mapping)]
        assert ops == sorted(
            ops, key=["rewrite", "insert", "delete"].index
        )


class TestRepairedSource:
    def test_rename_applies_everywhere_outside_strings(self):
        repaired = repaired_source(CANDIDATE, {"sum": "total"})
        assert "sum" not in repaired
        assert repaired.count("total") == CANDIDATE.count("sum")

    def test_empty_mapping_is_identity(self):
        assert repaired_source(CANDIDATE, {}) == CANDIDATE
