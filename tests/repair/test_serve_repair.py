"""Repair through the grading service: reports, metrics, scoping."""

from __future__ import annotations

import asyncio
import json

from tests.repair.test_engine import BUGGY
from tests.serve.conftest import http_call, running_service


def grade_body(source):
    return {"source": source, "deadline_seconds": 30.0}


class TestServeRepair:
    def test_repair_flag_attaches_suggestions_and_counters(self):
        async def scenario():
            async with running_service(repair=True) as service:
                host, port = service.config.host, service.port
                status, _, body = await http_call(
                    host, port, "POST",
                    "/assignments/assignment1/grade",
                    body=grade_body(BUGGY),
                )
                assert status == 200
                payload = json.loads(body)
                report = payload["report"]
                assert report["repair"]
                assert report["repair"][0]["verified"] is True
                status, _, body = await http_call(
                    host, port, "GET", "/metrics"
                )
                assert status == 200
                metrics = json.loads(body)
                counters = metrics["pipeline"]["counters"]
                assert counters.get("repair.requests", 0) >= 1
                assert counters.get("repair.suggestions", 0) >= 1
                status, _, body = await http_call(
                    host, port, "GET", "/metrics?format=prometheus"
                )
                assert status == 200
                lines = body.decode().splitlines()
                assert any(
                    line.startswith("repro_repair_suggestions ")
                    for line in lines
                )
                assert any(
                    line.startswith("repro_pipeline_repair_ms ")
                    for line in lines
                )

        asyncio.run(scenario())

    def test_default_service_has_no_repair_key(self):
        async def scenario():
            async with running_service() as service:
                host, port = service.config.host, service.port
                status, _, body = await http_call(
                    host, port, "POST",
                    "/assignments/assignment1/grade",
                    body=grade_body(BUGGY),
                )
                assert status == 200
                report = json.loads(body)["report"]
                assert "repair" not in report

        asyncio.run(scenario())
