"""Corpus construction, persistence, and durability.

The admission bar is functional: nothing enters a corpus without
passing the assignment's test suite.  Persistence rides the result
store's ``repair`` kind on both backends, and every corruption mode —
flipped bytes, truncation, a writer killed before the index lands —
must degrade to *fewer* suggestions, never a wrong one.
"""

from __future__ import annotations

import json
import os
import signal
import sys

import pytest

from repro.core.pipeline import source_key
from repro.core.storage import ResultStore
from repro.repair.corpus import INDEX_KEY, CorpusEntry, RepairCorpus
from repro.testing import run_tests_on_source

BACKENDS = ("json", "sqlite")


@pytest.fixture(scope="module")
def corpus1(assignment1):
    return RepairCorpus.build(assignment1, synth_samples=4)


def repair_store(tmp_path, assignment, backend):
    return ResultStore(tmp_path, assignment, backend=backend, repair=True)


class TestBuild:
    def test_references_are_admitted_first(self, assignment1, corpus1):
        assert len(corpus1) >= len(assignment1.reference_solutions)
        origins = [entry.origin for entry in corpus1.entries]
        refs = len(assignment1.reference_solutions)
        assert origins[:refs] == ["reference"] * refs

    def test_every_entry_is_functionally_verified(self, assignment1, corpus1):
        for entry in corpus1.entries:
            assert run_tests_on_source(entry.source, assignment1.tests).passed

    def test_entries_are_keyed_by_content(self, corpus1):
        for entry in corpus1.entries:
            assert entry.key == source_key(entry.source)
        assert len({entry.key for entry in corpus1.entries}) == len(corpus1)

    def test_synth_sampling_is_bounded(self, assignment1):
        small = RepairCorpus.build(assignment1, synth_samples=1)
        counts = small.origin_counts()
        assert counts["synth"] <= 1
        assert counts["reference"] == len(assignment1.reference_solutions)

    def test_zero_synth_samples_keeps_references_only(self, assignment1):
        refs_only = RepairCorpus.build(assignment1, synth_samples=0)
        assert refs_only.origin_counts()["synth"] == 0
        assert len(refs_only) >= 1


class TestEntryDecoding:
    def test_round_trip(self, corpus1):
        entry = corpus1.entries[0]
        again = CorpusEntry.from_record(entry.key, entry.to_record())
        assert again == entry

    @pytest.mark.parametrize(
        "record",
        [
            None,
            "not a mapping",
            {},
            {"source": "", "origin": "reference"},
            {"source": 42, "origin": "reference"},
            {"source": "void m() {}", "origin": None},
        ],
    )
    def test_malformed_records_are_dropped(self, record):
        assert CorpusEntry.from_record("a" * 64, record) is None

    def test_key_mismatch_is_dropped(self, corpus1):
        entry = corpus1.entries[0]
        tampered = {"source": entry.source + "\n// extra", "origin": "synth"}
        assert CorpusEntry.from_record(entry.key, tampered) is None


@pytest.mark.parametrize("backend", BACKENDS)
class TestPersistence:
    def test_save_then_load(self, tmp_path, assignment1, corpus1, backend):
        store = repair_store(tmp_path, assignment1, backend)
        assert corpus1.save(store) == len(corpus1)
        loaded = RepairCorpus.load(assignment1, store)
        assert loaded is not None
        assert loaded.entries == corpus1.entries

    def test_load_without_index_is_none(self, tmp_path, assignment1, backend):
        store = repair_store(tmp_path, assignment1, backend)
        assert RepairCorpus.load(assignment1, store) is None

    def test_missing_entry_is_dropped_not_fatal(
        self, tmp_path, assignment1, corpus1, backend
    ):
        store = repair_store(tmp_path, assignment1, backend)
        corpus1.save(store)
        store.put_repair(
            INDEX_KEY,
            {
                "entries": ["0" * 64] + [e.key for e in corpus1.entries],
                "count": len(corpus1) + 1,
            },
        )
        loaded = RepairCorpus.load(assignment1, store)
        assert loaded is not None
        assert loaded.entries == corpus1.entries

    def test_tampered_entry_is_dropped(
        self, tmp_path, assignment1, corpus1, backend
    ):
        store = repair_store(tmp_path, assignment1, backend)
        corpus1.save(store)
        victim = corpus1.entries[0]
        store.put_repair(
            victim.key, {"source": "void wrong() {}", "origin": "reference"}
        )
        loaded = RepairCorpus.load(assignment1, store)
        assert loaded is not None
        assert victim not in loaded.entries
        assert len(loaded) == len(corpus1) - 1


class TestJsonDurability:
    """Byte-level corruption only reaches the sharded-JSON layout."""

    def _saved_store(self, tmp_path, assignment1, corpus1):
        store = repair_store(tmp_path, assignment1, "json")
        corpus1.save(store)
        return store

    def _entry_files(self, store):
        repair_dir = store.backend.repair_path_for("x" * 64).parent.parent
        return sorted(repair_dir.glob("*/*.json"))

    def test_truncated_entry_degrades_to_drop(
        self, tmp_path, assignment1, corpus1
    ):
        store = self._saved_store(tmp_path, assignment1, corpus1)
        index_path = store.backend.repair_path_for(INDEX_KEY)
        for path in self._entry_files(store):
            if path == index_path:
                continue
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        loaded = RepairCorpus.load(assignment1, store)
        assert loaded is not None
        assert len(loaded) == 0

    def test_garbage_index_reads_as_no_corpus(
        self, tmp_path, assignment1, corpus1
    ):
        store = self._saved_store(tmp_path, assignment1, corpus1)
        store.backend.repair_path_for(INDEX_KEY).write_text("{not json")
        assert RepairCorpus.load(assignment1, store) is None

    def test_index_with_wrong_shape_reads_as_no_corpus(
        self, tmp_path, assignment1, corpus1
    ):
        store = self._saved_store(tmp_path, assignment1, corpus1)
        store.put_repair(INDEX_KEY, {"entries": "nope", "count": 1})
        assert RepairCorpus.load(assignment1, store) is None

    def test_swapped_entry_bytes_fail_the_content_rehash(
        self, tmp_path, assignment1, corpus1
    ):
        store = self._saved_store(tmp_path, assignment1, corpus1)
        victim = corpus1.entries[0]
        path = store.backend.repair_path_for(victim.key)
        envelope = json.loads(path.read_text())
        envelope["record"]["source"] = envelope["record"]["source"].replace(
            "==", "!="
        )
        path.write_text(json.dumps(envelope))
        loaded = RepairCorpus.load(assignment1, store)
        assert loaded is not None
        assert victim.key not in {e.key for e in loaded.entries}


@pytest.mark.parametrize("backend", BACKENDS)
class TestKilledWriter:
    """A SIGKILL'd saver leaves either no corpus or a valid prefix."""

    def test_killed_mid_save_never_yields_wrong_entries(
        self, tmp_path, assignment1, backend
    ):
        code = f"""
import os, sys
sys.path.insert(0, {os.fspath('src')!r})
from repro.core.storage import ResultStore
from repro.kb import get_assignment
from repro.repair.corpus import RepairCorpus

assignment = get_assignment("assignment1")
store = ResultStore(
    {os.fspath(tmp_path)!r}, assignment, backend={backend!r}, repair=True
)
corpus = RepairCorpus.build(assignment, synth_samples=2)
saved = 0
for entry in corpus.entries:
    store.put_repair(entry.key, entry.to_record())
    saved += 1
    if saved == 2:
        print("KILL-ME", flush=True)
        os.kill(os.getpid(), 9)  # die before the index record lands
store.put_repair("corpus", {{"entries": [], "count": 0}})
"""
        import subprocess

        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            cwd="/root/repo",
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert "KILL-ME" in proc.stdout
        assert proc.returncode == -signal.SIGKILL
        store = repair_store(tmp_path, assignment1, backend)
        loaded = RepairCorpus.load(assignment1, store)
        # The index never landed, so the corpus reads as "not built" —
        # the engine will rebuild rather than align against a torso.
        assert loaded is None
