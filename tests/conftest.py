"""Shared fixtures: cached assignments, engines, and helpers."""

from __future__ import annotations

import pytest

from repro.core import FeedbackEngine
from repro.kb import all_assignment_names, get_assignment


@pytest.fixture(scope="session", params=all_assignment_names())
def assignment(request):
    """Each of the twelve Table I assignments, parametrized."""
    return get_assignment(request.param)


@pytest.fixture(scope="session")
def assignment1():
    return get_assignment("assignment1")


@pytest.fixture(scope="session")
def engine1(assignment1):
    return FeedbackEngine(assignment1)
