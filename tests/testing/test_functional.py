"""Unit tests for the functional-testing harness."""

import pytest

from repro.core.assignment import FunctionalTest
from repro.testing import run_tests, run_tests_on_source
from repro.java import parse_submission

ADD = "int add(int a, int b) { return a + b; }"
ECHO = 'void echo(int x) { System.out.println(x); }'


class TestStdoutComparison:
    def test_pass(self):
        report = run_tests_on_source(ECHO, [
            FunctionalTest("echo", (7,), expected_stdout="7\n"),
        ])
        assert report.passed

    def test_fail_on_content(self):
        report = run_tests_on_source(ECHO, [
            FunctionalTest("echo", (7,), expected_stdout="8\n"),
        ])
        assert not report.passed

    def test_fail_on_missing_newline(self):
        # output comparison is strict: the print-vs-println discrepancy
        report = run_tests_on_source(ECHO, [
            FunctionalTest("echo", (7,), expected_stdout="7"),
        ])
        assert not report.passed

    def test_actual_output_recorded(self):
        report = run_tests_on_source(ECHO, [
            FunctionalTest("echo", (7,), expected_stdout="8\n"),
        ])
        assert report.results[0].actual_stdout == "7\n"


class TestReturnComparison:
    def test_pass(self):
        report = run_tests_on_source(ADD, [
            FunctionalTest("add", (2, 3), expected_return=5,
                           compare_return=True),
        ])
        assert report.passed

    def test_fail(self):
        report = run_tests_on_source(ADD, [
            FunctionalTest("add", (2, 3), expected_return=6,
                           compare_return=True),
        ])
        assert not report.passed

    def test_array_return_comparison(self):
        source = "int[] mk() { int[] a = {1, 2}; return a; }"
        report = run_tests_on_source(source, [
            FunctionalTest("mk", (), expected_return=[1, 2],
                           compare_return=True),
        ])
        assert report.passed


class TestArgumentMaterialization:
    def test_list_becomes_int_array(self):
        source = "int first(int[] a) { return a[0]; }"
        report = run_tests_on_source(source, [
            FunctionalTest("first", ([9, 8],), expected_return=9,
                           compare_return=True),
        ])
        assert report.passed

    def test_string_array(self):
        source = "String first(String[] a) { return a[0]; }"
        report = run_tests_on_source(source, [
            FunctionalTest("first", ((["x", "y"]),), expected_return="x",
                           compare_return=True),
        ])
        assert report.passed

    def test_double_array(self):
        source = "double first(double[] a) { return a[0]; }"
        report = run_tests_on_source(source, [
            FunctionalTest("first", ([1.5, 2],), expected_return=1.5,
                           compare_return=True),
        ])
        assert report.passed


class TestFailureModes:
    def test_parse_error_fails_suite(self):
        report = run_tests_on_source("void f( {", [
            FunctionalTest("f", ()),
        ])
        assert not report.passed
        assert report.parse_error is not None
        assert "does not compile" in report.summary()

    def test_runtime_error_fails_test(self):
        source = "int f() { return 1 / 0; }"
        report = run_tests_on_source(source, [
            FunctionalTest("f", (), expected_return=0, compare_return=True),
        ])
        assert not report.passed
        assert "zero" in report.results[0].error

    def test_infinite_loop_fails_test(self):
        source = "void f() { while (true) { int x = 1; } }"
        report = run_tests_on_source(
            source, [FunctionalTest("f", ())], step_budget=5_000
        )
        assert not report.passed
        assert "budget" in report.results[0].error

    def test_missing_method_fails(self):
        report = run_tests_on_source(ADD, [FunctionalTest("nope", ())])
        assert not report.passed

    def test_later_tests_still_run_after_failure(self):
        source = "int f(int x) { return 10 / x; }"
        report = run_tests_on_source(source, [
            FunctionalTest("f", (0,), expected_return=0,
                           compare_return=True),
            FunctionalTest("f", (2,), expected_return=5,
                           compare_return=True),
        ])
        assert [r.passed for r in report.results] == [False, True]
        assert len(report.failures) == 1


class TestFilesAndStdin:
    def test_virtual_file(self):
        source = """
        int f() {
            Scanner s = new Scanner(new File("d.txt"));
            return s.nextInt();
        }
        """
        report = run_tests_on_source(source, [
            FunctionalTest("f", (), expected_return=5, compare_return=True,
                           files=(("d.txt", "5"),)),
        ])
        assert report.passed

    def test_stdin(self):
        source = """
        int f() {
            Scanner s = new Scanner(System.in);
            return s.nextInt();
        }
        """
        report = run_tests_on_source(source, [
            FunctionalTest("f", (), expected_return=3, compare_return=True,
                           stdin="3"),
        ])
        assert report.passed


class TestCustomCheck:
    def test_check_predicate(self):
        report = run_tests_on_source(ECHO, [
            FunctionalTest("echo", (5,),
                           check=lambda res: "5" in res.stdout),
        ])
        assert report.passed

    def test_check_combined_with_stdout(self):
        report = run_tests_on_source(ECHO, [
            FunctionalTest("echo", (5,), expected_stdout="5\n",
                           check=lambda res: res.steps > 0),
        ])
        assert report.passed


class TestRunTestsOnUnit:
    def test_parsed_unit_accepted(self):
        unit = parse_submission(ADD)
        report = run_tests(unit, [
            FunctionalTest("add", (1, 1), expected_return=2,
                           compare_return=True),
        ])
        assert report.passed

    def test_summary_counts(self):
        unit = parse_submission(ADD)
        report = run_tests(unit, [
            FunctionalTest("add", (1, 1), expected_return=2,
                           compare_return=True),
            FunctionalTest("add", (1, 1), expected_return=3,
                           compare_return=True),
        ])
        assert report.summary() == "1/2 tests passed"
