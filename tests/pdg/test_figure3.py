"""Reproduce the paper's Figure 3: the EPDG of the Figure 2a submission.

The paper's node numbering differs (we emit the for-update after the
body), so assertions are by node content, which is unambiguous here.
"""

import pytest

from repro.java import parse_submission
from repro.kb.assignments.assignment1 import FIGURE_2A
from repro.pdg import EdgeType, NodeType, extract_epdg


@pytest.fixture(scope="module")
def figure3():
    unit = parse_submission(FIGURE_2A)
    return extract_epdg(unit.method("assignment1"))


def node(graph, content, index=0):
    nodes = graph.find_by_content(content)
    return nodes[index]


class TestFigure3Nodes:
    def test_node_count(self, figure3):
        # Decl a; even=0; odd=0; i=0; cond; 2x(if-cond, update); i++;
        # 2x println = 12 nodes
        assert len(figure3) == 12

    def test_expected_contents(self, figure3):
        contents = [n.content for n in figure3.nodes]
        for expected in [
            "a", "even = 0", "odd = 0", "i = 0", "i <= a.length",
            "odd += a[i]", "even *= a[i]", "i++",
            "System.out.println(odd)", "System.out.println(even)",
        ]:
            assert expected in contents
        assert contents.count("i % 2 == 1") == 2

    def test_node_types(self, figure3):
        assert node(figure3, "a").type is NodeType.DECL
        assert node(figure3, "even = 0").type is NodeType.ASSIGN
        assert node(figure3, "i <= a.length").type is NodeType.COND
        assert node(figure3, "i % 2 == 1").type is NodeType.COND
        assert node(figure3, "odd += a[i]").type is NodeType.ASSIGN
        assert node(figure3, "System.out.println(odd)").type is NodeType.CALL


class TestFigure3Edges:
    def edge(self, graph, source, target, edge_type, si=0, ti=0):
        return graph.has_edge(
            node(graph, source, si).node_id,
            node(graph, target, ti).node_id,
            edge_type,
        )

    def test_ctrl_edges_from_loop_condition(self, figure3):
        assert self.edge(figure3, "i <= a.length", "i % 2 == 1",
                         EdgeType.CTRL, ti=0)
        assert self.edge(figure3, "i <= a.length", "i % 2 == 1",
                         EdgeType.CTRL, ti=1)
        assert self.edge(figure3, "i <= a.length", "i++", EdgeType.CTRL)

    def test_ctrl_edges_from_if_conditions(self, figure3):
        assert self.edge(figure3, "i % 2 == 1", "odd += a[i]",
                         EdgeType.CTRL, si=0)
        assert self.edge(figure3, "i % 2 == 1", "even *= a[i]",
                         EdgeType.CTRL, si=1)

    def test_transitive_ctrl_edges_removed(self, figure3):
        # the paper removes loop-cond => body-statement edges
        assert not self.edge(figure3, "i <= a.length", "odd += a[i]",
                             EdgeType.CTRL)
        assert not self.edge(figure3, "i <= a.length", "even *= a[i]",
                             EdgeType.CTRL)

    def test_data_edges_from_declarations(self, figure3):
        assert self.edge(figure3, "a", "i <= a.length", EdgeType.DATA)
        assert self.edge(figure3, "a", "odd += a[i]", EdgeType.DATA)
        assert self.edge(figure3, "a", "even *= a[i]", EdgeType.DATA)

    def test_data_edges_from_index(self, figure3):
        for target in ("i <= a.length", "odd += a[i]", "even *= a[i]", "i++"):
            assert self.edge(figure3, "i = 0", target, EdgeType.DATA)

    def test_accumulators_flow_to_prints(self, figure3):
        assert self.edge(figure3, "odd += a[i]", "System.out.println(odd)",
                         EdgeType.DATA)
        assert self.edge(figure3, "even *= a[i]", "System.out.println(even)",
                         EdgeType.DATA)

    def test_no_edge_from_initializers_to_prints(self, figure3):
        # the paper's discussion: no Data edge odd=0 -> println(odd)
        # because the loop body is assumed to execute
        assert not self.edge(figure3, "odd = 0", "System.out.println(odd)",
                             EdgeType.DATA)
        assert not self.edge(figure3, "even = 0", "System.out.println(even)",
                             EdgeType.DATA)

    def test_no_loop_back_data_edges(self, figure3):
        assert not self.edge(figure3, "i++", "i <= a.length", EdgeType.DATA)
        assert not self.edge(figure3, "i++", "odd += a[i]", EdgeType.DATA)


class TestDotExport:
    def test_dot_renders_both_edge_styles(self, figure3):
        from repro.pdg import to_dot
        dot = to_dot(figure3)
        assert dot.startswith("digraph")
        assert "style=dashed" in dot  # Ctrl
        assert "style=solid" in dot   # Data
        assert "odd += a[i]" in dot
