"""Unit tests for the EPDG data structure."""

import pytest

from repro.pdg.graph import EdgeType, Epdg, GraphNode, NodeType


def make_graph():
    graph = Epdg("m")
    graph.add_node(GraphNode(0, NodeType.DECL, "a",
                             defines=frozenset({"a"})))
    graph.add_node(GraphNode(1, NodeType.ASSIGN, "x = 0",
                             defines=frozenset({"x"})))
    graph.add_node(GraphNode(2, NodeType.COND, "x < a.length",
                             uses=frozenset({"x", "a"})))
    graph.add_edge(0, 2, EdgeType.DATA)
    graph.add_edge(1, 2, EdgeType.DATA)
    return graph


class TestEpdg:
    def test_len_and_nodes(self):
        graph = make_graph()
        assert len(graph) == 3
        assert [n.name for n in graph.nodes] == ["v0", "v1", "v2"]

    def test_node_lookup(self):
        graph = make_graph()
        assert graph.node(1).content == "x = 0"

    def test_dense_ids_enforced(self):
        graph = Epdg("m")
        with pytest.raises(ValueError, match="dense"):
            graph.add_node(GraphNode(5, NodeType.COND, "x"))

    def test_edge_endpoints_validated(self):
        graph = make_graph()
        with pytest.raises(ValueError, match="out of range"):
            graph.add_edge(0, 99, EdgeType.DATA)

    def test_duplicate_edge_is_idempotent(self):
        graph = make_graph()
        graph.add_edge(0, 2, EdgeType.DATA)
        assert len(graph.edges) == 2

    def test_has_edge_distinguishes_types(self):
        graph = make_graph()
        assert graph.has_edge(0, 2, EdgeType.DATA)
        assert not graph.has_edge(0, 2, EdgeType.CTRL)

    def test_successors_and_predecessors(self):
        graph = make_graph()
        assert graph.successors(0) == [2]
        assert graph.predecessors(2) == [0, 1]
        assert graph.predecessors(2, EdgeType.CTRL) == []

    def test_nodes_of_type(self):
        graph = make_graph()
        assert [n.content for n in graph.nodes_of_type(NodeType.COND)] == [
            "x < a.length"
        ]

    def test_find_by_content_exact(self):
        graph = make_graph()
        assert graph.find_by_content("x = 0")[0].node_id == 1
        assert graph.find_by_content("x = ") == []

    def test_node_variables_property(self):
        graph = make_graph()
        assert graph.node(2).variables == frozenset({"x", "a"})

    def test_in_out_edges(self):
        graph = make_graph()
        assert len(graph.out_edges(0)) == 1
        assert len(graph.in_edges(2)) == 2

    def test_node_str(self):
        assert "v1[Assign] x = 0" in str(make_graph().node(1))

    def test_edge_str_uses_arrow_convention(self):
        graph = make_graph()
        edge = next(iter(graph.edges))
        assert "->" in str(edge)  # Data edges are solid arrows
