"""Unit tests for condition negation and else-branch synthesis."""

import pytest

from repro.java import parse_expression, parse_submission, to_source
from repro.pdg import NodeType, extract_epdg
from repro.pdg.negation import negate_condition


def negated(source):
    return to_source(negate_condition(parse_expression(source)))


class TestNegateCondition:
    @pytest.mark.parametrize("source,expected", [
        ("i % 2 == 0", "i % 2 != 0"),
        ("i % 2 != 0", "i % 2 == 0"),
        ("i < n", "i >= n"),
        ("i >= n", "i < n"),
        ("i > n", "i <= n"),
        ("i <= n", "i > n"),
        ("true", "false"),
        ("false", "true"),
        ("!done", "done"),
    ])
    def test_simple_negations(self, source, expected):
        assert negated(source) == expected

    def test_de_morgan_and(self):
        assert negated("a == 1 && b < 2") == "a != 1 || b >= 2"

    def test_de_morgan_or(self):
        assert negated("a == 1 || b < 2") == "a != 1 && b >= 2"

    def test_fallback_wraps_in_not(self):
        assert negated("s.hasNext()") == "!s.hasNext()"

    def test_double_negation_via_fallback(self):
        once = negate_condition(parse_expression("s.hasNext()"))
        twice = negate_condition(once)
        assert to_source(twice) == "s.hasNext()"

    def test_negation_is_semantically_inverse(self):
        from repro.interp import run_method
        for condition in ("x % 2 == 0", "x < 5", "x >= 3 && x != 7"):
            source = f"""
            boolean orig(int x) {{ return {condition}; }}
            boolean neg(int x) {{ return {negated(condition)}; }}
            """
            unit = parse_submission(source)
            for x in range(-3, 10):
                original = run_method(unit, "orig", [x]).return_value
                negative = run_method(unit, "neg", [x]).return_value
                assert original != negative


ELSE_SOURCE = """
void f(int[] a, int i) {
    int odd = 0;
    int even = 1;
    if (i % 2 == 0)
        even *= a[i];
    else
        odd += a[i];
}
"""


class TestElseSynthesis:
    def test_disabled_by_default(self):
        graph = extract_epdg(parse_submission(ELSE_SOURCE).methods()[0])
        assert graph.find_by_content("i % 2 != 0") == []

    def test_synthesized_negated_condition(self):
        graph = extract_epdg(
            parse_submission(ELSE_SOURCE).methods()[0],
            synthesize_else_conditions=True,
        )
        (node,) = graph.find_by_content("i % 2 != 0")
        assert node.type is NodeType.COND

    def test_else_branch_controlled_by_synthetic_condition(self):
        from repro.pdg import EdgeType
        graph = extract_epdg(
            parse_submission(ELSE_SOURCE).methods()[0],
            synthesize_else_conditions=True,
        )
        (negated_node,) = graph.find_by_content("i % 2 != 0")
        (else_stmt,) = graph.find_by_content("odd += a[i]")
        assert graph.has_edge(
            negated_node.node_id, else_stmt.node_id, EdgeType.CTRL
        )
        # the then branch stays under the original condition
        (positive,) = graph.find_by_content("i % 2 == 0")
        (then_stmt,) = graph.find_by_content("even *= a[i]")
        assert graph.has_edge(
            positive.node_id, then_stmt.node_id, EdgeType.CTRL
        )

    def test_positive_form_patterns_match_the_else_arm(self):
        from repro.kb import get_pattern
        from repro.matching import match_pattern
        source = """
        void assignment1(int[] a) {
            int odd = 0;
            int i = 0;
            while (i < a.length) {
                if (i % 2 == 0)
                    odd = odd;
                else
                    odd += a[i];
                i++;
            }
        }
        """
        method = parse_submission(source).methods()[0]
        plain = extract_epdg(method)
        extended = extract_epdg(method, synthesize_else_conditions=True)
        pattern = get_pattern("seq-odd-access")
        assert match_pattern(pattern, plain) == []
        found = match_pattern(pattern, extended)
        assert found and found[0].is_fully_correct

    def test_engine_flag_threads_through(self):
        import dataclasses
        from repro.core import FeedbackEngine
        from repro.kb import get_assignment
        source = """
        void assignment1(int[] a) {
            int odd = 0;
            int even = 1;
            int i = 0;
            while (i < a.length) {
                if (i % 2 == 0)
                    even *= a[i];
                else
                    odd += a[i];
                i++;
            }
            System.out.println(odd);
            System.out.println(even);
        }
        """
        base = get_assignment("assignment1")
        assert not FeedbackEngine(base).grade(source).is_positive
        upgraded = dataclasses.replace(
            base, synthesize_else_conditions=True
        )
        assert FeedbackEngine(upgraded).grade(source).is_positive
