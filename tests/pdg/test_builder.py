"""Unit tests for EPDG construction (paper Section III-A)."""

import pytest

from repro.java import parse_submission
from repro.pdg import EdgeType, NodeType, extract_all_epdgs, extract_epdg


def build(source, method=None):
    unit = parse_submission(source)
    decl = unit.methods()[0] if method is None else unit.method(method)
    return extract_epdg(decl)


def node_by_content(graph, content):
    (node,) = graph.find_by_content(content)
    return node


def has_edge(graph, source_content, target_content, edge_type):
    source = node_by_content(graph, source_content)
    target = node_by_content(graph, target_content)
    return graph.has_edge(source.node_id, target.node_id, edge_type)


class TestNodes:
    def test_parameter_becomes_decl_node(self):
        graph = build("void f(int[] a) { }")
        (node,) = graph.nodes
        assert node.type is NodeType.DECL
        assert node.content == "a"

    def test_initialized_declaration_becomes_assign(self):
        graph = build("void f() { int x = 0; }")
        node = node_by_content(graph, "x = 0")
        assert node.type is NodeType.ASSIGN

    def test_bare_declaration_produces_no_node(self):
        graph = build("void f() { int x; }")
        assert len(graph) == 0

    def test_multi_declarator_splits(self):
        graph = build("void f() { int o = 0, e = 1; }")
        assert [n.content for n in graph.nodes] == ["o = 0", "e = 1"]

    def test_call_node(self):
        graph = build("void f(int x) { System.out.println(x); }")
        node = node_by_content(graph, "System.out.println(x)")
        assert node.type is NodeType.CALL

    def test_condition_node(self):
        graph = build("void f(int x) { if (x > 0) x = 1; }")
        assert node_by_content(graph, "x > 0").type is NodeType.COND

    def test_return_node(self):
        graph = build("int f(int x) { return x + 1; }")
        assert node_by_content(graph, "return x + 1").type is NodeType.RETURN

    def test_void_return_node(self):
        graph = build("void f() { return; }")
        assert node_by_content(graph, "return").type is NodeType.RETURN

    def test_break_and_continue_nodes(self):
        graph = build(
            "void f() { while (true) { break; } while (true) { continue; } }"
        )
        assert node_by_content(graph, "break").type is NodeType.BREAK
        assert node_by_content(graph, "continue").type is NodeType.BREAK

    def test_increment_is_assign_node(self):
        graph = build("void f(int i) { i++; }")
        assert node_by_content(graph, "i++").type is NodeType.ASSIGN

    def test_node_variable_sets(self):
        graph = build("void f(int[] a, int i) { int odd = 0; odd += a[i]; }")
        node = node_by_content(graph, "odd += a[i]")
        assert set(node.defines) == {"odd"}
        assert set(node.uses) == {"odd", "a", "i"}


class TestControlEdges:
    def test_if_body_controlled_by_condition(self):
        graph = build("void f(int x) { if (x > 0) x = 1; }")
        assert has_edge(graph, "x > 0", "x = 1", EdgeType.CTRL)

    def test_else_branch_also_controlled(self):
        graph = build("void f(int x) { if (x > 0) x = 1; else x = 2; }")
        assert has_edge(graph, "x > 0", "x = 1", EdgeType.CTRL)
        assert has_edge(graph, "x > 0", "x = 2", EdgeType.CTRL)

    def test_no_transitive_control_edges(self):
        graph = build("""
        void f(int x) {
            if (x > 0)
                if (x > 1)
                    x = 2;
        }
        """)
        assert has_edge(graph, "x > 0", "x > 1", EdgeType.CTRL)
        assert has_edge(graph, "x > 1", "x = 2", EdgeType.CTRL)
        assert not has_edge(graph, "x > 0", "x = 2", EdgeType.CTRL)

    def test_while_body_controlled(self):
        graph = build("void f(int i) { while (i < 3) i++; }")
        assert has_edge(graph, "i < 3", "i++", EdgeType.CTRL)

    def test_for_update_controlled_by_condition(self):
        graph = build("void f() { for (int i = 0; i < 3; i++) { } }")
        assert has_edge(graph, "i < 3", "i++", EdgeType.CTRL)

    def test_for_init_not_controlled(self):
        graph = build("void f() { for (int i = 0; i < 3; i++) { } }")
        assert not has_edge(graph, "i < 3", "i = 0", EdgeType.CTRL)

    def test_do_while_body_not_controlled_by_condition(self):
        # a do-while body always runs at least once
        graph = build("void f(int i) { do { i++; } while (i < 3); }")
        assert not has_edge(graph, "i < 3", "i++", EdgeType.CTRL)

    def test_top_level_statements_have_no_ctrl_parents(self):
        graph = build("void f() { int x = 1; System.out.println(x); }")
        for node in graph.nodes:
            assert graph.predecessors(node.node_id, EdgeType.CTRL) == []

    def test_for_without_condition_gets_true_cond(self):
        graph = build("void f() { for (;;) { break; } }")
        assert node_by_content(graph, "true").type is NodeType.COND

    def test_switch_cases_controlled_by_selector(self):
        graph = build("""
        void f(int x) {
            int y = 0;
            switch (x) {
                case 1: y = 1; break;
                default: y = 2;
            }
        }
        """)
        selector = next(
            n for n in graph.nodes
            if n.type is NodeType.COND and n.content == "x"
        )
        for target_content in ("y = 1", "y = 2"):
            target = node_by_content(graph, target_content)
            assert graph.has_edge(
                selector.node_id, target.node_id, EdgeType.CTRL
            )


class TestDataEdges:
    def test_def_to_use(self):
        graph = build("void f() { int x = 1; int y = x + 1; }")
        assert has_edge(graph, "x = 1", "y = x + 1", EdgeType.DATA)

    def test_reassignment_kills_previous_def(self):
        graph = build("""
        void f() {
            int x = 1;
            x = 2;
            int y = x;
        }
        """)
        assert has_edge(graph, "x = 2", "y = x", EdgeType.DATA)
        assert not has_edge(graph, "x = 1", "y = x", EdgeType.DATA)

    def test_parameter_flows_to_uses(self):
        graph = build("void f(int n) { int x = n; }")
        assert has_edge(graph, "n", "x = n", EdgeType.DATA)

    def test_compound_assignment_reads_previous_def(self):
        graph = build("void f() { int s = 0; s += 1; }")
        assert has_edge(graph, "s = 0", "s += 1", EdgeType.DATA)

    def test_loop_body_assumed_to_execute_once(self):
        # paper: the def inside the loop kills the init for later uses
        graph = build("""
        void f(int[] a, int i) {
            int odd = 0;
            if (i % 2 == 1)
                odd += a[i];
            System.out.println(odd);
        }
        """)
        assert has_edge(
            graph, "odd += a[i]", "System.out.println(odd)", EdgeType.DATA
        )
        assert not has_edge(
            graph, "odd = 0", "System.out.println(odd)", EdgeType.DATA
        )

    def test_no_loop_back_edges(self):
        # paper (Bhattacharjee & Jamil): i++ does not feed the condition
        graph = build("void f() { for (int i = 0; i < 3; i++) { } }")
        assert not has_edge(graph, "i++", "i < 3", EdgeType.DATA)
        assert has_edge(graph, "i = 0", "i < 3", EdgeType.DATA)

    def test_init_flows_to_update(self):
        graph = build("void f() { for (int i = 0; i < 3; i++) { } }")
        assert has_edge(graph, "i = 0", "i++", EdgeType.DATA)

    def test_if_else_merges_definitions(self):
        graph = build("""
        void f(int c) {
            int x = 0;
            if (c > 0)
                x = 1;
            else
                x = 2;
            int y = x;
        }
        """)
        assert has_edge(graph, "x = 1", "y = x", EdgeType.DATA)
        assert has_edge(graph, "x = 2", "y = x", EdgeType.DATA)
        assert not has_edge(graph, "x = 0", "y = x", EdgeType.DATA)

    def test_branch_without_else_kills_outer_def(self):
        # the paper's "conditions are assumed true" model
        graph = build("""
        void f(int c) {
            int x = 0;
            if (c > 0)
                x = 1;
            int y = x;
        }
        """)
        assert has_edge(graph, "x = 1", "y = x", EdgeType.DATA)
        assert not has_edge(graph, "x = 0", "y = x", EdgeType.DATA)

    def test_array_write_redefines_array(self):
        graph = build("""
        void f(int[] a) {
            a[0] = 5;
            System.out.println(a[0]);
        }
        """)
        assert has_edge(
            graph, "a[0] = 5", "System.out.println(a[0])", EdgeType.DATA
        )

    def test_condition_reads_definitions(self):
        graph = build("void f() { int i = 0; while (i < 3) { i++; } }")
        assert has_edge(graph, "i = 0", "i < 3", EdgeType.DATA)

    def test_switch_branches_merge(self):
        graph = build("""
        void f(int x) {
            int y = 0;
            switch (x) {
                case 1: y = 1; break;
                default: y = 2;
            }
            int z = y;
        }
        """)
        assert has_edge(graph, "y = 1", "z = y", EdgeType.DATA)
        assert has_edge(graph, "y = 2", "z = y", EdgeType.DATA)


class TestMultipleMethods:
    def test_one_graph_per_method(self):
        graphs = extract_all_epdgs(parse_submission("""
        int fact(int m) { return m; }
        void main(int k) { int x = fact(k); }
        """))
        assert set(graphs) == {"fact", "main"}

    def test_call_argument_is_data_dependence(self):
        graphs = extract_all_epdgs(parse_submission(
            "void main(int k) { int x = fact(k); }"
        ))
        graph = graphs["main"]
        assert has_edge(graph, "k", "x = fact(k)", EdgeType.DATA)


class TestGraphStringForm:
    def test_str_contains_nodes_and_edges(self):
        graph = build("void f() { int x = 1; int y = x; }")
        text = str(graph)
        assert "x = 1" in text and "Data" in text
