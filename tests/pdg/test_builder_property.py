"""Property-based tests: EPDG invariants over generated programs.

A small program generator produces random (but well-formed) method
bodies; every graph the builder emits must satisfy the paper's
structural invariants regardless of the program's shape.
"""

from hypothesis import given, settings, strategies as st

from repro.java import parse_submission
from repro.pdg import EdgeType, NodeType, extract_epdg

_VARS = ["a", "b", "c", "s"]


@st.composite
def statements(draw, depth=2):
    kind = draw(st.sampled_from(
        ["assign", "increment", "print", "if", "while", "block"]
        if depth > 0 else ["assign", "increment", "print"]
    ))
    variable = draw(st.sampled_from(_VARS))
    other = draw(st.sampled_from(_VARS))
    number = draw(st.integers(min_value=0, max_value=9))
    if kind == "assign":
        rhs = draw(st.sampled_from(
            [f"{number}", f"{other} + {number}", f"{other} * 2"]
        ))
        return f"{variable} = {rhs};"
    if kind == "increment":
        return f"{variable}++;"
    if kind == "print":
        return f"System.out.println({variable});"
    inner = draw(st.lists(statements(depth=depth - 1), min_size=1,
                          max_size=3))
    body = "\n".join(inner)
    if kind == "if":
        if draw(st.booleans()):
            return f"if ({variable} > {number}) {{\n{body}\n}}"
        else_body = "\n".join(
            draw(st.lists(statements(depth=depth - 1), min_size=1,
                          max_size=2))
        )
        return (f"if ({variable} > {number}) {{\n{body}\n}} "
                f"else {{\n{else_body}\n}}")
    if kind == "while":
        return f"while ({variable} < {number}) {{\n{body}\n}}"
    return f"{{\n{body}\n}}"


@st.composite
def programs(draw):
    body = "\n".join(draw(st.lists(statements(), min_size=1, max_size=6)))
    declarations = "\n".join(f"int {v} = 0;" for v in _VARS)
    return f"void f(int[] arr) {{\n{declarations}\n{body}\n}}"


def graph_of(source):
    return extract_epdg(parse_submission(source).methods()[0])


class TestStructuralInvariants:
    @given(programs())
    @settings(max_examples=150, deadline=None)
    def test_node_ids_dense_and_ordered(self, source):
        graph = graph_of(source)
        assert [n.node_id for n in graph.nodes] == list(range(len(graph)))

    @given(programs())
    @settings(max_examples=150, deadline=None)
    def test_ctrl_edges_come_only_from_cond_nodes(self, source):
        graph = graph_of(source)
        for edge in graph.edges:
            if edge.type is EdgeType.CTRL:
                assert graph.node(edge.source).type is NodeType.COND

    @given(programs())
    @settings(max_examples=150, deadline=None)
    def test_at_most_one_ctrl_parent(self, source):
        # non-transitive control dependence: every node hangs off its
        # nearest enclosing condition only
        graph = graph_of(source)
        for node in graph.nodes:
            parents = graph.predecessors(node.node_id, EdgeType.CTRL)
            assert len(parents) <= 1

    @given(programs())
    @settings(max_examples=150, deadline=None)
    def test_data_edges_connect_defs_to_uses(self, source):
        graph = graph_of(source)
        for edge in graph.edges:
            if edge.type is EdgeType.DATA:
                source_node = graph.node(edge.source)
                target_node = graph.node(edge.target)
                shared = set(source_node.defines) & set(target_node.uses)
                assert shared, f"no def-use variable on {edge}"

    @given(programs())
    @settings(max_examples=150, deadline=None)
    def test_data_edges_point_forward(self, source):
        # without loop back-edges, definition order is topological
        graph = graph_of(source)
        for edge in graph.edges:
            if edge.type is EdgeType.DATA:
                assert edge.source < edge.target

    @given(programs())
    @settings(max_examples=150, deadline=None)
    def test_ctrl_edges_are_acyclic(self, source):
        graph = graph_of(source)
        for edge in graph.edges:
            if edge.type is EdgeType.CTRL:
                assert edge.source < edge.target

    @given(programs())
    @settings(max_examples=100, deadline=None)
    def test_builder_is_deterministic(self, source):
        first = graph_of(source)
        second = graph_of(source)
        assert [n.content for n in first.nodes] == \
            [n.content for n in second.nodes]
        assert first.edges == second.edges
