"""Unit tests for expression variable analysis."""

from repro.java import parse_expression
from repro.pdg.expressions import defined_variables, used_variables


def uses(source):
    return set(used_variables(parse_expression(source)))


def defines(source):
    return set(defined_variables(parse_expression(source)))


class TestUsedVariables:
    def test_simple_name(self):
        assert uses("x") == {"x"}

    def test_binary(self):
        assert uses("a + b * c") == {"a", "b", "c"}

    def test_field_access_skips_field_name(self):
        assert uses("a.length") == {"a"}

    def test_static_classes_excluded(self):
        assert uses("System.out.println(x)") == {"x"}
        assert uses("Math.pow(x, i)") == {"x", "i"}
        assert uses("Integer.MAX_VALUE") == set()

    def test_method_name_excluded(self):
        assert uses("fact(n + 1)") == {"n"}

    def test_array_access(self):
        assert uses("a[i]") == {"a", "i"}

    def test_plain_assignment_does_not_use_target(self):
        assert uses("x = y + 1") == {"y"}

    def test_compound_assignment_uses_target(self):
        assert uses("x += y") == {"x", "y"}

    def test_array_write_uses_index_and_reference(self):
        assert uses("a[i] = v") == {"a", "i", "v"}

    def test_increment_does_not_count_as_pure_use(self):
        # i++ reads i (via the operand) — it must appear in uses
        assert uses("i++") == {"i"}

    def test_scanner_construction(self):
        assert uses('new Scanner(new File("f.txt"))') == set()

    def test_instance_call_uses_receiver(self):
        assert uses("s.nextInt()") == {"s"}

    def test_string_concat(self):
        assert uses('"O: " + x + ", E: " + y') == {"x", "y"}

    def test_none_expression(self):
        assert set(used_variables(None)) == set()


class TestDefinedVariables:
    def test_plain_assignment(self):
        assert defines("x = 1") == {"x"}

    def test_compound_assignment(self):
        assert defines("x += 1") == {"x"}

    def test_increment(self):
        assert defines("i++") == {"i"}
        assert defines("--j") == {"j"}

    def test_array_write_defines_array_variable(self):
        assert defines("d[i - 1] = c[i] * i") == {"d"}

    def test_call_defines_nothing(self):
        assert defines("System.out.println(x)") == set()

    def test_nested_assignment_in_value(self):
        assert defines("x = (y = 2)") == {"x", "y"}

    def test_condition_defines_nothing(self):
        assert defines("i % 2 == 1") == set()
