"""Unit tests for Algorithm 1 (subgraph pattern matching)."""

import pytest

from repro.java import parse_submission
from repro.kb import get_pattern
from repro.kb.assignments.assignment1 import FIGURE_2A, FIGURE_2B
from repro.matching import match_pattern
from repro.patterns import ExprTemplate, Pattern, PatternNode
from repro.pdg import EdgeType, NodeType, extract_epdg
from repro.pdg.graph import GraphEdge


def graph_of(source, method=None):
    unit = parse_submission(source)
    decl = unit.methods()[0] if method is None else unit.method(method)
    return extract_epdg(decl)


def make_pattern(nodes, edges=()):
    return Pattern(name="test", description="test pattern",
                   nodes=nodes, edges=list(edges))


def node(node_id, node_type, expr, variables=(), approx=None,
         approx_vars=None):
    approx_template = None
    if approx is not None:
        approx_template = ExprTemplate(
            approx,
            frozenset(approx_vars if approx_vars is not None else variables),
        )
    return PatternNode(
        node_id, node_type,
        ExprTemplate(expr, frozenset(variables)),
        approx=approx_template,
    )


class TestStructuralMatching:
    def test_single_node_match(self):
        graph = graph_of("void f() { int x = 0; }")
        pattern = make_pattern([node(0, NodeType.ASSIGN, r"v = 0", ("v",))])
        (embedding,) = match_pattern(pattern, graph)
        assert embedding.gamma_map == {"v": "x"}

    def test_type_filter(self):
        graph = graph_of("void f(int x) { if (x > 0) x = 1; }")
        pattern = make_pattern([node(0, NodeType.CALL, r"x", ("x",))])
        assert match_pattern(pattern, graph) == []

    def test_untyped_matches_any_type(self):
        graph = graph_of("void f() { int x = 0; }")
        pattern = make_pattern([node(0, NodeType.UNTYPED, r"v = 0", ("v",))])
        assert len(match_pattern(pattern, graph)) == 1

    def test_edge_requirement_prunes(self):
        graph = graph_of("""
        void f(int c) {
            int x = 0;
            if (c > 0)
                x = 1;
            int y = 5;
        }
        """)
        pattern = make_pattern(
            [
                node(0, NodeType.COND, r"", ()),
                node(1, NodeType.ASSIGN, r"v = 1", ("v",)),
            ],
            [GraphEdge(0, 1, EdgeType.CTRL)],
        )
        (embedding,) = match_pattern(pattern, graph)
        assert embedding.gamma_map["v"] == "x"

    def test_incoming_edges_also_checked(self):
        # an edge from an already-matched node INTO the new node must hold
        graph = graph_of("void f() { int x = 0; int y = x; int z = 1; }")
        pattern = make_pattern(
            [
                node(0, NodeType.ASSIGN, r"", ()),
                node(1, NodeType.ASSIGN, r"", ()),
            ],
            [GraphEdge(0, 1, EdgeType.DATA)],
        )
        embeddings = match_pattern(pattern, graph)
        pairs = {
            (graph.node(e.graph_node(0)).content,
             graph.node(e.graph_node(1)).content)
            for e in embeddings
        }
        assert pairs == {("x = 0", "y = x")}

    def test_injective_node_mapping(self):
        # two pattern nodes cannot map to the same graph node
        graph = graph_of("void f() { int x = 0; }")
        pattern = make_pattern([
            node(0, NodeType.ASSIGN, r"", ()),
            node(1, NodeType.ASSIGN, r"", ()),
        ])
        assert match_pattern(pattern, graph) == []

    def test_empty_pattern_yields_nothing(self):
        graph = graph_of("void f() { int x = 0; }")
        assert match_pattern(make_pattern([]), graph) == []

    def test_unmatchable_type_short_circuits(self):
        graph = graph_of("void f() { int x = 0; }")
        pattern = make_pattern([node(0, NodeType.RETURN, r"", ())])
        assert match_pattern(pattern, graph) == []


class TestVariableMatching:
    def test_variables_bind_injectively(self):
        graph = graph_of("void f() { int x = 0; int s = x + x; }")
        pattern = make_pattern([
            node(0, NodeType.ASSIGN, r"a \+ b", ("a", "b")),
        ])
        # `s = x + x` has only variable x besides s; a and b cannot both
        # bind to x, and (a=s, b=x) fails the expression
        assert match_pattern(pattern, graph) == []

    def test_gamma_shared_across_nodes(self):
        graph = graph_of("""
        void f() {
            int i = 0;
            int j = 0;
            i++;
        }
        """)
        pattern = make_pattern(
            [
                node(0, NodeType.ASSIGN, r"v = 0", ("v",)),
                node(1, NodeType.ASSIGN, r"v\+\+", ("v",)),
            ],
            [GraphEdge(0, 1, EdgeType.DATA)],
        )
        (embedding,) = match_pattern(pattern, graph)
        assert embedding.gamma_map == {"v": "i"}

    def test_fewer_pattern_vars_than_node_vars_allowed(self):
        # our documented relaxation of the paper's |X| = |Y| rule
        graph = graph_of("void f(int[] a, int i) { int odd = 0; odd += a[i]; }")
        pattern = make_pattern([
            node(0, NodeType.ASSIGN, r"s\[x\]", ("s", "x")),
        ])
        embeddings = match_pattern(pattern, graph)
        assert any(
            e.gamma_map.get("s") == "a" and e.gamma_map.get("x") == "i"
            for e in embeddings
        )

    def test_more_pattern_vars_than_node_vars_fails(self):
        graph = graph_of("void f() { int x = 0; }")
        pattern = make_pattern([
            node(0, NodeType.ASSIGN, r"a = b", ("a", "b")),
        ])
        assert match_pattern(pattern, graph) == []

    def test_symmetric_bindings_both_kept(self):
        # with a symmetric template both variable orders are embeddings
        graph = graph_of("void f(int p, int q) { int t = p + q; }")
        pattern = make_pattern([
            node(0, NodeType.ASSIGN, r"a \+ b|b \+ a", ("a", "b")),
        ])
        gammas = {tuple(sorted(e.gamma_map.items()))
                  for e in match_pattern(pattern, graph)}
        assert (("a", "p"), ("b", "q")) in gammas
        assert (("a", "q"), ("b", "p")) in gammas

    def test_directional_template_picks_one_order(self):
        graph = graph_of("void f(int p, int q) { int t = p + q; }")
        pattern = make_pattern([
            node(0, NodeType.ASSIGN, r"a \+ b", ("a", "b")),
        ])
        (embedding,) = match_pattern(pattern, graph)
        assert embedding.gamma_map == {"a": "p", "b": "q"}


class TestApproximateMatching:
    def test_exact_match_marked_correct(self):
        graph = graph_of("void f(int[] a, int i) { if (i < a.length) i++; }")
        pattern = make_pattern([
            node(0, NodeType.COND, r"x < s\.length", ("x", "s"),
                 approx=r"x <= s\.length"),
        ])
        (embedding,) = match_pattern(pattern, graph)
        assert embedding.is_fully_correct

    def test_approximate_match_marked_incorrect(self):
        graph = graph_of("void f(int[] a, int i) { if (i <= a.length) i++; }")
        pattern = make_pattern([
            node(0, NodeType.COND, r"x < s\.length", ("x", "s"),
                 approx=r"x <= s\.length"),
        ])
        (embedding,) = match_pattern(pattern, graph)
        assert not embedding.is_fully_correct
        assert embedding.incorrect_nodes == (0,)

    def test_no_approx_means_crucial_node(self):
        graph = graph_of("void f(int i) { if (i % 2 == 0) i++; }")
        pattern = make_pattern([
            node(0, NodeType.COND, r"x % 2 == 1", ("x",)),
        ])
        assert match_pattern(pattern, graph) == []


class TestPaperExample:
    """Section IV's worked example: pattern p_o over Figure 3."""

    def test_figure_2a_yields_approximate_embedding(self):
        graph = graph_of(FIGURE_2A)
        embeddings = match_pattern(get_pattern("seq-odd-access"), graph)
        assert len(embeddings) == 2  # both ifs use i % 2 == 1
        for embedding in embeddings:
            assert embedding.gamma_map == {"s": "a", "x": "i"}
            # u3 (the bound) only matches approximately: i <= a.length
            assert 3 in embedding.incorrect_nodes

    def test_figure_2b_yields_exact_embedding(self):
        graph = graph_of(FIGURE_2B)
        embeddings = match_pattern(get_pattern("seq-odd-access"), graph)
        assert len(embeddings) == 1
        assert embeddings[0].is_fully_correct
        assert embeddings[0].gamma_map == {"s": "a", "x": "i"}

    def test_embedding_reports_graph_nodes(self):
        graph = graph_of(FIGURE_2B)
        (embedding,) = match_pattern(get_pattern("seq-odd-access"), graph)
        access = graph.node(embedding.graph_node(5))
        assert access.content == "o += a[i]"


class TestEmbeddingObject:
    def test_str_form(self):
        graph = graph_of(FIGURE_2B)
        (embedding,) = match_pattern(get_pattern("seq-odd-access"), graph)
        text = str(embedding)
        assert "u0=v" in text and "s->a" in text
