"""Property-based tests: every embedding Algorithm 1 returns satisfies
Definition 7, on random programs matched against the whole pattern
library."""

from hypothesis import given, settings, strategies as st

from repro.java import parse_submission
from repro.kb import all_patterns
from repro.matching import match_pattern
from repro.pdg import NodeType, extract_epdg

_PATTERNS = list(all_patterns().values())

_SNIPPETS = [
    "int odd = 0;",
    "int even = 1;",
    "int i = 0;",
    "int n = k;",
    "odd += a[i];",
    "even *= a[i];",
    "i++;",
    "n /= 10;",
    "int d = n % 10;",
    "System.out.println(odd);",
    "if (i % 2 == 1) odd += a[i];",
    "if (i % 2 == 0) even *= a[i];",
    "while (i < a.length) { i++; }",
    "while (n != 0) { n /= 10; }",
    "for (int j = 0; j < a.length; j++) odd += a[j];",
    "return;",
]


@st.composite
def programs(draw):
    chosen = draw(st.lists(st.sampled_from(_SNIPPETS), min_size=1,
                           max_size=8))
    body = "\n".join(chosen)
    return (
        "void f(int[] a, int k) {\n"
        "int odd = 0; int even = 1; int i = 0; int n = k; int d = 0;\n"
        f"{body}\n}}"
    )


class TestDefinitionSeven:
    @given(programs(), st.sampled_from(_PATTERNS))
    @settings(max_examples=250, deadline=None)
    def test_embeddings_satisfy_definition_7(self, source, pattern):
        graph = extract_epdg(parse_submission(source).methods()[0])
        for embedding in match_pattern(pattern, graph):
            iota = embedding.iota_map
            gamma = embedding.gamma_map
            # condition 1: total, type-respecting node mapping
            assert set(iota) == {u.node_id for u in pattern.nodes}
            for u in pattern.nodes:
                v = graph.node(iota[u.node_id])
                assert u.type is NodeType.UNTYPED or u.type is v.type
                # the (possibly approximate) expression matched
                bound = {
                    name: gamma[name]
                    for name in u.expr.variables if name in gamma
                }
                exact = len(bound) == len(u.expr.variables) and \
                    u.expr.matches(v.content, bound)
                approx = False
                if u.approx is not None:
                    approx_bound = {
                        name: gamma[name]
                        for name in u.approx.variables if name in gamma
                    }
                    approx = len(approx_bound) == len(u.approx.variables) \
                        and u.approx.matches(v.content, approx_bound)
                assert exact or approx
            # condition 2: every pattern edge is realized in the graph
            for edge in pattern.edges:
                assert graph.has_edge(
                    iota[edge.source], iota[edge.target], edge.type
                )
            # ι and γ are injective
            assert len(set(iota.values())) == len(iota)
            assert len(set(gamma.values())) == len(gamma)

    @given(programs(), st.sampled_from(_PATTERNS))
    @settings(max_examples=100, deadline=None)
    def test_marks_cover_every_node(self, source, pattern):
        graph = extract_epdg(parse_submission(source).methods()[0])
        for embedding in match_pattern(pattern, graph):
            assert set(embedding.marks_map) == {
                u.node_id for u in pattern.nodes
            }

    @given(programs(), st.sampled_from(_PATTERNS))
    @settings(max_examples=100, deadline=None)
    def test_matching_is_deterministic(self, source, pattern):
        graph = extract_epdg(parse_submission(source).methods()[0])
        first = match_pattern(pattern, graph)
        second = match_pattern(pattern, graph)
        assert first == second
