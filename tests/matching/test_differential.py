"""Differential tests: the optimized matcher vs the naive reference paths.

The engine promises three equivalences, each verified here:

* **bipartite vs permutation** (same ordering): byte-identical outcomes —
  render, Λ score, method assignment, truncation flag — across every
  knowledge-base assignment, both header modes, and sampled synthetic
  submissions.
* **connectivity vs naive ordering**: identical verdicts (Λ score,
  comment statuses, method assignment) and identical pattern occurrence
  sets.  Variable bindings are inherently order-sensitive (an
  under-constrained template binds γ at whichever node is matched first,
  see ``bench_ablation_ordering.py``), so feedback *detail wording* may
  legitimately differ between orderings; everything the grade depends on
  must not.
* **γ-free patterns**: with no variables in play the embedding set is a
  pure function of the pattern and graph, so both orderings — including
  the compiled plan's degree and arity pruning — must return exactly the
  same embeddings and marks.  Verified on randomized synthetic EPDGs
  with patterns drawn from their own subgraphs (so at least one
  embedding always exists).
"""

from __future__ import annotations

import random
import re
from functools import lru_cache

import pytest

from repro.java import parse_submission
from repro.kb import get_assignment
from repro.kb.registry import all_assignment_names
from repro.matching.pattern_matching import match_pattern
from repro.matching.submission import match_graphs
from repro.patterns.groups import PatternGroup
from repro.patterns.model import Pattern, PatternNode
from repro.patterns.template import ExprTemplate
from repro.pdg.builder import extract_all_epdgs
from repro.pdg.graph import EdgeType, Epdg, GraphEdge, GraphNode, NodeType
from repro.synth import sample_submissions


@lru_cache(maxsize=None)
def _reference_case(name: str):
    assignment = get_assignment(name)
    unit = parse_submission(assignment.reference_solutions[0])
    graphs = extract_all_epdgs(
        unit, assignment.synthesize_else_conditions
    )
    return assignment, graphs


def _outcome_key(outcome):
    """Everything a delivered grade consists of, byte-comparable."""
    return (
        outcome.render(),
        outcome.score,
        outcome.method_assignment,
        outcome.truncated,
    )


# -- strategy equivalence: bipartite vs permutation ----------------------

@pytest.mark.parametrize("enforce_headers", [True, False])
@pytest.mark.parametrize("name", all_assignment_names())
def test_bipartite_identical_to_permutation(name, enforce_headers):
    assignment, graphs = _reference_case(name)
    for order in ("connectivity", "naive"):
        sweep = match_graphs(
            graphs, assignment.expected_methods, enforce_headers,
            strategy="permutation", order=order,
        )
        fast = match_graphs(
            graphs, assignment.expected_methods, enforce_headers,
            strategy="bipartite", order=order,
        )
        assert _outcome_key(fast) == _outcome_key(sweep), (
            f"{name}: bipartite differs from sweep (order={order})"
        )


@pytest.mark.parametrize(
    "name",
    ["assignment1", "esc-LAB-3-P1-V1", "mitx-derivatives",
     "rit-all-g-medals"],
)
def test_bipartite_identical_on_sampled_submissions(name):
    assignment = get_assignment(name)
    for submission in sample_submissions(assignment.space(), 3, seed=7):
        unit = parse_submission(submission.source)
        graphs = extract_all_epdgs(
            unit, assignment.synthesize_else_conditions
        )
        sweep = match_graphs(
            graphs, assignment.expected_methods,
            assignment.enforce_headers, strategy="permutation",
        )
        fast = match_graphs(
            graphs, assignment.expected_methods,
            assignment.enforce_headers, strategy="bipartite",
        )
        assert _outcome_key(fast) == _outcome_key(sweep)


def test_scrambled_methods_recovered_without_headers():
    """The bipartite engine must find the sweep's method assignment."""
    assignment = get_assignment("esc-LAB-3-P1-V1")
    source = (
        assignment.reference_solutions[0]
        .replace("fact", "m_fact")
        .replace("lab3p1", "m_drv")
    )
    distractors = "\n".join(
        f"int helper{i}(int a{i}) {{\n"
        f"    int r{i} = a{i} + {i};\n"
        f"    System.out.println(r{i});\n"
        f"    return r{i};\n"
        f"}}\n"
        for i in range(2)
    )
    unit = parse_submission(source + "\n" + distractors)
    graphs = extract_all_epdgs(
        unit, assignment.synthesize_else_conditions
    )
    sweep = match_graphs(graphs, assignment.expected_methods, False,
                         strategy="permutation")
    fast = match_graphs(graphs, assignment.expected_methods, False)
    assert fast.method_assignment == {"fact": "m_fact", "lab3p1": "m_drv"}
    assert _outcome_key(fast) == _outcome_key(sweep)


# -- ordering equivalence: connectivity (plan + pruning) vs naive --------

@pytest.mark.parametrize("name", all_assignment_names())
def test_orderings_agree_on_verdicts(name):
    assignment, graphs = _reference_case(name)
    naive = match_graphs(
        graphs, assignment.expected_methods, assignment.enforce_headers,
        order="naive",
    )
    fast = match_graphs(
        graphs, assignment.expected_methods, assignment.enforce_headers,
        order="connectivity",
    )
    assert fast.score == naive.score
    assert fast.method_assignment == naive.method_assignment
    assert fast.truncated == naive.truncated
    assert (
        [c.status for c in fast.comments]
        == [c.status for c in naive.comments]
    )


@pytest.mark.parametrize("name", all_assignment_names())
def test_orderings_agree_on_occurrence_sets(name):
    assignment, graphs = _reference_case(name)
    for method in assignment.expected_methods:
        graph = graphs.get(method.name)
        if graph is None:
            continue
        for entry, _ in method.patterns:
            patterns = (
                [variant.pattern for variant in entry.variants]
                if isinstance(entry, PatternGroup) else [entry]
            )
            for pattern in patterns:
                fast = match_pattern(pattern, graph, order="connectivity")
                naive = match_pattern(pattern, graph, order="naive")
                occurrences_fast = {
                    frozenset(v for _, v in e.iota) for e in fast
                }
                occurrences_naive = {
                    frozenset(v for _, v in e.iota) for e in naive
                }
                assert occurrences_fast == occurrences_naive, (
                    f"{name}/{method.name}/{pattern.name}: "
                    "occurrence sets differ between orderings"
                )
                assert (
                    any(e.is_fully_correct for e in fast)
                    == any(e.is_fully_correct for e in naive)
                )


# -- randomized synthetic EPDGs: exact equality on γ-free patterns ------

_TYPES = (NodeType.ASSIGN, NodeType.COND, NodeType.CALL,
          NodeType.DECL, NodeType.RETURN)


def _random_graph(rng: random.Random) -> Epdg:
    """A random EPDG with a small content alphabet (so patterns repeat).

    Contents are fixed-width tokens: with the matcher's substring
    semantics, no token can accidentally match inside another.
    """
    graph = Epdg("synthetic")
    size = rng.randint(6, 12)
    for node_id in range(size):
        graph.add_node(GraphNode(
            node_id=node_id,
            type=rng.choice(_TYPES),
            content=f"expr_{rng.randint(0, 3):02d}",
        ))
    for source in range(size):
        for target in range(size):
            if source != target and rng.random() < 0.25:
                edge_type = (
                    EdgeType.CTRL if rng.random() < 0.5 else EdgeType.DATA
                )
                graph.add_edge(source, target, edge_type)
    return graph


def _pattern_from_subgraph(rng: random.Random, graph: Epdg) -> Pattern:
    """A γ-free pattern copied from a random subgraph (so it must match)."""
    chosen = rng.sample(range(len(graph.nodes)), rng.randint(2, 4))
    renumber = {v_id: u_id for u_id, v_id in enumerate(chosen)}
    nodes = []
    for v_id in chosen:
        v = graph.node(v_id)
        node_type = v.type if rng.random() < 0.7 else NodeType.UNTYPED
        nodes.append(PatternNode(
            node_id=renumber[v_id],
            type=node_type,
            expr=ExprTemplate(re.escape(v.content), frozenset()),
        ))
    edges = [
        GraphEdge(renumber[e.source], renumber[e.target], e.type)
        for e in graph.edges
        if e.source in renumber and e.target in renumber
    ]
    return Pattern(
        name="synthetic", description="randomized differential case",
        nodes=nodes, edges=edges,
    )


@pytest.mark.parametrize("seed", range(30))
def test_random_epdg_orderings_exactly_equal(seed):
    rng = random.Random(seed)
    graph = _random_graph(rng)
    pattern = _pattern_from_subgraph(rng, graph)
    fast = match_pattern(pattern, graph, order="connectivity")
    naive = match_pattern(pattern, graph, order="naive")
    key = lambda e: (e.iota, e.gamma, e.marks)  # noqa: E731
    assert fast, "subgraph-derived pattern must embed at least once"
    assert {key(e) for e in fast} == {key(e) for e in naive}
    assert fast.truncated == naive.truncated
