"""Unit tests for Algorithm 2 (submission matching)."""

import pytest

from repro.java import parse_submission
from repro.kb import get_assignment, get_pattern
from repro.matching import (
    ExpectedMethod,
    FeedbackStatus,
    match_submission,
)


def expected_counter(name="f"):
    return ExpectedMethod(
        name=name,
        patterns=[(get_pattern("counter-under-cond"), 1)],
    )


COUNTER_BODY = """
{
    int n = 0;
    while (more(n))
        n++;
    System.out.println(n);
}
boolean more(int n) { return n < 3; }
"""


class TestHeaderEnforcement:
    def test_matching_header_grades_normally(self):
        unit = parse_submission("void f() " + COUNTER_BODY)
        outcome = match_submission(unit, [expected_counter("f")])
        assert outcome.method_assignment == {"f": "f"}
        assert outcome.comments[0].status is FeedbackStatus.CORRECT

    def test_missing_header_yields_structure_comment(self):
        unit = parse_submission("void wrongName() " + COUNTER_BODY)
        outcome = match_submission(unit, [expected_counter("f")])
        (comment,) = [c for c in outcome.comments if c.kind == "structure"]
        assert comment.status is FeedbackStatus.NOT_EXPECTED
        assert "required method 'f'" in comment.message

    def test_score_zero_when_nothing_matches(self):
        unit = parse_submission("void wrongName() " + COUNTER_BODY)
        outcome = match_submission(unit, [expected_counter("f")])
        assert outcome.score == 0.0
        assert not outcome.is_fully_correct


class TestMethodCombinations:
    """Without header enforcement, Algorithm 2 tries every injective
    assignment of expected methods and keeps the best-Λ one."""

    def test_renamed_method_still_graded(self):
        unit = parse_submission("void mySolution() " + COUNTER_BODY)
        outcome = match_submission(
            unit, [expected_counter("f")], enforce_headers=False
        )
        assert outcome.method_assignment["f"] == "mySolution"
        assert outcome.comments[0].status is FeedbackStatus.CORRECT

    def test_best_combination_wins(self):
        # two methods: only one contains the counter pattern; the
        # combination mapping `f` onto it must win by Λ
        unit = parse_submission("""
        void helper(int x) { System.out.println(x); }
        void counts() {
            int n = 0;
            while (n < 3)
                n++;
        }
        """)
        outcome = match_submission(
            unit, [expected_counter("f")], enforce_headers=False
        )
        assert outcome.method_assignment["f"] == "counts"

    def test_two_expected_methods_swap_correctly(self):
        # the paper's fact/driver setting with scrambled names
        assignment = get_assignment("esc-LAB-3-P1-V1")
        source = assignment.reference_solutions[0]
        scrambled = source.replace("fact", "helper").replace(
            "lab3p1", "driver"
        )
        unit = parse_submission(scrambled)
        outcome = match_submission(
            unit, assignment.expected_methods, enforce_headers=False
        )
        assert outcome.method_assignment == {
            "fact": "helper", "lab3p1": "driver"
        }
        # every *pattern* is satisfied under the swap; only the two
        # containment constraints that literally reference the expected
        # helper name `fact` still complain
        pattern_comments = [c for c in outcome.comments
                            if c.kind == "pattern"]
        assert all(c.status is FeedbackStatus.CORRECT
                   for c in pattern_comments)

    def test_fewer_methods_than_expected_reports_missing(self):
        assignment = get_assignment("esc-LAB-3-P1-V1")
        unit = parse_submission("void lab3p1(int k) { }")
        outcome = match_submission(
            unit, assignment.expected_methods, enforce_headers=False
        )
        structures = [c for c in outcome.comments if c.kind == "structure"]
        assert structures  # fact is missing


class TestOutcome:
    def test_embeddings_exposed(self):
        unit = parse_submission("void f() " + COUNTER_BODY)
        outcome = match_submission(unit, [expected_counter("f")])
        assert "counter-under-cond" in outcome.embeddings["f"]

    def test_render_mentions_renames(self):
        unit = parse_submission("void other() " + COUNTER_BODY)
        outcome = match_submission(
            unit, [expected_counter("f")], enforce_headers=False
        )
        assert "expected method f ~ your other" in outcome.render()

    def test_is_fully_correct_requires_comments(self):
        unit = parse_submission("void f() { }")
        outcome = match_submission(unit, [ExpectedMethod(name="f")])
        assert outcome.comments == []
        assert not outcome.is_fully_correct
