"""Unit tests for ProvideFeedback and the Λ cost function."""

import pytest

from repro.matching import FeedbackStatus, cost, match_pattern, provide_feedback
from repro.matching.feedback import FeedbackComment
from repro.java import parse_submission
from repro.kb import get_pattern
from repro.kb.assignments.assignment1 import FIGURE_2A, FIGURE_2B
from repro.pdg import extract_epdg


def embeddings_for(source, pattern_name):
    graph = extract_epdg(parse_submission(source).methods()[0])
    return match_pattern(get_pattern(pattern_name), graph)


class TestProvideFeedback:
    def test_exact_match_is_correct(self):
        found = embeddings_for(FIGURE_2B, "seq-odd-access")
        comment = provide_feedback(found, get_pattern("seq-odd-access"), 1)
        assert comment.status is FeedbackStatus.CORRECT
        assert "odd positions" in comment.message
        # node feedback instantiated with submission variable names
        assert any("i is initialized to 0" in d for d in comment.details)

    def test_missing_pattern_is_not_expected(self):
        comment = provide_feedback([], get_pattern("seq-odd-access"), 1)
        assert comment.status is FeedbackStatus.NOT_EXPECTED
        assert "not accessing odd positions" in comment.message

    def test_approximate_match_is_incorrect(self):
        source = """
        void f(int[] a) {
            int o = 0;
            for (int i = 0; i <= a.length; i++)
                if (i % 2 == 1)
                    o += a[i];
        }
        """
        found = embeddings_for(source, "seq-odd-access")
        comment = provide_feedback(found, get_pattern("seq-odd-access"), 1)
        assert comment.status is FeedbackStatus.INCORRECT
        assert any("out of bounds" in d for d in comment.details)

    def test_wrong_count_is_not_expected(self):
        found = embeddings_for(FIGURE_2A, "seq-odd-access")
        comment = provide_feedback(found, get_pattern("seq-odd-access"), 1)
        assert comment.status is FeedbackStatus.NOT_EXPECTED
        assert "Found 2 occurrences" in comment.message

    def test_count_none_means_at_least_one(self):
        found = embeddings_for(FIGURE_2B, "print-call")
        comment = provide_feedback(found, get_pattern("print-call"), None)
        assert comment.status is FeedbackStatus.CORRECT

    def test_bad_pattern_absent_is_correct(self):
        comment = provide_feedback([], get_pattern("factorial-loop"), 0)
        assert comment.status is FeedbackStatus.CORRECT
        assert "avoids" in comment.message

    def test_bad_pattern_present_is_not_expected(self):
        source = """
        void f(int m) {
            int f = 1;
            for (int i = 1; i <= m; i++)
                f *= i;
        }
        """
        found = embeddings_for(source, "factorial-loop")
        comment = provide_feedback(found, get_pattern("factorial-loop"), 0)
        assert comment.status is FeedbackStatus.NOT_EXPECTED

    def test_bad_pattern_ignores_approximate_matches(self):
        # only exact matches count against a bad pattern
        source = """
        void f(int m) {
            int f = 0;
            for (int i = 1; i <= m; i++)
                f = i;
        }
        """
        found = embeddings_for(source, "factorial-loop")
        comment = provide_feedback(found, get_pattern("factorial-loop"), 0)
        assert comment.status is FeedbackStatus.CORRECT


class TestCostFunction:
    def comment(self, status):
        return FeedbackComment(source="s", kind="pattern", status=status,
                               message="m")

    def test_equation_3_weights(self):
        comments = [
            self.comment(FeedbackStatus.CORRECT),
            self.comment(FeedbackStatus.INCORRECT),
            self.comment(FeedbackStatus.NOT_EXPECTED),
        ]
        assert cost(comments) == 1.5

    def test_empty_is_zero(self):
        assert cost([]) == 0.0

    def test_all_correct(self):
        assert cost([self.comment(FeedbackStatus.CORRECT)] * 4) == 4.0


class TestCommentRendering:
    def test_render_includes_status_and_details(self):
        comment = FeedbackComment(
            source="p", kind="pattern", status=FeedbackStatus.INCORRECT,
            message="head", details=("one", "two"),
        )
        text = comment.render()
        assert "[Incorrect] head" in text
        assert "- one" in text and "- two" in text

    def test_render_without_message_falls_back_to_source(self):
        comment = FeedbackComment(
            source="p", kind="pattern", status=FeedbackStatus.CORRECT,
            message="",
        )
        assert "p" in comment.render()
