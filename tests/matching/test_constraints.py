"""Unit tests for constraint matching (Definitions 8-10)."""

import pytest

from repro.java import parse_submission
from repro.kb import get_pattern
from repro.kb.assignments.assignment1 import FIGURE_2B
from repro.matching import FeedbackStatus, check_constraint, match_pattern
from repro.patterns import (
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
    ExprTemplate,
)
from repro.pdg import EdgeType, extract_epdg


@pytest.fixture(scope="module")
def fig2b():
    graph = extract_epdg(
        parse_submission(FIGURE_2B).method("assignment1")
    )
    names = ("seq-odd-access", "seq-even-access", "cond-cumulative-add",
             "cond-cumulative-mul", "assign-print")
    embeddings = {
        name: match_pattern(get_pattern(name), graph) for name in names
    }
    statuses = {
        name: (FeedbackStatus.CORRECT if found else
               FeedbackStatus.NOT_EXPECTED)
        for name, found in embeddings.items()
    }
    return graph, embeddings, statuses


class TestEqualityConstraint:
    def test_satisfied(self, fig2b):
        graph, embeddings, statuses = fig2b
        # the paper's example: (p_o, u5, p_a, u3)
        constraint = EqualityConstraint(
            name="odd-sum", pattern_i="seq-odd-access", node_i=5,
            pattern_j="cond-cumulative-add", node_j=3,
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.CORRECT

    def test_violated(self, fig2b):
        graph, embeddings, statuses = fig2b
        # odd access node vs the *product* accumulation node: different
        constraint = EqualityConstraint(
            name="mixed", pattern_i="seq-odd-access", node_i=5,
            pattern_j="cond-cumulative-mul", node_j=3,
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.INCORRECT

    def test_feedback_instantiated_with_gamma(self, fig2b):
        graph, embeddings, statuses = fig2b
        constraint = EqualityConstraint(
            name="odd-sum", pattern_i="seq-odd-access", node_i=5,
            pattern_j="cond-cumulative-add", node_j=3,
            feedback_correct="{c} sums the odd positions of {s}",
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.message == "o sums the odd positions of a"


class TestEdgeExistenceConstraint:
    def test_satisfied(self, fig2b):
        graph, embeddings, statuses = fig2b
        # the paper's example: accumulated variable is printed
        constraint = EdgeExistenceConstraint(
            name="printed", pattern_i="cond-cumulative-add", node_i=3,
            pattern_j="assign-print", node_j=1, edge_type=EdgeType.DATA,
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.CORRECT

    def test_wrong_edge_type_fails(self, fig2b):
        graph, embeddings, statuses = fig2b
        constraint = EdgeExistenceConstraint(
            name="ctrl", pattern_i="cond-cumulative-add", node_i=3,
            pattern_j="assign-print", node_j=1, edge_type=EdgeType.CTRL,
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.INCORRECT


class TestContainmentConstraint:
    def test_satisfied(self, fig2b):
        graph, embeddings, statuses = fig2b
        # the paper's example: (p_o, u5, `c += s[x]`, {p_a})
        constraint = ContainmentConstraint(
            name="contains", pattern="seq-odd-access", node=5,
            expr=ExprTemplate(r"c \+= s\[x\]", frozenset({"c", "s", "x"})),
            supporting=("cond-cumulative-add",),
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.CORRECT

    def test_violated(self, fig2b):
        graph, embeddings, statuses = fig2b
        constraint = ContainmentConstraint(
            name="contains", pattern="seq-odd-access", node=5,
            expr=ExprTemplate(r"c \*= s\[x\]", frozenset({"c", "s", "x"})),
            supporting=("cond-cumulative-add",),
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.INCORRECT

    def test_empty_supporting_set(self, fig2b):
        graph, embeddings, statuses = fig2b
        constraint = ContainmentConstraint(
            name="self", pattern="seq-odd-access", node=1,
            expr=ExprTemplate(r"x = 0", frozenset({"x"})),
            supporting=(),
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.CORRECT

    def test_variable_free_expression(self, fig2b):
        graph, embeddings, statuses = fig2b
        constraint = ContainmentConstraint(
            name="plus-equals", pattern="cond-cumulative-add", node=3,
            expr=ExprTemplate(r"\+=", frozenset()),
            supporting=(),
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.CORRECT


class TestNotExpectedPropagation:
    def test_missing_pattern_propagates(self, fig2b):
        graph, embeddings, statuses = fig2b
        embeddings = dict(embeddings)
        embeddings["cond-cumulative-add"] = []
        statuses = dict(statuses)
        statuses["cond-cumulative-add"] = FeedbackStatus.NOT_EXPECTED
        constraint = EqualityConstraint(
            name="odd-sum", pattern_i="seq-odd-access", node_i=5,
            pattern_j="cond-cumulative-add", node_j=3,
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.NOT_EXPECTED
        assert "could not be checked" in comment.message

    def test_not_expected_status_propagates_even_with_embeddings(self, fig2b):
        graph, embeddings, statuses = fig2b
        statuses = dict(statuses)
        statuses["seq-odd-access"] = FeedbackStatus.NOT_EXPECTED
        constraint = EqualityConstraint(
            name="odd-sum", pattern_i="seq-odd-access", node_i=5,
            pattern_j="cond-cumulative-add", node_j=3,
        )
        comment = check_constraint(constraint, graph, embeddings, statuses)
        assert comment.status is FeedbackStatus.NOT_EXPECTED
