"""Seeded slow-variant models for the performance analyzer."""

from __future__ import annotations

import pytest

from repro.analysis.perf.model import PERF_PATTERNS
from repro.kb import all_assignment_names, get_assignment
from repro.synth.perf_models import (
    PERF_SPACES,
    SLOW_LABEL_PREFIX,
    perf_space,
    sample_fast_cohort,
    sample_slow_cohort,
)
from repro.testing.functional import run_tests

SUPPORTED = sorted(PERF_SPACES)


class TestSpaces:
    def test_keys_are_real_assignments(self):
        known = set(all_assignment_names())
        assert set(PERF_SPACES) <= known

    @pytest.mark.parametrize("name", SUPPORTED)
    def test_slow_labels_reference_real_patterns(self, name):
        space = perf_space(name)
        pattern_ids = {pattern.id for pattern in PERF_PATTERNS}
        slow_labels = [
            option.label
            for point in space.choice_points
            for option in point.options
            if option.label.startswith(SLOW_LABEL_PREFIX)
        ]
        assert slow_labels  # every supported space seeds at least one
        for label in slow_labels:
            assert label[len(SLOW_LABEL_PREFIX):] in pattern_ids

    def test_unknown_assignment_raises(self):
        with pytest.raises(KeyError):
            perf_space("no-such-assignment")


class TestCohorts:
    @pytest.mark.parametrize("name", SUPPORTED)
    def test_same_seed_reproduces_the_cohort(self, name):
        first = sample_slow_cohort(name, count=6, seed=7)
        second = sample_slow_cohort(name, count=6, seed=7)
        assert [s.index for s in first] == [s.index for s in second]

    @pytest.mark.parametrize("name", SUPPORTED)
    def test_slow_and_fast_pools_are_disjoint(self, name):
        slow = {s.index for s in sample_slow_cohort(name, count=16)}
        fast = {s.index for s in sample_fast_cohort(name, count=16)}
        assert slow and fast
        assert slow.isdisjoint(fast)

    @pytest.mark.parametrize("name", SUPPORTED)
    def test_slow_variants_pass_the_functional_tests(self, name):
        """The premise of the whole subsystem: the slow cohort is
        functionally correct, so only the perf analyzer can flag it."""
        assignment = get_assignment(name)
        from repro.java import parse_submission

        for submission in sample_slow_cohort(name, count=4, seed=1):
            report = run_tests(
                parse_submission(submission.source),
                assignment.tests,
            )
            assert report.passed, submission.source
