"""Unit and property tests for submission spaces (error models)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.kb import all_assignment_names, get_assignment, table1_expectations
from repro.synth import ChoicePoint, SubmissionSpace, correct, wrong
from repro.synth.rules import binary, variants


def toy_space():
    template = "a={{a}} b={{b}} c={{c}}"
    return SubmissionSpace("toy", template, [
        ChoicePoint("a", (correct("0"), wrong("1"))),
        ChoicePoint("b", (correct("x"), wrong("y"), wrong("z"))),
        ChoicePoint("c", (correct("p"), wrong("q"))),
    ])


class TestChoicePoints:
    def test_requires_two_options(self):
        with pytest.raises(ReproError, match="two options"):
            ChoicePoint("x", (correct("a"),))

    def test_first_option_must_be_correct(self):
        with pytest.raises(ReproError, match="first option"):
            ChoicePoint("x", (wrong("a"), correct("b")))

    def test_binary_helper(self):
        point = binary("x", "good", "bad")
        assert point.arity == 2
        assert point.options[0].correct and not point.options[1].correct

    def test_variants_helper(self):
        point = variants("x", "a", "b", "c")
        assert all(o.correct for o in point.options)


class TestSubmissionSpace:
    def test_size_is_product_of_arities(self):
        assert toy_space().size == 2 * 3 * 2

    def test_template_slot_mismatch_rejected(self):
        with pytest.raises(ReproError, match="slots"):
            SubmissionSpace("bad", "only {{a}}", [
                ChoicePoint("a", (correct("0"), wrong("1"))),
                ChoicePoint("b", (correct("0"), wrong("1"))),
            ])

    def test_undeclared_slot_rejected(self):
        with pytest.raises(ReproError, match="slots"):
            SubmissionSpace("bad", "{{a}} {{mystery}}", [
                ChoicePoint("a", (correct("0"), wrong("1"))),
            ])

    def test_repeated_slot_substitutes_everywhere(self):
        space = SubmissionSpace("rep", "{{v}} + {{v}}", [
            ChoicePoint("v", (correct("x"), wrong("y"))),
        ])
        assert space.submission(1).source == "y + y"

    def test_reference_is_index_zero(self):
        assert toy_space().reference.source == "a=0 b=x c=p"

    def test_materialization(self):
        space = toy_space()
        last = space.submission(space.size - 1)
        assert last.source == "a=1 b=z c=q"
        assert not last.all_options_correct

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            toy_space().submission(999)
        with pytest.raises(IndexError):
            toy_space().submission(-1)

    def test_correct_count(self):
        assert toy_space().correct_count() == 1

    def test_correct_indices_yield_correct_submissions(self):
        space = SubmissionSpace("v", "{{a}} {{b}}", [
            ChoicePoint("a", (correct("0"), correct("00"), wrong("1"))),
            ChoicePoint("b", (correct("x"), wrong("y"))),
        ])
        indices = list(space.correct_indices())
        assert len(indices) == space.correct_count() == 2
        assert all(space.submission(i).all_options_correct for i in indices)

    def test_correct_indices_limit(self):
        space = toy_space()
        assert len(list(space.correct_indices(limit=1))) == 1

    def test_average_loc(self):
        space = SubmissionSpace("l", "{{a}}", [
            ChoicePoint("a", (correct("x = 1;\ny = 2;"), wrong("x = 1;"))),
        ])
        assert space.average_loc() == 1.5


class TestEncoding:
    @given(st.integers(min_value=0, max_value=11))
    @settings(max_examples=12, deadline=None)
    def test_decode_encode_round_trip(self, index):
        space = toy_space()
        assert space.encode(space.decode(index)) == index

    def test_encode_validates_lengths(self):
        with pytest.raises(ReproError, match="expected"):
            toy_space().encode([0])

    def test_encode_validates_ranges(self):
        with pytest.raises(ReproError, match="out of range"):
            toy_space().encode([0, 9, 0])

    def test_all_indices_distinct_sources(self):
        space = toy_space()
        sources = {space.submission(i).source for i in range(space.size)}
        assert len(sources) == space.size


class TestSampling:
    def test_sample_is_deterministic(self):
        from repro.synth import sample_indices
        space = get_assignment("assignment1").space()
        assert sample_indices(space, 50, seed=7) == \
            sample_indices(space, 50, seed=7)

    def test_sample_includes_reference(self):
        from repro.synth import sample_indices
        space = get_assignment("assignment1").space()
        assert 0 in sample_indices(space, 50, seed=7)

    def test_sample_larger_than_space_returns_all(self):
        from repro.synth import sample_indices
        space = toy_space()
        assert sample_indices(space, 1000) == list(range(space.size))

    def test_sample_submissions_materializes(self):
        from repro.synth import sample_submissions
        space = toy_space()
        subs = sample_submissions(space, 3, seed=1)
        assert len(subs) == 3 and all(s.source for s in subs)


class TestPaperSpaces:
    """Every assignment's space parses and behaves across a sample."""

    @pytest.mark.parametrize("name", all_assignment_names())
    def test_sampled_submissions_all_parse(self, name):
        from repro.java import parse_submission
        from repro.synth import sample_submissions
        space = get_assignment(name).space()
        for submission in sample_submissions(space, 25, seed=3):
            parse_submission(submission.source)  # must not raise

    @pytest.mark.parametrize("name", all_assignment_names())
    def test_space_size_matches_paper(self, name):
        assert get_assignment(name).space().size == \
            table1_expectations(name)["S"]
