"""Property-based tests: interpreter arithmetic matches Java semantics."""

from hypothesis import assume, given, settings, strategies as st

from repro.interp import run_method
from repro.interp.values import java_div, java_rem, wrap_int
from repro.java import parse_submission

_INTS = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_SMALL = st.integers(min_value=-10_000, max_value=10_000)


def evaluate(expr, **params):
    names = ", ".join(f"int {name}" for name in params)
    source = f"int f({names}) {{ return {expr}; }}"
    return run_method(
        parse_submission(source), "f", list(params.values())
    ).return_value


class TestIntegerSemantics:
    @given(_INTS, _INTS)
    @settings(max_examples=200, deadline=None)
    def test_addition_wraps_like_java(self, a, b):
        assert evaluate("a + b", a=a, b=b) == wrap_int(a + b)

    @given(_INTS, _INTS)
    @settings(max_examples=200, deadline=None)
    def test_multiplication_wraps_like_java(self, a, b):
        assert evaluate("a * b", a=a, b=b) == wrap_int(a * b)

    @given(_INTS, _INTS)
    @settings(max_examples=200, deadline=None)
    def test_division_truncates_toward_zero(self, a, b):
        assume(b != 0)
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert evaluate("a / b", a=a, b=b) == wrap_int(expected)

    @given(_INTS, _INTS)
    @settings(max_examples=200, deadline=None)
    def test_div_rem_identity(self, a, b):
        assume(b != 0)
        quotient = java_div(a, b)
        remainder = java_rem(a, b)
        assert wrap_int(quotient * b + remainder) == wrap_int(a)

    @given(_SMALL)
    @settings(max_examples=100, deadline=None)
    def test_unary_minus(self, a):
        assert evaluate("-a", a=a) == -a

    @given(_INTS)
    @settings(max_examples=100, deadline=None)
    def test_bitwise_not(self, a):
        assert evaluate("~a", a=a) == wrap_int(~a)


class TestProgramProperties:
    @given(st.integers(min_value=0, max_value=10 ** 8))
    @settings(max_examples=100, deadline=None)
    def test_reverse_of_reverse_strips_trailing_zeros(self, n):
        source = """
        int rev(int n) {
            int r = 0;
            while (n != 0) {
                r = r * 10 + n % 10;
                n /= 10;
            }
            return r;
        }
        int f(int n) { return rev(rev(n)); }
        """
        result = run_method(parse_submission(source), "f", [n]).return_value
        expected = int(str(n).rstrip("0")) if n else 0
        assert result == expected

    @given(st.lists(_SMALL, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_array_sum_matches_python(self, values):
        from repro.interp import JavaArray
        source = """
        int f(int[] a) {
            int s = 0;
            for (int i = 0; i < a.length; i++)
                s += a[i];
            return s;
        }
        """
        result = run_method(
            parse_submission(source), "f", [JavaArray("int", list(values))]
        ).return_value
        assert result == wrap_int(sum(values))

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_factorial_matches_math(self, n):
        import math
        source = """
        int f(int m) {
            int r = 1;
            for (int i = 1; i <= m; i++)
                r *= i;
            return r;
        }
        """
        result = run_method(parse_submission(source), "f", [n]).return_value
        assert result == math.factorial(n)

    @given(st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                               exclude_characters='"\\'),
        max_size=30,
    ))
    @settings(max_examples=100, deadline=None)
    def test_string_literal_round_trip_through_println(self, text):
        source = f'void f() {{ System.out.println("{_escape(text)}"); }}'
        result = run_method(parse_submission(source), "f", [])
        assert result.stdout == text + "\n"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
