"""Unit tests for the closure compiler's cache and cost accounting."""

from __future__ import annotations

from repro.instrumentation import collecting
from repro.interp import (
    Interpreter,
    Tracer,
    clear_program_cache,
    compile_unit,
    program_cache_stats,
    run_method,
)
from repro.interp.compiler import _ProgramCache
from repro.java import parse_submission
from repro.testing.functional import run_tests_on_source
from repro.kb import get_assignment

SOURCE = """
int sumTo(int n) {
    int total = 0;
    for (int i = 1; i <= n; i++) {
        total = total + i;
    }
    return total;
}
"""


class TestProgramCache:
    def test_source_keyed_reuse_across_parses(self):
        clear_program_cache()
        first = compile_unit(parse_submission(SOURCE), cache_key=SOURCE)
        second = compile_unit(parse_submission(SOURCE), cache_key=SOURCE)
        assert first is second
        stats = program_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["size"] == 1

    def test_unit_memo_without_key(self):
        clear_program_cache()
        unit = parse_submission(SOURCE)
        first = compile_unit(unit)
        second = compile_unit(unit)
        assert first is second
        assert program_cache_stats() == {
            "size": 0, "capacity": 256, "hits": 1, "misses": 1,
        }

    def test_counters_flow_through_ambient_collector(self):
        clear_program_cache()
        with collecting() as phases:
            run_method(parse_submission(SOURCE), "sumTo", [3],
                       cache_key=SOURCE)
            run_method(parse_submission(SOURCE), "sumTo", [4],
                       cache_key=SOURCE)
        assert phases.counters["interp.compile_misses"] == 1
        assert phases.counters["interp.compile_hits"] == 1

    def test_fifo_eviction_is_bounded(self):
        cache = _ProgramCache(capacity=2)
        cache.put("a", object())
        cache.put("b", object())
        cache.put("c", object())
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("b") is not None
        assert cache.get("c") is not None
        assert cache.stats()["size"] == 2


class TestCostCounters:
    def test_loop_iterations_and_calls(self):
        result = run_method(parse_submission(SOURCE), "sumTo", [5])
        cost = result.cost
        assert cost is not None
        assert cost.steps == result.steps
        assert cost.calls == 1
        assert cost.loop_iterations == {"sumTo:for@0": 5}

    def test_every_loop_appears_even_unexecuted(self):
        source = """
        int f(int n) {
            int total = 0;
            while (n > 100) { n = n - 1; total = total + 1; }
            for (int i = 0; i < n; i++) { total = total + i; }
            return total;
        }
        """
        cost = run_method(parse_submission(source), "f", [3]).cost
        assert cost.loop_iterations == {"f:while@0": 0, "f:for@1": 3}

    def test_allocations_count_new_expressions(self):
        source = """
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i++) {
                int[] xs = new int[4];
                total = total + xs.length;
            }
            return total;
        }
        """
        cost = run_method(parse_submission(source), "f", [3]).cost
        assert cost.allocations == 3

    def test_nested_call_accounting(self):
        source = """
        int g(int n) { return n * 2; }
        int f(int n) { return g(n) + g(n + 1); }
        """
        cost = run_method(parse_submission(source), "f", [1]).cost
        assert cost.calls == 3  # entry + two g() invocations

    def test_cost_reaches_functional_test_results(self):
        assignment = get_assignment("assignment1")
        report = run_tests_on_source(
            assignment.reference_solutions[0], assignment.tests
        )
        assert report.passed
        for result in report.results:
            assert result.cost is not None
            assert result.cost.steps > 0
            assert result.cost.to_dict()["steps"] == result.cost.steps


class TestNullTracerFastPath:
    def test_untraced_run_records_nothing(self):
        result = run_method(parse_submission(SOURCE), "sumTo", [5])
        assert result.tracer is None

    def test_traced_and_untraced_agree_on_outcome(self):
        unit = parse_submission(SOURCE)
        plain = Interpreter(unit).run("sumTo", [6])
        tracer = Tracer()
        traced = Interpreter(unit, tracer=tracer).run("sumTo", [6])
        assert plain.return_value == traced.return_value == 21
        assert plain.steps == traced.steps
        assert tracer.variable_trace("total")[-1] == 21
