"""Unit tests for Java value semantics."""

import pytest

from repro.errors import JavaRuntimeError
from repro.interp.values import (
    INT_MAX,
    INT_MIN,
    JavaArray,
    JavaChar,
    java_div,
    java_rem,
    java_str,
    numeric_value,
    wrap_int,
)


class TestWrapInt:
    def test_identity_in_range(self):
        assert wrap_int(42) == 42
        assert wrap_int(-42) == -42

    def test_overflow_wraps(self):
        assert wrap_int(INT_MAX + 1) == INT_MIN

    def test_underflow_wraps(self):
        assert wrap_int(INT_MIN - 1) == INT_MAX

    def test_extremes_stable(self):
        assert wrap_int(INT_MAX) == INT_MAX
        assert wrap_int(INT_MIN) == INT_MIN

    def test_large_multiple_wrap(self):
        assert wrap_int(2 ** 32) == 0
        assert wrap_int(2 ** 33 + 5) == 5


class TestDivision:
    def test_positive_division(self):
        assert java_div(7, 2) == 3

    def test_negative_dividend_truncates_toward_zero(self):
        # Python's -7 // 2 == -4; Java gives -3
        assert java_div(-7, 2) == -3

    def test_negative_divisor(self):
        assert java_div(7, -2) == -3

    def test_both_negative(self):
        assert java_div(-7, -2) == 3

    def test_division_by_zero_raises(self):
        with pytest.raises(JavaRuntimeError, match="by zero"):
            java_div(1, 0)

    def test_remainder_takes_dividend_sign(self):
        assert java_rem(-7, 2) == -1
        assert java_rem(7, -2) == 1
        assert java_rem(-7, -2) == -1

    def test_remainder_by_zero_raises(self):
        with pytest.raises(JavaRuntimeError, match="by zero"):
            java_rem(1, 0)

    def test_digit_reversal_identity(self):
        # the semantics the palindrome assignments depend on
        n = -73
        digit = java_rem(n, 10)
        rest = java_div(n, 10)
        assert (digit, rest) == (-3, -7)


class TestJavaArray:
    def test_of_length_defaults(self):
        assert JavaArray.of_length("int", 3).elements == [0, 0, 0]
        assert JavaArray.of_length("boolean", 2).elements == [False, False]
        assert JavaArray.of_length("double", 1).elements == [0.0]
        assert JavaArray.of_length("String", 1).elements == [None]

    def test_char_array_defaults(self):
        arr = JavaArray.of_length("char", 2)
        assert all(isinstance(c, JavaChar) for c in arr.elements)

    def test_negative_length_raises(self):
        with pytest.raises(JavaRuntimeError, match="NegativeArraySize"):
            JavaArray.of_length("int", -1)

    def test_get_set(self):
        arr = JavaArray("int", [1, 2, 3])
        arr.set(1, 9)
        assert arr.get(1) == 9

    def test_out_of_bounds_raises(self):
        arr = JavaArray("int", [1])
        with pytest.raises(JavaRuntimeError, match="IndexOutOfBounds"):
            arr.get(1)
        with pytest.raises(JavaRuntimeError, match="IndexOutOfBounds"):
            arr.get(-1)
        with pytest.raises(JavaRuntimeError, match="IndexOutOfBounds"):
            arr.set(5, 0)

    def test_length(self):
        assert JavaArray("int", [1, 2]).length == 2

    def test_reference_equality(self):
        a = JavaArray("int", [1])
        b = JavaArray("int", [1])
        assert a == a
        assert a != b


class TestJavaChar:
    def test_code_point(self):
        assert JavaChar("0").code == 48

    def test_equality_with_char_and_int(self):
        assert JavaChar("a") == JavaChar("a")
        assert JavaChar("a") == 97
        assert JavaChar("a") != JavaChar("b")

    def test_numeric_value_promotes(self):
        assert numeric_value(JavaChar("0")) == 48


class TestJavaStr:
    @pytest.mark.parametrize("value,expected", [
        (None, "null"),
        (True, "true"),
        (False, "false"),
        (42, "42"),
        (1.0, "1.0"),
        (2.5, "2.5"),
        (float("nan"), "NaN"),
        (float("inf"), "Infinity"),
        (float("-inf"), "-Infinity"),
        ("text", "text"),
    ])
    def test_formatting(self, value, expected):
        assert java_str(value) == expected

    def test_char_formats_as_glyph(self):
        assert java_str(JavaChar("x")) == "x"

    def test_array_formats_as_reference(self):
        text = java_str(JavaArray("int", [1]))
        assert text.startswith("[int@")


class TestNumericValue:
    def test_bool_is_not_numeric(self):
        assert numeric_value(True) is None

    def test_string_is_not_numeric(self):
        assert numeric_value("12") is None

    def test_int_and_float(self):
        assert numeric_value(3) == 3
        assert numeric_value(2.5) == 2.5
