"""Differential testing: compiled engine vs. the vendored tree-walker.

The closure-compiled runtime (:mod:`repro.interp.compiler`) must be
byte-identical in behavior to the original tree-walking interpreter,
which is frozen verbatim as ``benchmarks/_interp_reference.py``.  These
tests execute synth-generated *correct and seeded-defect* variants of
all twelve assignments through both engines and require identical:

* outcomes (return value, stdout, step count) on success,
* exception type and message on failure,
* partial stdout produced before a failure,
* full trace-event streams (variable assignments and output, with the
  method attribution quirks of the original preserved),
* budget-exhaustion behavior at exact step boundaries (the compiled
  engine bulk-charges fused statement chains, so the boundary is where
  a charging bug would show).
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.errors import BudgetExceededError, JavaRuntimeError
from repro.interp import Interpreter, Tracer, clear_program_cache
from repro.java import parse_submission
from repro.kb import all_assignment_names, get_assignment
from repro.synth.generator import sample_submissions
from repro.testing.functional import _materialize_argument

_REPO = pathlib.Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "_interp_reference", _REPO / "benchmarks" / "_interp_reference.py"
)
assert _spec is not None and _spec.loader is not None
reference = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = reference
_spec.loader.exec_module(reference)

#: Step budget for differential runs.  Small enough that seeded-defect
#: variants which loop forever stay cheap in the (slow) reference
#: engine, large enough that every correct variant finishes.
_BUDGET = 20_000

#: Synthetic variants sampled per assignment (index 0 — the reference
#: solution — is always included; the rest mix correct and defective
#: options).
_VARIANTS = 12


def _run_one(interpreter, method, arguments):
    """Normalized observation of one execution on either engine."""
    tracer = interpreter._tracer  # same attribute name on both engines
    try:
        result = interpreter.run(method, [
            _materialize_argument(a) for a in arguments
        ])
    except Exception as error:  # noqa: BLE001 - every divergence matters
        return {
            "outcome": "error",
            "type": type(error).__name__,
            "message": str(error),
            "partial_stdout": interpreter.stdout,
            "events": _canonical_events(tracer.events),
        }
    return {
        "outcome": "ok",
        "stdout": result.stdout,
        "return": _canonical(result.return_value),
        "steps": result.steps,
        "events": _canonical_events(tracer.events),
    }


def _canonical_events(events):
    """Event streams with runtime objects compared by type, not identity.

    Both engines allocate their own ``ScannerObject``/``StringBuilder``
    instances, so the snapshots in otherwise-identical traces differ by
    ``id()`` alone; everything else (primitives, strings, array tuples)
    compares by value.
    """
    return [
        (event.name, _canonical(event.value), event.method)
        for event in events
    ]


def _canonical(value):
    """Return values compared structurally (arrays by contents)."""
    from repro.interp.values import JavaArray, JavaChar

    if isinstance(value, JavaArray):
        return ("array", value.element_type,
                tuple(_canonical(v) for v in value.elements))
    if isinstance(value, JavaChar):
        return ("char", value.char)
    if isinstance(value, tuple):
        return tuple(_canonical(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return ("object", type(value).__name__)


def _compiled(source, test, budget=_BUDGET):
    return Interpreter(
        parse_submission(source),
        files=test.files_dict(),
        stdin=test.stdin,
        step_budget=budget,
        tracer=Tracer(),
    )


def _reference(source, test, budget=_BUDGET):
    return reference.Interpreter(
        parse_submission(source),
        files=test.files_dict(),
        stdin=test.stdin,
        step_budget=budget,
        tracer=reference.Tracer() if hasattr(reference, "Tracer") else None,
    )


def _assert_identical(source, test, budget=_BUDGET, context=""):
    got = _run_one(_compiled(source, test, budget), test.method,
                   test.arguments)
    want = _run_one(_reference(source, test, budget), test.method,
                    test.arguments)
    assert got == want, (
        f"divergence {context}\n--- compiled ---\n{got}\n"
        f"--- reference ---\n{want}\n--- source ---\n{source}"
    )
    return want


@pytest.mark.parametrize("name", all_assignment_names())
def test_differential_fuzz(name):
    """Correct + seeded-defect variants agree on every functional test."""
    clear_program_cache()
    assignment = get_assignment(name)
    space = assignment.space()
    saw_defect = False
    for submission in sample_submissions(space, _VARIANTS, seed=1009):
        saw_defect = saw_defect or not submission.all_options_correct
        budget_exhausted = False
        for test in assignment.tests:
            observed = _assert_identical(
                submission.source, test,
                context=f"{name}#{submission.index} on {test.method}"
                        f"({test.arguments!r})",
            )
            # mirror run_tests: once a variant proves non-terminating,
            # skip its remaining inputs (same verdict, pure cost)
            if observed["outcome"] == "error" and \
                    observed["type"] == "BudgetExceededError":
                budget_exhausted = True
                break
        if budget_exhausted:
            continue
    assert saw_defect, "sample contained no seeded-defect variant"


def test_budget_edge_exact_boundary():
    """Fused bulk-charging must raise at exactly the reference's step."""
    source = """
    int f(int n) {
        int total = 0;
        int extra = 1;
        for (int i = 0; i < n; i++) {
            int a = i * 2;
            int b = a + extra;
            total = total + b;
        }
        return total + extra;
    }
    """

    class _Test:
        stdin = ""
        method = "f"
        arguments = [7]

        @staticmethod
        def files_dict():
            return {}

    test = _Test()
    exact = _run_one(_compiled(source, test, 10_000), "f", [7])["steps"]
    for budget in (exact - 2, exact - 1, exact, exact + 1):
        _assert_identical(source, test, budget=budget,
                          context=f"budget={budget} (exact={exact})")


def test_stack_overflow_boundary():
    """Java-level depth accounting: the cap raises a JavaRuntimeError."""
    source = "int f(int n) { return f(n + 1); }"
    unit = parse_submission(source)
    interpreter = Interpreter(unit, step_budget=10_000_000)
    with pytest.raises(JavaRuntimeError) as caught:
        interpreter.run("f", [0])
    assert isinstance(caught.value, BudgetExceededError)
    assert str(caught.value) == (
        "StackOverflowError: call depth exceeded invoking f"
    )

    class _Test:
        stdin = ""
        method = "f"
        arguments = [0]

        @staticmethod
        def files_dict():
            return {}

    _assert_identical(source, _Test(), budget=10_000_000,
                      context="stack overflow")


def test_depth_boundary_is_exact():
    """100 Java frames complete; the 101st overflows — in both engines."""
    source = """
    int f(int n) { if (n <= 1) { return 1; } return n + f(n - 1); }
    """

    class _Test:
        stdin = ""
        method = "f"
        arguments = [100]

        @staticmethod
        def files_dict():
            return {}

    # f(100) nests exactly 100 Java frames: the cap allows it
    observed = _assert_identical(source, _Test(), budget=10_000,
                                 context="depth 100")
    assert observed["outcome"] == "ok"

    class _Deep(_Test):
        arguments = [101]

    observed = _assert_identical(source, _Deep(), budget=10_000,
                                 context="depth 101")
    assert observed["outcome"] == "error"
    assert observed["message"].startswith("StackOverflowError")
