"""Unit tests for execution tracing."""

from repro.interp import run_method
from repro.java import parse_submission


def trace(source, method="f", args=()):
    result = run_method(parse_submission(source), method, list(args),
                        trace=True)
    return result.tracer


class TestTracer:
    def test_assignments_recorded_in_order(self):
        tracer = trace("void f() { int x = 1; x = 2; x = 3; }")
        assert tracer.variable_trace("x") == [1, 2, 3]

    def test_parameters_are_traced(self):
        tracer = trace("void f(int n) { }", args=[7])
        assert tracer.variable_trace("n") == [7]

    def test_output_traced_as_out_variable(self):
        tracer = trace('void f() { System.out.println("hi"); }')
        assert tracer.variable_trace("out") == ["hi\n"]

    def test_loop_produces_value_sequence(self):
        tracer = trace(
            "void f() { int s = 0; for (int i = 0; i < 3; i++) s += i; }"
        )
        assert tracer.variable_trace("s") == [0, 0, 1, 3]
        assert tracer.variable_trace("i") == [0, 1, 2, 3]

    def test_array_snapshots_are_immutable(self):
        tracer = trace(
            "void f() { int[] a = new int[2]; a[0] = 1; a[1] = 2; }"
        )
        snapshots = tracer.variable_trace("a")
        assert snapshots == [(0, 0), (1, 0), (1, 2)]

    def test_variables_in_first_appearance_order(self):
        tracer = trace("void f() { int b = 1; int a = 2; b = 3; }")
        assert tracer.variables() == ["b", "a"]

    def test_as_mapping(self):
        tracer = trace("void f() { int x = 1; int y = 2; }")
        assert tracer.as_mapping() == {"x": [1], "y": [2]}

    def test_method_attribution(self):
        tracer = trace(
            "int g() { int z = 5; return z; } void f() { int x = g(); }"
        )
        methods = {e.method for e in tracer.events}
        assert methods == {"f", "g"}
