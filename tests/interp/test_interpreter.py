"""Unit tests for the tree-walking interpreter."""

import pytest

from repro.errors import BudgetExceededError, JavaRuntimeError
from repro.interp import JavaArray, run_method
from repro.java import parse_submission


def run(source, method="f", args=(), **kwargs):
    return run_method(parse_submission(source), method, list(args), **kwargs)


def value(source, method="f", args=(), **kwargs):
    return run(source, method, args, **kwargs).return_value


class TestArithmetic:
    def test_int_arithmetic(self):
        assert value("int f() { return 2 + 3 * 4; }") == 14

    def test_int_division_truncates(self):
        assert value("int f() { return -7 / 2; }") == -3

    def test_int_remainder_sign(self):
        assert value("int f() { return -7 % 2; }") == -1

    def test_int_overflow_wraps(self):
        assert value(
            "int f() { int x = 2147483647; return x + 1; }"
        ) == -2147483648

    def test_double_arithmetic(self):
        assert value("double f() { return 1.0 / 4.0; }") == 0.25

    def test_mixed_promotes_to_double(self):
        assert value("double f() { return 1 / 4.0; }") == 0.25

    def test_double_division_by_zero_is_infinity(self):
        assert value("double f() { return 1.0 / 0.0; }") == float("inf")

    def test_int_division_by_zero_raises(self):
        with pytest.raises(JavaRuntimeError, match="by zero"):
            run("int f() { return 1 / 0; }")

    def test_unary_minus_and_not(self):
        assert value("int f() { int x = 5; return -x; }") == -5
        assert value("boolean f() { return !false; }") is True

    def test_bitwise_ops(self):
        assert value("int f() { return 6 & 3; }") == 2
        assert value("int f() { return 6 | 3; }") == 7
        assert value("int f() { return 6 ^ 3; }") == 5
        assert value("int f() { return ~0; }") == -1

    def test_shifts(self):
        assert value("int f() { return 1 << 4; }") == 16
        assert value("int f() { return -8 >> 1; }") == -4
        assert value("int f() { return -8 >>> 1; }") == 2147483644

    def test_compound_assignment(self):
        assert value("int f() { int x = 10; x += 5; x *= 2; return x; }") == 30

    def test_increment_decrement(self):
        assert value("int f() { int i = 0; i++; ++i; i--; return i; }") == 1

    def test_postfix_vs_prefix_value(self):
        assert value("int f() { int i = 5; return i++; }") == 5
        assert value("int f() { int i = 5; return ++i; }") == 6

    def test_ternary(self):
        assert value("int f(int x) { return x > 0 ? 1 : -1; }", args=[5]) == 1
        assert value("int f(int x) { return x > 0 ? 1 : -1; }", args=[-5]) == -1

    def test_cast_truncates(self):
        assert value("int f() { return (int) 3.9; }") == 3
        assert value("int f() { return (int) -3.9; }") == -3


class TestStrings:
    def test_concatenation(self):
        assert value('String f() { return "a" + "b"; }') == "ab"

    def test_concat_with_int(self):
        assert value('String f() { return "n=" + 5; }') == "n=5"

    def test_concat_with_double(self):
        assert value('String f() { return "" + 1.0; }') == "1.0"

    def test_concat_with_boolean(self):
        assert value('String f() { return "" + true; }') == "true"

    def test_string_equality_by_value(self):
        assert value('boolean f() { return "ab" == "ab"; }') is True

    def test_char_arithmetic(self):
        assert value("int f() { return '9' - '0'; }") == 9


class TestControlFlow:
    def test_if_else(self):
        source = "int f(int x) { if (x > 0) return 1; else return 2; }"
        assert value(source, args=[3]) == 1
        assert value(source, args=[-3]) == 2

    def test_while_loop(self):
        assert value(
            "int f() { int s = 0; int i = 0; "
            "while (i < 5) { s += i; i++; } return s; }"
        ) == 10

    def test_for_loop(self):
        assert value(
            "int f() { int s = 0; for (int i = 1; i <= 4; i++) s += i; "
            "return s; }"
        ) == 10

    def test_do_while_runs_at_least_once(self):
        assert value(
            "int f() { int i = 10; do { i++; } while (i < 5); return i; }"
        ) == 11

    def test_break(self):
        assert value(
            "int f() { int i = 0; while (true) { if (i == 3) break; i++; } "
            "return i; }"
        ) == 3

    def test_continue(self):
        assert value(
            "int f() { int s = 0; for (int i = 0; i < 5; i++) { "
            "if (i % 2 == 0) continue; s += i; } return s; }"
        ) == 4

    def test_continue_in_for_still_updates(self):
        # continue must not skip the for-update (would loop forever)
        assert value(
            "int f() { for (int i = 0; i < 5; i++) { continue; } return 7; }",
            step_budget=5_000,
        ) == 7

    def test_nested_loops_break_inner_only(self):
        assert value(
            "int f() { int c = 0; for (int i = 0; i < 3; i++) { "
            "for (int j = 0; j < 3; j++) { if (j == 1) break; c++; } } "
            "return c; }"
        ) == 3

    def test_switch_with_fallthrough(self):
        source = """
        int f(int x) {
            int r = 0;
            switch (x) {
                case 1: r += 1;
                case 2: r += 2; break;
                default: r = 99;
            }
            return r;
        }
        """
        assert value(source, args=[1]) == 3  # falls through 1 -> 2
        assert value(source, args=[2]) == 2
        assert value(source, args=[7]) == 99

    def test_for_each_over_array(self):
        assert value(
            "int f(int[] a) { int s = 0; for (int v : a) s += v; return s; }",
            args=[JavaArray("int", [1, 2, 3])],
        ) == 6

    def test_condition_must_be_boolean(self):
        with pytest.raises(JavaRuntimeError, match="boolean"):
            run("int f() { if (1) return 1; return 0; }")

    def test_block_scoping(self):
        # a variable declared in an inner block does not leak
        with pytest.raises(JavaRuntimeError, match="undefined"):
            run("int f() { { int x = 1; } return x; }")


class TestArrays:
    def test_creation_and_access(self):
        assert value(
            "int f() { int[] a = new int[3]; a[1] = 7; return a[1]; }"
        ) == 7

    def test_zero_initialized(self):
        assert value("int f() { int[] a = new int[2]; return a[0] + a[1]; }") == 0

    def test_length_field(self):
        assert value("int f(int[] a) { return a.length; }",
                     args=[JavaArray("int", [1, 2, 3])]) == 3

    def test_initializer(self):
        assert value(
            "int f() { int[] a = {4, 5, 6}; return a[2]; }"
        ) == 6

    def test_out_of_bounds_raises(self):
        with pytest.raises(JavaRuntimeError, match="IndexOutOfBounds"):
            run("int f(int[] a) { return a[5]; }",
                args=[JavaArray("int", [1])])

    def test_two_dimensional(self):
        assert value(
            "int f() { int[][] m = new int[2][3]; m[1][2] = 9; "
            "return m[1][2]; }"
        ) == 9

    def test_array_element_compound_assign(self):
        assert value(
            "int f() { int[] a = {1, 2}; a[0] += 10; return a[0]; }"
        ) == 11


class TestMethods:
    def test_call_between_methods(self):
        assert value(
            "int g(int x) { return x * 2; } int f() { return g(21); }"
        ) == 42

    def test_recursion(self):
        assert value(
            "int f(int n) { if (n <= 1) return 1; return n * f(n - 1); }",
            args=[5],
        ) == 120

    def test_mutual_recursion(self):
        source = """
        boolean even(int n) { if (n == 0) return true; return odd(n - 1); }
        boolean odd(int n) { if (n == 0) return false; return even(n - 1); }
        """
        assert run_method(parse_submission(source), "even", [10]).return_value

    def test_missing_method_raises(self):
        with pytest.raises(JavaRuntimeError, match="no method"):
            run("int f() { return g(); }")

    def test_unbounded_recursion_raises(self):
        with pytest.raises(BudgetExceededError, match="StackOverflow"):
            run("int f(int n) { return f(n + 1); }", args=[0])

    def test_void_method_returns_none(self):
        assert value("void f() { int x = 1; }") is None

    def test_arguments_are_local(self):
        source = """
        void g(int x) { x = 99; }
        int f() { int x = 1; g(x); return x; }
        """
        assert value(source) == 1

    def test_arrays_pass_by_reference(self):
        source = """
        void g(int[] a) { a[0] = 99; }
        int f() { int[] a = {1}; g(a); return a[0]; }
        """
        assert value(source) == 99


class TestOutput:
    def test_println(self):
        assert run('void f() { System.out.println("hi"); }').stdout == "hi\n"

    def test_print_no_newline(self):
        assert run('void f() { System.out.print(1); }').stdout == "1"

    def test_println_empty(self):
        assert run("void f() { System.out.println(); }").stdout == "\n"

    def test_printf(self):
        assert run(
            'void f() { System.out.printf("%d-%s", 1, "a"); }'
        ).stdout == "1-a"

    def test_print_double(self):
        assert run("void f() { System.out.println(1.0); }").stdout == "1.0\n"

    def test_interleaved_output(self):
        source = """
        void f() {
            for (int i = 0; i < 3; i++)
                System.out.print(i);
        }
        """
        assert run(source).stdout == "012"


class TestBudget:
    def test_infinite_while_raises(self):
        with pytest.raises(BudgetExceededError):
            run("void f() { while (true) { int x = 1; } }",
                step_budget=5_000)

    def test_infinite_for_raises(self):
        with pytest.raises(BudgetExceededError):
            run("void f() { for (;;) { } }", step_budget=5_000)

    def test_budget_error_is_runtime_error(self):
        # the functional harness catches one exception type for both
        assert issubclass(BudgetExceededError, JavaRuntimeError)

    def test_steps_are_reported(self):
        result = run("void f() { int x = 0; x++; }")
        assert result.steps > 0


class TestMathAndLibrary:
    def test_math_pow(self):
        assert value("double f() { return Math.pow(2, 10); }") == 1024.0

    def test_math_abs(self):
        assert value("int f() { return Math.abs(-5); }") == 5

    def test_math_max_min(self):
        assert value("int f() { return Math.max(2, 3) + Math.min(2, 3); }") == 5

    def test_math_sqrt(self):
        assert value("double f() { return Math.sqrt(16.0); }") == 4.0

    def test_integer_parse_int(self):
        assert value('int f() { return Integer.parseInt("42"); }') == 42

    def test_integer_max_value(self):
        assert value("int f() { return Integer.MAX_VALUE; }") == 2 ** 31 - 1

    def test_string_length_method(self):
        assert value('int f() { return "hello".length(); }') == 5

    def test_string_char_at_digit(self):
        assert value("int f(String s) { return s.charAt(0) - '0'; }",
                     args=["7"]) == 7

    def test_string_equals(self):
        assert value(
            'boolean f(String a) { return a.equals("Bolt"); }',
            args=["Bolt"],
        ) is True
