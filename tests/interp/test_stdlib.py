"""Unit tests for the Java standard-library shims."""

import pytest

from repro.errors import JavaRuntimeError
from repro.interp import run_method
from repro.interp.stdlib import ScannerObject, VirtualFileSystem
from repro.java import parse_submission


def value(source, method="f", args=(), **kwargs):
    return run_method(
        parse_submission(source), method, list(args), **kwargs
    ).return_value


class TestScannerObject:
    def test_token_iteration(self):
        scanner = ScannerObject("a b  c\n d")
        tokens = []
        while scanner.has_next():
            tokens.append(scanner.next())
        assert tokens == ["a", "b", "c", "d"]

    def test_next_int(self):
        scanner = ScannerObject("1 -2 30")
        assert [scanner.next_int() for _ in range(3)] == [1, -2, 30]

    def test_has_next_int(self):
        scanner = ScannerObject("x 1")
        assert not scanner.has_next_int()
        scanner.next()
        assert scanner.has_next_int()

    def test_next_int_on_word_raises(self):
        with pytest.raises(JavaRuntimeError, match="InputMismatch"):
            ScannerObject("abc").next_int()

    def test_next_on_empty_raises(self):
        with pytest.raises(JavaRuntimeError, match="NoSuchElement"):
            ScannerObject("").next()

    def test_next_double(self):
        assert ScannerObject("2.5").next_double() == 2.5

    def test_next_line(self):
        scanner = ScannerObject("one two\nthree\n")
        assert scanner.next_line() == "one two"
        assert scanner.next_line() == "three"
        assert not scanner.has_next_line()

    def test_next_then_next_line_gets_rest(self):
        scanner = ScannerObject("a b\nc")
        scanner.next()
        assert scanner.next_line() == " b"

    def test_close_flag(self):
        scanner = ScannerObject("x")
        scanner.close()
        assert scanner.closed


class TestVirtualFileSystem:
    def test_read_registered_file(self):
        vfs = VirtualFileSystem({"data.txt": "hello"})
        assert vfs.read("data.txt") == "hello"

    def test_missing_file_raises(self):
        with pytest.raises(JavaRuntimeError, match="FileNotFound"):
            VirtualFileSystem().read("nope.txt")

    def test_add_and_exists(self):
        vfs = VirtualFileSystem()
        vfs.add("a.txt", "x")
        assert vfs.exists("a.txt")
        assert not vfs.exists("b.txt")


class TestScannerInPrograms:
    def test_scanner_over_file(self):
        source = """
        int f() {
            Scanner s = new Scanner(new File("nums.txt"));
            int total = 0;
            while (s.hasNextInt())
                total += s.nextInt();
            s.close();
            return total;
        }
        """
        assert value(source, files={"nums.txt": "1 2 3 4"}) == 10

    def test_scanner_over_stdin(self):
        source = """
        int f() {
            Scanner s = new Scanner(System.in);
            return s.nextInt() + s.nextInt();
        }
        """
        assert value(source, stdin="20 22") == 42

    def test_scanner_over_string(self):
        source = """
        String f() {
            Scanner s = new Scanner("alpha beta");
            return s.next();
        }
        """
        assert value(source) == "alpha"

    def test_missing_file_surfaces_as_runtime_error(self):
        source = 'void f() { Scanner s = new Scanner(new File("x.txt")); }'
        with pytest.raises(JavaRuntimeError, match="FileNotFound"):
            value(source)


class TestStringMethods:
    @pytest.mark.parametrize("expr,expected", [
        ('"hello".length()', 5),
        ('"hello".substring(1, 3)', "el"),
        ('"hello".substring(2)', "llo"),
        ('"hello".indexOf("l")', 2),
        ('"hello".contains("ell")', True),
        ('"HELLO".toLowerCase()', "hello"),
        ('"hello".toUpperCase()', "HELLO"),
        ('"  x  ".trim()', "x"),
        ('"".isEmpty()', True),
        ('"a".concat("b")', "ab"),
        ('"abc".startsWith("ab")', True),
        ('"abc".endsWith("bc")', True),
        ('"Bolt".equalsIgnoreCase("BOLT")', True),
    ])
    def test_method(self, expr, expected):
        assert value(f"Object f() {{ return {expr}; }}") == expected

    def test_char_at_out_of_bounds(self):
        with pytest.raises(JavaRuntimeError, match="StringIndexOutOfBounds"):
            value('char f() { return "ab".charAt(9); }')

    def test_split(self):
        source = 'int f() { String[] p = "a,b,c".split(","); return p.length; }'
        assert value(source) == 3

    def test_to_char_array(self):
        source = """
        int f() {
            char[] cs = "ab".toCharArray();
            return cs[0] + cs[1];
        }
        """
        assert value(source) == ord("a") + ord("b")

    def test_compare_to(self):
        assert value('int f() { return "a".compareTo("b"); }') == -1


class TestMathAndWrappers:
    def test_math_floor_ceil_round(self):
        assert value("double f() { return Math.floor(2.7); }") == 2.0
        assert value("double f() { return Math.ceil(2.1); }") == 3.0
        assert value("int f() { return Math.round(2.5); }") == 3

    def test_math_log10(self):
        assert value("double f() { return Math.log10(1000); }") == 3.0

    def test_math_log10_non_positive_raises(self):
        with pytest.raises(JavaRuntimeError):
            value("double f() { return Math.log10(0); }")

    def test_math_sqrt_negative_is_nan(self):
        result = value("double f() { return Math.sqrt(-1.0); }")
        assert result != result  # NaN

    def test_integer_parse_int_failure(self):
        with pytest.raises(JavaRuntimeError, match="NumberFormat"):
            value('int f() { return Integer.parseInt("abc"); }')

    def test_string_value_of(self):
        assert value("String f() { return String.valueOf(5); }") == "5"

    def test_character_is_digit(self):
        assert value("boolean f() { return Character.isDigit('7'); }") is True
        assert value("boolean f() { return Character.isDigit('x'); }") is False

    def test_character_numeric_value(self):
        assert value(
            "int f() { return Character.getNumericValue('8'); }"
        ) == 8

    def test_math_pi(self):
        import math
        assert value("double f() { return Math.PI; }") == math.pi

    def test_unknown_math_method_raises(self):
        with pytest.raises(JavaRuntimeError, match="Math has no method"):
            value("double f() { return Math.frobnicate(1); }")


class TestStringBuilder:
    def test_append_and_to_string(self):
        assert value(
            'String f() { StringBuilder sb = new StringBuilder(); '
            'sb.append("a"); sb.append(1); return sb.toString(); }'
        ) == "a1"

    def test_fluent_chaining(self):
        assert value(
            'String f() { return new StringBuilder("x")'
            '.append("y").append("z").toString(); }'
        ) == "xyz"

    def test_reverse(self):
        assert value(
            'String f() { return new StringBuilder("abc")'
            '.reverse().toString(); }'
        ) == "cba"

    def test_length_and_char_at(self):
        assert value(
            "int f() { StringBuilder sb = new StringBuilder(\"hey\"); "
            "return sb.length() + (sb.charAt(0) - 'a'); }"
        ) == 3 + ord("h") - ord("a")

    def test_delete_char_at(self):
        assert value(
            'String f() { StringBuilder sb = new StringBuilder("abc"); '
            'sb.deleteCharAt(1); return sb.toString(); }'
        ) == "ac"

    def test_insert(self):
        assert value(
            'String f() { StringBuilder sb = new StringBuilder("ac"); '
            'sb.insert(1, "b"); return sb.toString(); }'
        ) == "abc"

    def test_char_at_out_of_bounds(self):
        with pytest.raises(JavaRuntimeError, match="StringIndexOutOfBounds"):
            value('char f() { return new StringBuilder("a").charAt(5); }')

    def test_string_palindrome_idiom(self):
        source = """
        boolean f(int k) {
            String s = "" + k;
            String r = new StringBuilder(s).reverse().toString();
            return s.equals(r);
        }
        """
        assert value(source, args=[1221]) is True
        assert value(source, args=[1231]) is False

    def test_string_buffer_alias(self):
        assert value(
            'String f() { return new StringBuffer("ok").toString(); }'
        ) == "ok"
