"""Unit tests for the canonical printer."""

import pytest

from repro.java import parse_expression, parse_submission, to_source


def canon(source):
    """Canonical form of an expression."""
    return to_source(parse_expression(source))


class TestExpressionPrinting:
    @pytest.mark.parametrize("source,expected", [
        ("i%2==1", "i % 2 == 1"),
        ("(i % 2) == 1", "i % 2 == 1"),
        ("a+b*c", "a + b * c"),
        ("(a + b) * c", "(a + b) * c"),
        ("a - (b - c)", "a - (b - c)"),
        ("(a - b) - c", "a - b - c"),
        ("odd+=a[i]", "odd += a[i]"),
        ("x = y = z", "x = y = z"),
        ("!(a&&b)", "!(a && b)"),
        ("-x * y", "-x * y"),
        ("i++", "i++"),
        ("++i", "++i"),
        ("a?b:c", "a ? b : c"),
        ("(int)x", "(int) x"),
        ("new int[5]", "new int[5]"),
        ("System.out.println(odd)", "System.out.println(odd)"),
        ("Math.pow(x,i)", "Math.pow(x, i)"),
        ("s.hasNext()", "s.hasNext()"),
        ("a.length", "a.length"),
        ("m[i][j]", "m[i][j]"),
    ])
    def test_canonical_form(self, source, expected):
        assert canon(source) == expected

    def test_string_literal_escaping(self):
        assert canon(r'"a\nb"') == r'"a\nb"'

    def test_char_literal(self):
        assert canon("'x'") == "'x'"

    def test_boolean_and_null(self):
        assert canon("true") == "true"
        assert canon("null") == "null"

    def test_double_always_has_decimal(self):
        assert canon("1.0") == "1.0"
        assert canon("2.5") == "2.5"

    def test_long_literal_suffix(self):
        assert canon("5L") == "5L"

    def test_array_initializer(self):
        assert canon("new int[]{1, 2}") == "new int[1, 2]".replace(
            "[1, 2]", " {1, 2}"
        ) or canon("new int[]{1, 2}").endswith("{1, 2}")


class TestIdempotence:
    @pytest.mark.parametrize("source", [
        "i % 2 == 1",
        "(a + b) * c",
        "odd += a[i]",
        "!(fact(n) <= k && k < fact(n + 1))",
        '"O: " + x + ", E: " + y',
        "r += c[i] * (int) Math.pow(x, i)",
        "a ? b + 1 : c * 2",
    ])
    def test_reparse_reprint_is_identity(self, source):
        once = canon(source)
        assert canon(once) == once


class TestStatementPrinting:
    def test_method_round_trip(self):
        source = """
void f(int[] a) {
    int odd = 0;
    for (int i = 0; i < a.length; i++) {
        if (i % 2 == 1) {
            odd += a[i];
        }
    }
    System.out.println(odd);
}
"""
        printed = to_source(parse_submission(source))
        reparsed = to_source(parse_submission(printed))
        assert printed == reparsed

    def test_while_and_do_while(self):
        source = "void f() { do { i++; } while (i < n); }"
        printed = to_source(parse_submission(source))
        assert "do {" in printed and "} while (i < n);" in printed

    def test_if_else(self):
        source = "void f() { if (a) x = 1; else x = 2; }"
        printed = to_source(parse_submission(source))
        assert "} else {" in printed

    def test_switch(self):
        source = ("void f() { switch (x) { case 1: y = 1; break; "
                  "default: y = 0; } }")
        printed = to_source(parse_submission(source))
        assert "case 1:" in printed and "default:" in printed

    def test_for_each(self):
        printed = to_source(parse_submission(
            "void f(int[] a) { for (int v : a) s += v; }"
        ))
        assert "for (int v : a) {" in printed

    def test_class_with_field(self):
        printed = to_source(parse_submission(
            "class C { int x = 1; void f() { } }"
        ))
        assert "class C {" in printed and "int x = 1;" in printed

    def test_imports_printed(self):
        printed = to_source(parse_submission(
            "import java.util.Scanner; void f() { }"
        ))
        assert printed.startswith("import java.util.Scanner;")

    def test_break_continue_return(self):
        printed = to_source(parse_submission(
            "int f() { while (true) { break; } return 1; }"
        ))
        assert "break;" in printed and "return 1;" in printed

    def test_empty_statement(self):
        printed = to_source(parse_submission("void f() { ; }"))
        assert ";" in printed

    def test_multi_declarator(self):
        printed = to_source(parse_submission("void f() { int o = 0, e = 1; }"))
        assert "int o = 0, e = 1;" in printed


class TestSemanticPreservation:
    """Printing must never change what the program computes."""

    @pytest.mark.parametrize("source,method,args,expected", [
        ("int f() { return 2 + 3 * 4; }", "f", [], 14),
        ("int f() { return (2 + 3) * 4; }", "f", [], 20),
        ("int f() { return 10 - (4 - 1); }", "f", [], 7),
        ("int f() { return -(2 + 3); }", "f", [], -5),
        ("int f(int n) { return n % 10; }", "f", [-27], -7),
    ])
    def test_round_trip_preserves_value(self, source, method, args, expected):
        from repro.interp import run_method
        original = parse_submission(source)
        round_tripped = parse_submission(to_source(original))
        assert run_method(round_tripped, method, args).return_value == expected
