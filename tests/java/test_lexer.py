"""Unit tests for the Java lexer."""

import pytest

from repro.errors import JavaSyntaxError
from repro.java.lexer import Token, TokenType, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifier(self):
        assert kinds("medals") == [TokenType.IDENTIFIER]

    def test_identifier_with_dollar_and_underscore(self):
        assert values("_x $y a1") == ["_x", "$y", "a1"]
        assert kinds("_x $y a1") == [TokenType.IDENTIFIER] * 3

    def test_keyword(self):
        assert kinds("while") == [TokenType.KEYWORD]

    def test_keyword_prefix_is_identifier(self):
        # `whilex` is an identifier, not the keyword plus `x`
        assert kinds("whilex") == [TokenType.IDENTIFIER]

    def test_boolean_literals(self):
        assert kinds("true false") == [TokenType.BOOL_LITERAL] * 2

    def test_null_literal(self):
        assert kinds("null") == [TokenType.NULL_LITERAL]

    def test_separators(self):
        assert kinds("( ) { } [ ] ; , .") == [TokenType.SEPARATOR] * 9


class TestNumbers:
    def test_int_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INT_LITERAL
        assert token.value == "42"

    def test_int_literal_at_end_of_input_stays_int(self):
        # regression: EOF peek used to promote trailing ints to doubles
        assert kinds("x == 1")[-1] is TokenType.INT_LITERAL

    def test_double_literal(self):
        assert kinds("3.5") == [TokenType.DOUBLE_LITERAL]

    def test_double_with_exponent(self):
        assert kinds("1e10 1.5e-3 2E+4") == [TokenType.DOUBLE_LITERAL] * 3

    def test_float_suffix(self):
        assert kinds("1f 2.0F 3d 4D") == [TokenType.DOUBLE_LITERAL] * 4

    def test_long_suffix(self):
        assert kinds("10L 11l") == [TokenType.LONG_LITERAL] * 2

    def test_hex_literal(self):
        token = tokenize("0x1F")[0]
        assert token.type is TokenType.INT_LITERAL
        assert token.value == "0x1F"

    def test_underscore_separator(self):
        assert values("1_000_000") == ["1_000_000"]

    def test_leading_dot_number(self):
        assert kinds(".5") == [TokenType.DOUBLE_LITERAL]

    def test_member_access_is_not_a_double(self):
        # `a.length` must not lex `a.` as a number
        assert kinds("a.length") == [
            TokenType.IDENTIFIER, TokenType.SEPARATOR, TokenType.IDENTIFIER,
        ]


class TestStringsAndChars:
    def test_string_literal(self):
        token = tokenize('"hello"')[0]
        assert token.type is TokenType.STRING_LITERAL
        assert token.value == "hello"

    def test_string_escapes(self):
        token = tokenize(r'"a\nb\tc\"d\\e"')[0]
        assert token.value == 'a\nb\tc"d\\e'

    def test_empty_string(self):
        assert tokenize('""')[0].value == ""

    def test_char_literal(self):
        token = tokenize("'x'")[0]
        assert token.type is TokenType.CHAR_LITERAL
        assert token.value == "x"

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == "\n"

    def test_unterminated_string_raises(self):
        with pytest.raises(JavaSyntaxError):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(JavaSyntaxError):
            tokenize('"ab\ncd"')

    def test_bad_escape_raises(self):
        with pytest.raises(JavaSyntaxError):
            tokenize(r'"\q"')


class TestOperators:
    @pytest.mark.parametrize("op", [
        "+", "-", "*", "/", "%", "=", "==", "!=", "<", ">", "<=", ">=",
        "&&", "||", "!", "~", "&", "|", "^", "++", "--", "+=", "-=",
        "*=", "/=", "%=", "<<", ">>", ">>>", "?", ":",
    ])
    def test_single_operator(self, op):
        tokens = tokenize(f"a {op} b" if op not in ("++", "--", "!", "~")
                          else f"{op} b")
        assert any(t.value == op and t.type is TokenType.OPERATOR
                   for t in tokens)

    def test_maximal_munch(self):
        # `>>>=` and `<=` must win over their prefixes
        assert values("a >>>= b")[1] == ">>>="
        assert values("a <= b")[1] == "<="

    def test_increment_vs_plus(self):
        assert values("i++ + ++j") == ["i", "++", "+", "++", "j"]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(JavaSyntaxError):
            tokenize("a /* never closed")

    def test_comment_inside_string_is_content(self):
        assert tokenize('"a // b"')[0].value == "a // b"


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  bb")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(JavaSyntaxError) as excinfo:
            tokenize("a\n  #")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3

    def test_token_repr_is_informative(self):
        assert "IDENTIFIER" in repr(Token(TokenType.IDENTIFIER, "x", 1, 1))


class TestRealisticSnippets:
    def test_full_method_header(self):
        source = "void assignment1(int[] a) {"
        assert values(source) == [
            "void", "assignment1", "(", "int", "[", "]", "a", ")", "{",
        ]

    def test_modulo_condition(self):
        assert values("i % 2 == 1") == ["i", "%", "2", "==", "1"]

    def test_scanner_construction(self):
        source = 'new Scanner(new File("f.txt"))'
        vals = values(source)
        assert vals[0] == "new" and "f.txt" in vals
