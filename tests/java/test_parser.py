"""Unit tests for the recursive-descent parser."""

import pytest

from repro.errors import JavaSyntaxError
from repro.java import ast, parse_expression, parse_submission


class TestExpressions:
    def test_literal_int(self):
        expr = parse_expression("42")
        assert isinstance(expr, ast.Literal)
        assert expr.value == 42 and expr.kind == "int"

    def test_negative_literal_folds(self):
        expr = parse_expression("-3")
        assert isinstance(expr, ast.Literal)
        assert expr.value == -3

    def test_name(self):
        assert parse_expression("odd") == ast.Name("odd")

    def test_binary_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.operator == "+"
        assert isinstance(expr.right, ast.Binary)
        assert expr.right.operator == "*"

    def test_binary_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.operator == "-"
        assert isinstance(expr.left, ast.Binary)
        assert expr.left.operator == "-"

    def test_parenthesized_grouping(self):
        expr = parse_expression("(a + b) * c")
        assert expr.operator == "*"
        assert isinstance(expr.left, ast.Binary)
        assert expr.left.operator == "+"

    def test_relational_and_equality_layers(self):
        expr = parse_expression("i % 2 == 1")
        assert expr.operator == "=="
        assert expr.left.operator == "%"

    def test_logical_layers(self):
        expr = parse_expression("a && b || c")
        assert expr.operator == "||"
        assert expr.left.operator == "&&"

    def test_ternary(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_associative(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr.if_false, ast.Ternary)

    def test_assignment_expression(self):
        expr = parse_expression("x = y + 1")
        assert isinstance(expr, ast.Assignment)
        assert expr.operator == "="

    def test_compound_assignment(self):
        expr = parse_expression("odd += a[i]")
        assert isinstance(expr, ast.Assignment)
        assert expr.operator == "+="
        assert isinstance(expr.value, ast.ArrayAccess)

    def test_assignment_right_associative(self):
        expr = parse_expression("a = b = c")
        assert isinstance(expr.value, ast.Assignment)

    def test_field_access(self):
        expr = parse_expression("a.length")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.name == "length"

    def test_chained_field_access(self):
        expr = parse_expression("System.out")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.target == ast.Name("System")

    def test_method_call_unqualified(self):
        expr = parse_expression("fact(n + 1)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.target is None and expr.name == "fact"
        assert len(expr.arguments) == 1

    def test_method_call_qualified(self):
        expr = parse_expression("System.out.println(x)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "println"
        assert isinstance(expr.target, ast.FieldAccess)

    def test_method_call_chained(self):
        expr = parse_expression("s.trim().length()")
        assert expr.name == "length"
        assert expr.target.name == "trim"

    def test_array_access_nested(self):
        expr = parse_expression("m[i][j]")
        assert isinstance(expr, ast.ArrayAccess)
        assert isinstance(expr.array, ast.ArrayAccess)

    def test_prefix_and_postfix_increment(self):
        post = parse_expression("i++")
        pre = parse_expression("++i")
        assert isinstance(post, ast.Unary) and not post.prefix
        assert isinstance(pre, ast.Unary) and pre.prefix

    def test_unary_not(self):
        expr = parse_expression("!(a && b)")
        assert isinstance(expr, ast.Unary)
        assert expr.operator == "!"

    def test_cast(self):
        expr = parse_expression("(int) Math.pow(x, i)")
        assert isinstance(expr, ast.Cast)
        assert expr.type.name == "int"

    def test_parenthesized_name_is_not_cast(self):
        expr = parse_expression("(x) + 1")
        assert isinstance(expr, ast.Binary)

    def test_object_creation(self):
        expr = parse_expression('new Scanner(new File("a.txt"))')
        assert isinstance(expr, ast.ObjectCreation)
        assert expr.type.name == "Scanner"
        assert isinstance(expr.arguments[0], ast.ObjectCreation)

    def test_array_creation_sized(self):
        expr = parse_expression("new int[n + 1]")
        assert isinstance(expr, ast.ArrayCreation)
        assert expr.type.dimensions == 1

    def test_array_creation_with_initializer(self):
        expr = parse_expression("new int[]{1, 2, 3}")
        assert expr.initializer is not None
        assert len(expr.initializer.elements) == 3

    def test_string_concatenation(self):
        expr = parse_expression('"O: " + x + ", E: " + y')
        assert isinstance(expr, ast.Binary)

    def test_trailing_tokens_raise(self):
        with pytest.raises(JavaSyntaxError):
            parse_expression("a + b c")

    def test_unbalanced_paren_raises(self):
        with pytest.raises(JavaSyntaxError):
            parse_expression("(a + b")


class TestStatements:
    def parse_body(self, body):
        unit = parse_submission("void f() {\n" + body + "\n}")
        return unit.methods()[0].body.statements

    def test_local_declaration_single(self):
        (stmt,) = self.parse_body("int x = 0;")
        assert isinstance(stmt, ast.LocalVarDecl)
        assert stmt.declarators[0].name == "x"

    def test_local_declaration_multiple(self):
        (stmt,) = self.parse_body("int o = 0, e = 1;")
        assert [d.name for d in stmt.declarators] == ["o", "e"]

    def test_declaration_without_initializer(self):
        (stmt,) = self.parse_body("int x;")
        assert stmt.declarators[0].initializer is None

    def test_array_declaration_suffix_brackets(self):
        (stmt,) = self.parse_body("int x[] = new int[3];")
        assert stmt.declarators[0].extra_dimensions == 1

    def test_string_declaration(self):
        (stmt,) = self.parse_body('String e = "";')
        assert stmt.type.name == "String"

    def test_if_without_else(self):
        (stmt,) = self.parse_body("if (x > 0) y = 1;")
        assert isinstance(stmt, ast.If)
        assert stmt.else_branch is None

    def test_if_with_else(self):
        (stmt,) = self.parse_body("if (x > 0) y = 1; else y = 2;")
        assert stmt.else_branch is not None

    def test_dangling_else_binds_to_nearest_if(self):
        (stmt,) = self.parse_body("if (a) if (b) x = 1; else x = 2;")
        assert stmt.else_branch is None
        assert stmt.then_branch.else_branch is not None

    def test_while(self):
        (stmt,) = self.parse_body("while (i < n) i++;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        (stmt,) = self.parse_body("do { i++; } while (i < n);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_classic(self):
        (stmt,) = self.parse_body("for (int i = 0; i < n; i++) s += i;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init[0], ast.LocalVarDecl)
        assert len(stmt.update) == 1

    def test_for_with_empty_sections(self):
        (stmt,) = self.parse_body("for (;;) break;")
        assert stmt.init == [] and stmt.condition is None
        assert stmt.update == []

    def test_for_with_multiple_updates(self):
        (stmt,) = self.parse_body("for (i = 0; i < n; i++, j--) x = 1;")
        assert len(stmt.update) == 2

    def test_for_each(self):
        (stmt,) = self.parse_body("for (int v : a) s += v;")
        assert isinstance(stmt, ast.ForEach)
        assert stmt.name == "v"

    def test_break_and_continue(self):
        stmts = self.parse_body("while (true) { break; }\n"
                                "while (true) { continue; }")
        assert isinstance(stmts[0].body.statements[0], ast.Break)
        assert isinstance(stmts[1].body.statements[0], ast.Continue)

    def test_return_void_and_value(self):
        stmts = self.parse_body("if (x > 0) return; return;")
        assert stmts[0].then_branch.value is None
        unit = parse_submission("int g() { return x + y; }")
        assert unit.methods()[0].body.statements[0].value is not None

    def test_switch(self):
        (stmt,) = self.parse_body(
            "switch (x) { case 1: y = 1; break; default: y = 0; }"
        )
        assert isinstance(stmt, ast.Switch)
        assert len(stmt.cases) == 2
        assert stmt.cases[1].labels == [None]

    def test_empty_statement(self):
        (stmt,) = self.parse_body(";")
        assert isinstance(stmt, ast.EmptyStatement)

    def test_nested_blocks(self):
        (stmt,) = self.parse_body("{ { int x = 1; } }")
        assert isinstance(stmt, ast.Block)

    def test_missing_semicolon_raises(self):
        with pytest.raises(JavaSyntaxError):
            self.parse_body("int x = 0")


class TestDeclarations:
    def test_bare_method(self):
        unit = parse_submission("void f(int x) { }")
        method = unit.methods()[0]
        assert method.name == "f"
        assert method.parameters[0].type.name == "int"

    def test_array_parameter(self):
        unit = parse_submission("void f(int[] a) { }")
        assert unit.methods()[0].parameters[0].type.dimensions == 1

    def test_array_parameter_suffix_style(self):
        unit = parse_submission("void f(int a[]) { }")
        assert unit.methods()[0].parameters[0].type.dimensions == 1

    def test_multiple_bare_methods(self):
        unit = parse_submission("int f() { return 1; } int g() { return 2; }")
        assert [m.name for m in unit.methods()] == ["f", "g"]

    def test_class_with_methods_and_fields(self):
        unit = parse_submission("""
            public class Solution {
                private int count = 0;
                public void run() { count++; }
                int helper(int x) { return x; }
            }
        """)
        cls = unit.classes[0]
        assert cls.name == "Solution"
        assert len(cls.methods) == 2
        assert cls.fields[0].declarators[0].name == "count"

    def test_imports(self):
        unit = parse_submission("""
            import java.util.Scanner;
            import java.io.*;
            void f() { }
        """)
        assert unit.imports == ["java.util.Scanner", "java.io.*"]

    def test_throws_clause(self):
        unit = parse_submission("void f() throws Exception { }")
        assert unit.methods()[0].throws == ["Exception"]

    def test_method_lookup_by_name(self):
        unit = parse_submission("void f() { } void g() { }")
        assert unit.method("g").name == "g"
        with pytest.raises(KeyError):
            unit.method("missing")

    def test_method_signature(self):
        unit = parse_submission("void assignment1(int[] a) { }")
        assert unit.methods()[0].signature() == "void assignment1(int[] a)"

    def test_modifiers(self):
        unit = parse_submission("public static void main(String[] args) { }")
        assert unit.methods()[0].modifiers == ["public", "static"]

    def test_paper_figure_2a_parses(self):
        from repro.kb.assignments.assignment1 import FIGURE_2A
        unit = parse_submission(FIGURE_2A)
        assert unit.methods()[0].name == "assignment1"

    def test_garbage_raises_with_position(self):
        with pytest.raises(JavaSyntaxError) as excinfo:
            parse_submission("void f() { int x = ; }")
        assert excinfo.value.line >= 1


class TestAstHelpers:
    def test_walk_visits_all_nodes(self):
        unit = parse_submission("void f() { int x = 1 + 2; }")
        kinds = [type(n).__name__ for n in ast.walk(unit)]
        assert "Binary" in kinds and "LocalVarDecl" in kinds

    def test_children_of_expression(self):
        expr = parse_expression("a + b")
        children = list(expr.children())
        assert children == [ast.Name("a"), ast.Name("b")]
