"""Property-based tests: parse/print round-trips on generated ASTs.

Strategy: build random expression ASTs, print them, re-parse, re-print —
the two printed forms must be identical (printing is a normal form), and
for side-effect-free integer expressions the interpreted value must be
preserved.  The same fixed-point property is pinned on every knowledge
base reference program: real Java from the corpus, exercising the
memoized printer (``node._printed``) against freshly parsed trees.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.java import ast, parse_expression, parse_submission, to_source
from repro.interp import run_method
from repro.java.printer import print_expression
from repro.kb import all_assignment_names, get_assignment

_NAMES = st.sampled_from(["a", "b", "c", "x", "y", "odd", "even", "i"])
_INT_LITERALS = st.integers(min_value=0, max_value=1000).map(
    lambda v: ast.Literal(v, "int")
)
_BINARY_OPS = st.sampled_from(["+", "-", "*", "/", "%"])
_COMPARE_OPS = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])


def _expressions(depth: int = 3):
    base = st.one_of(_INT_LITERALS, _NAMES.map(ast.Name))
    if depth == 0:
        return base
    sub = _expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(ast.Binary, _BINARY_OPS, sub, sub),
        st.builds(ast.Binary, _COMPARE_OPS, sub, sub),
        # unary minus over names only: the parser folds `-<literal>` into
        # a negative literal, which is a different (equivalent) tree
        st.builds(
            ast.Unary, st.just("-"), _NAMES.map(ast.Name), st.just(True)
        ),
        st.builds(ast.ArrayAccess, _NAMES.map(ast.Name), sub),
        st.builds(
            ast.MethodCall,
            st.none(),
            st.sampled_from(["f", "g"]),
            st.lists(sub, max_size=2),
        ),
        st.builds(ast.Ternary, sub, sub, sub),
    )


class TestPrintParseRoundTrip:
    @given(_expressions())
    @settings(max_examples=300, deadline=None)
    def test_print_is_a_normal_form(self, expr):
        printed = to_source(expr)
        reparsed = parse_expression(printed)
        assert to_source(reparsed) == printed

    @given(_expressions())
    @settings(max_examples=200, deadline=None)
    def test_reparse_twice_is_stable(self, expr):
        once = to_source(parse_expression(to_source(expr)))
        twice = to_source(parse_expression(once))
        assert once == twice


def _kb_programs():
    """Every reference program in the knowledge base, labelled."""
    for name in all_assignment_names():
        assignment = get_assignment(name)
        for index, source in enumerate(assignment.reference_solutions):
            yield pytest.param(source, id=f"{name}-{index}")


class TestKbReferenceFixedPoint:
    @pytest.mark.parametrize("source", list(_kb_programs()))
    def test_print_parse_print_is_a_fixed_point(self, source):
        printed = to_source(parse_submission(source))
        assert to_source(parse_submission(printed)) == printed

    @pytest.mark.parametrize("source", list(_kb_programs()))
    def test_memoized_printing_matches_a_fresh_tree(self, source):
        unit = parse_submission(source)
        expressions = [
            declarator.initializer
            for method in unit.methods()
            for statement in method.body.statements
            if isinstance(statement, ast.LocalVarDecl)
            for declarator in statement.declarators
            if declarator.initializer is not None
        ]
        # print twice through the memo, then against an identical tree
        # printed cold: all three must agree
        first = [print_expression(e) for e in expressions]
        second = [print_expression(e) for e in expressions]
        fresh_unit = parse_submission(source)
        fresh = [
            print_expression(declarator.initializer)
            for method in fresh_unit.methods()
            for statement in method.body.statements
            if isinstance(statement, ast.LocalVarDecl)
            for declarator in statement.declarators
            if declarator.initializer is not None
        ]
        assert first == second == fresh


_PURE_INT_OPS = st.sampled_from(["+", "-", "*"])


def _pure_int_expressions(depth: int = 3):
    base = st.integers(min_value=-50, max_value=50).map(
        lambda v: ast.Literal(v, "int")
    )
    if depth == 0:
        return base
    sub = _pure_int_expressions(depth - 1)
    return st.one_of(base, st.builds(ast.Binary, _PURE_INT_OPS, sub, sub))


class TestValuePreservation:
    @given(_pure_int_expressions())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_preserves_integer_value(self, expr):
        source = to_source(expr)
        program = f"int f() {{ return {source}; }}"
        direct = run_method(parse_submission(program), "f", []).return_value
        round_tripped = to_source(parse_submission(program))
        again = run_method(
            parse_submission(round_tripped), "f", []
        ).return_value
        assert direct == again
