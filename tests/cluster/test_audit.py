"""Knowledge-base audit: every seed assignment must prove itself safe."""

from __future__ import annotations

from repro.cluster.audit import (
    _matching_layer_vocabulary,
    _scan_feedback_template,
    audit_assignment,
)
from repro.kb import all_assignment_names, get_assignment


def test_every_seed_assignment_audits_safe():
    for name in all_assignment_names():
        audit = audit_assignment(get_assignment(name))
        assert audit.safe, f"{name}: {audit.reasons}"
        assert audit.keep_identifiers


def test_expected_method_names_are_kept(assignment1, audit1):
    for method in assignment1.expected_methods:
        assert method.name in audit1.keep_identifiers


class TestReportVocabulary:
    def test_matching_layer_message_words_are_collected(self):
        vocabulary = _matching_layer_vocabulary()
        # "in your code" is fixed text of a matching-layer message; an
        # identifier spelled 'code' must never be alpha-renamed or the
        # specializer could rewrite the fixed text
        assert "code" in vocabulary
        assert "Constraint" in vocabulary

    def test_vocabulary_is_cached(self):
        assert _matching_layer_vocabulary() is _matching_layer_vocabulary()

    def test_docstrings_do_not_leak_into_the_vocabulary(self):
        # module/function docstrings never reach delivered feedback;
        # keeping their words would shred bucketing for common names
        vocabulary = _matching_layer_vocabulary()
        assert "Algorithm" not in vocabulary


class TestTemplateDiscipline:
    def test_clean_template_passes(self):
        reasons, words = _scan_feedback_template("use '{var}' in {method}")
        assert not reasons
        assert {"use", "in", "var", "method"} <= set(words)

    def test_hole_glued_to_word_chars_is_flagged(self):
        reasons, _ = _scan_feedback_template("my{x} is wrong")
        assert reasons
        reasons, _ = _scan_feedback_template("{x}y is wrong")
        assert reasons

    def test_adjacent_holes_are_flagged(self):
        reasons, _ = _scan_feedback_template("{a}{b}")
        assert reasons
