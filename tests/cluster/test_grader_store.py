"""ClusterGrader + ResultStore: bucket reuse, warm runs, fallbacks."""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterGrader
from repro.cluster.fingerprint import fingerprint_source
from repro.core.engine import FeedbackEngine
from repro.core.pipeline import BatchGrader
from repro.core.store import ResultStore
from repro.instrumentation import collecting

from tests.cluster.conftest import make_variant

SOURCE = """\
public class Main {
    static int zorp(int blee) {
        int accum = 0;
        for (int kk = 0; kk < blee; kk++) {
            accum += kk;
        }
        return accum;
    }
}
"""


class TestStoreRoundTrip:
    def test_warm_grader_specializes_from_the_stored_record(
        self, tmp_path, assignment1, audit1
    ):
        store = ResultStore(tmp_path, assignment1)
        v1 = make_variant(SOURCE, audit1, 1)
        v2 = make_variant(SOURCE, audit1, 2)

        cold = ClusterGrader(FeedbackEngine(assignment1), store=store)
        with collecting() as cold_stats:
            cold_report = cold.grade(v1)
        assert cold_stats.counters.get("cluster.representatives") == 1
        digest = fingerprint_source(v1, audit1).digest
        assert store.cluster_path_for(digest).exists()

        # a fresh grader over the same store: no representative grade,
        # the whole bucket is served from the persisted record
        warm = ClusterGrader(FeedbackEngine(assignment1), store=store)
        with collecting() as warm_stats:
            warm_report = warm.grade(v2)
        assert warm_stats.counters.get("cluster.store_hits") == 1
        assert warm_stats.counters.get("cluster.specialized") == 1
        assert "cluster.representatives" not in warm_stats.counters

        expected = FeedbackEngine(assignment1).grade(v2)
        assert warm_report.render() == expected.render()
        assert warm_report.to_dict() == expected.to_dict()
        assert cold_report.assignment_name == warm_report.assignment_name

    def test_corrupt_stored_record_falls_back_to_full_grading(
        self, tmp_path, assignment1, audit1
    ):
        store = ResultStore(tmp_path, assignment1)
        digest = fingerprint_source(SOURCE, audit1).digest
        assert store.put_cluster(digest, {"version": 999})

        grader = ClusterGrader(FeedbackEngine(assignment1), store=store)
        with collecting() as stats:
            report = grader.grade(SOURCE)
        assert stats.counters.get("cluster.fallbacks") == 1
        expected = FeedbackEngine(assignment1).grade(SOURCE)
        assert report.render() == expected.render()
        assert report.to_dict() == expected.to_dict()


class TestClusterKeyForwardCompat:
    def test_entry_without_cluster_key_reads_as_unclustered(
        self, tmp_path, assignment1
    ):
        store = ResultStore(tmp_path, assignment1)
        report = FeedbackEngine(assignment1).grade(SOURCE)
        assert store.put("pre-cluster", report)

        # simulate an entry written before clustering existed: strip the
        # cluster key from the payload entirely
        path = store.path_for("pre-cluster")
        entry = json.loads(path.read_text())
        entry.pop("cluster", None)
        path.write_text(json.dumps(entry))

        assert store.cluster_key("pre-cluster") is None
        restored = store.get("pre-cluster")
        assert restored is not None
        assert restored.render() == report.render()

    def test_cluster_link_round_trips(self, tmp_path, assignment1):
        store = ResultStore(tmp_path, assignment1)
        report = FeedbackEngine(assignment1).grade(SOURCE)
        assert store.put("linked", report, cluster="ab" * 32)
        assert store.cluster_key("linked") == "ab" * 32
        assert store.cluster_key("no-such-entry") is None


class TestBatchModes:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_clustered_batch_matches_plain(self, mode, assignment1, audit1):
        # SOURCE has genuinely renameable identifiers (assignment1's own
        # reference keeps every spelling via the report vocabulary, so
        # its alpha-variants would be byte-identical — a vacuous cohort)
        cohort = [
            (f"s{i}v{r}", make_variant(source, audit1, r))
            for i, source in enumerate(
                [SOURCE, assignment1.reference_solutions[0]]
            )
            for r in range(3)
        ]
        assert len({src for _, src in cohort}) > 2
        plain = BatchGrader(assignment1, cache=False).grade_batch(cohort)
        clustered = BatchGrader(
            assignment1, mode=mode, workers=2, cache=False, cluster=True
        ).grade_batch(cohort)
        for p, c in zip(plain.reports, clustered.reports):
            assert p.render() == c.render()
            assert p.to_dict() == c.to_dict()
        counters = clustered.stats.counters
        assert counters.get("cluster.submissions") == len(cohort)
        assert counters.get("cluster.specialized", 0) > 0
        assert counters.get("cluster.fallbacks", 0) == 0
