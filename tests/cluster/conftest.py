"""Shared helpers for the clustering tests.

``order_preserving_renaming`` builds the alpha-variant cohorts the
differential tests grade: every renameable spelling maps to
``<prefix>_<slot>`` with both halves fixed-width over the two-letter
alphabet ``ab``, so renamed names sort among themselves exactly like
their slots and (sharing a first letter) interleave with the kept
identifiers the same way in every variant — the renaming preserves the
fingerprint's order signature and all variants share one bucket.
"""

from __future__ import annotations

import pytest

from repro.cluster import rename_submission
from repro.cluster.audit import audit_assignment
from repro.cluster.fingerprint import fingerprint_source
from repro.kb import get_assignment


def letters(value: int, width: int = 4) -> str:
    """``value`` in fixed-width base-2 over the alphabet ``ab``."""
    out = []
    for _ in range(width):
        out.append("ab"[value % 2])
        value //= 2
    return "".join(reversed(out))


def order_preserving_renaming(sprint, prefix: str) -> dict[str, str]:
    """Rename every renameable spelling to ``<prefix>_<slot>``."""
    names = sorted(sprint.spellings)
    return {
        name: f"{prefix}_{letters(j)}" for j, name in enumerate(names)
    }


def make_variant(source: str, audit, variant: int) -> str:
    """An order-preserving alpha-variant of ``source``."""
    sprint = fingerprint_source(source, audit)
    assert sprint is not None
    renaming = order_preserving_renaming(sprint, "q" + letters(variant))
    return rename_submission(source, renaming)


@pytest.fixture(scope="session")
def assignment1():
    return get_assignment("assignment1")


@pytest.fixture(scope="session")
def audit1(assignment1):
    return audit_assignment(assignment1)
