"""Clustered grading through the serve pool stays byte-identical."""

from __future__ import annotations

import asyncio

from repro.serve import GradingWorkerPool

from tests.cluster.conftest import make_variant


def run(coro):
    return asyncio.run(coro)


def test_inline_pool_cluster_output_matches_plain(assignment1, audit1):
    base = assignment1.reference_solutions[0]
    members = [base] + [make_variant(base, audit1, v) for v in (1, 2)]

    async def go():
        pool = GradingWorkerPool(workers=1, mode="inline")
        await pool.start()
        try:
            pairs = []
            for source in members:
                plain = await pool.grade("assignment1", source, 10.0)
                clustered = await pool.grade(
                    "assignment1", source, 10.0, cluster=True
                )
                pairs.append((plain, clustered))
            return pairs
        finally:
            await pool.stop()

    for plain, clustered in run(go()):
        assert not plain.killed and not clustered.killed
        assert plain.report.status == clustered.report.status == "ok"
        assert plain.report.render() == clustered.report.render()
        assert plain.report.to_dict() == clustered.report.to_dict()


SOURCE = """\
public class Main {
    static int zorp(int blee) {
        int accum = 0;
        for (int kk = 0; kk < blee; kk++) {
            accum += kk;
        }
        return accum;
    }
}
"""


def test_cluster_counters_surface_through_the_pool(audit1):
    # distinct spellings, one bucket: the crafted source has renameable
    # identifiers, so the two members differ in bytes
    members = [make_variant(SOURCE, audit1, v) for v in (1, 2)]
    assert members[0] != members[1]

    async def go():
        pool = GradingWorkerPool(workers=1, mode="inline")
        await pool.start()
        try:
            return [
                await pool.grade("assignment1", source, 10.0, cluster=True)
                for source in members
            ]
        finally:
            await pool.stop()

    first, second = run(go())
    assert first.collector is not None
    assert first.collector.counters.get("cluster.representatives") == 1
    # the second member lands in the warm bucket and is specialized
    assert second.collector.counters.get("cluster.specialized") == 1
