"""The differential gate: specialized reports equal grading from scratch."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterGrader,
    SpecializeError,
    build_cluster_record,
    rename_submission,
    specialize,
)
from repro.cluster.audit import audit_assignment
from repro.cluster.fingerprint import fingerprint_source
from repro.core.engine import FeedbackEngine
from repro.kb import all_assignment_names, get_assignment
from repro.synth import sample_submissions

from tests.cluster.conftest import make_variant, order_preserving_renaming

#: 'wasted' is written but never read, so the analysis layer emits an
#: unused-variable diagnostic whose message quotes two renameable names
#: ('wasted' and the method 'zorp') — the re-binding worst case.
DIAG_SOURCE = """\
public class Main {
    static int zorp(int blee) {
        int pad = 1; int wasted = 5;
        int accum = 0;
        for (int kk = 0; kk < blee; kk++) {
            accum += pad;
        }
        return accum;
    }
}
"""


@pytest.mark.parametrize("name", all_assignment_names())
def test_specialized_reports_match_per_submission_grading(name):
    """Equal fingerprints imply byte-identical reports, on every seed
    assignment, for sampled structures and their alpha-variants."""
    assignment = get_assignment(name)
    audit = audit_assignment(assignment)
    grader = ClusterGrader(FeedbackEngine(assignment))
    direct = FeedbackEngine(assignment)
    for sample in sample_submissions(assignment.space(), 3, seed=11):
        members = [sample.source] + [
            make_variant(sample.source, audit, v) for v in (1, 2)
        ]
        for member in members:
            clustered = grader.grade(member)
            expected = direct.grade(member)
            assert clustered.render() == expected.render()
            assert clustered.to_dict() == expected.to_dict()


class TestDiagnosticRebinding:
    def test_messages_and_positions_follow_the_member(
        self, assignment1, audit1
    ):
        grader = ClusterGrader(FeedbackEngine(assignment1))
        rep = grader.grade(DIAG_SOURCE)
        rep_unused = [
            d for d in rep.diagnostics if d.check == "unused-variable"
        ]
        assert rep_unused, "fixture source must trip unused-variable"

        sprint = fingerprint_source(DIAG_SOURCE, audit1)
        renaming = order_preserving_renaming(sprint, "qa")
        variant = rename_submission(DIAG_SOURCE, renaming)
        specialized = grader.grade(variant)
        expected = FeedbackEngine(assignment1).grade(variant)
        assert specialized.render() == expected.render()
        assert specialized.to_dict() == expected.to_dict()

        [diag] = [
            d for d in specialized.diagnostics
            if d.check == "unused-variable"
        ]
        assert f"'{renaming['wasted']}'" in diag.message
        assert "wasted" not in diag.message
        # same token, same line; the column is looked up in the member's
        # own token stream, not copied from the representative
        assert diag.line == rep_unused[0].line
        [expected_diag] = [
            d for d in expected.diagnostics if d.check == "unused-variable"
        ]
        assert (diag.line, diag.column) == (
            expected_diag.line,
            expected_diag.column,
        )


class TestRecordIntegrity:
    @pytest.fixture()
    def record_and_sprint(self, assignment1, audit1):
        sprint = fingerprint_source(DIAG_SOURCE, audit1)
        report = FeedbackEngine(assignment1).grade(DIAG_SOURCE)
        record = build_cluster_record(assignment1, sprint, report)
        assert record is not None
        return record, sprint, report

    def test_specialize_round_trips_the_representative(
        self, record_and_sprint
    ):
        record, sprint, report = record_and_sprint
        rebuilt = specialize(record, sprint)
        assert rebuilt.render() == report.render()
        assert rebuilt.to_dict() == report.to_dict()

    def test_version_mismatch_raises(self, record_and_sprint):
        record, sprint, _report = record_and_sprint
        with pytest.raises(SpecializeError):
            specialize(dict(record, version=999), sprint)

    def test_slot_mismatch_raises(self, record_and_sprint):
        record, sprint, _report = record_and_sprint
        with pytest.raises(SpecializeError):
            specialize(dict(record, slots=record["slots"] + 1), sprint)


def test_rename_submission_leaves_strings_and_comments_alone():
    source = (
        "public class Main {\n"
        "    static int f() {\n"
        "        // accum is a comment\n"
        "        int accum = 0;\n"
        '        String s = "accum";\n'
        "        return accum;\n"
        "    }\n"
        "}\n"
    )
    renamed = rename_submission(source, {"accum": "xtotal"})
    assert "// accum is a comment" in renamed
    assert '"accum"' in renamed
    assert "int xtotal = 0;" in renamed
    assert "return xtotal;" in renamed
    assert "accum =" not in renamed
