"""Fingerprint stability: what buckets together and what must not."""

from __future__ import annotations

import pytest

from repro.cluster import rename_submission
from repro.cluster.fingerprint import fingerprint_graphs, fingerprint_source
from repro.core.engine import FeedbackEngine

from tests.cluster.conftest import make_variant, order_preserving_renaming

SOURCE = """\
public class Main {
    static int zorp(int blee) {
        int accum = 0;
        for (int kk = 0; kk < blee; kk++) {
            accum += 1000;
        }
        return accum;
    }
}
"""


def fp(source, audit):
    sprint = fingerprint_source(source, audit)
    assert sprint is not None
    return sprint


class TestBucketing:
    def test_order_preserving_rename_buckets_together(self, audit1):
        sprint = fp(SOURCE, audit1)
        assert {"zorp", "blee", "accum", "kk"} <= set(sprint.spellings)
        for variant in range(3):
            renamed = make_variant(SOURCE, audit1, variant)
            assert renamed != SOURCE
            assert fp(renamed, audit1).digest == sprint.digest

    def test_spellings_follow_the_member(self, audit1):
        sprint = fp(SOURCE, audit1)
        renamed = rename_submission(
            SOURCE, order_preserving_renaming(sprint, "qa")
        )
        other = fp(renamed, audit1)
        assert other.digest == sprint.digest
        assert other.spellings != sprint.spellings
        assert len(other.spellings) == len(sprint.spellings)

    def test_order_flipping_rename_splits_buckets(self, audit1):
        # 'accum' sorts before 'kk'; renaming only 'accum' past 'kk'
        # permutes the sorted identifier order, which Algorithm 1 can
        # observe — the order signature must split the buckets.
        sprint = fp(SOURCE, audit1)
        renamed = rename_submission(SOURCE, {"accum": "zzaccum"})
        assert fp(renamed, audit1).digest != sprint.digest

    def test_constant_respelling_buckets_together(self, audit1):
        base = fp(SOURCE, audit1)
        for spelling in ("1_000", "0x3E8"):
            respelled = SOURCE.replace("1000", spelling)
            assert fp(respelled, audit1).digest == base.digest
        assert fp(SOURCE.replace("1000", "1001"), audit1).digest != base.digest

    def test_intra_line_spacing_and_comments_bucket_together(self, audit1):
        base = fp(SOURCE, audit1)
        reflowed = SOURCE.replace(
            "accum += 1000;", "accum  +=  1000; // accumulate"
        )
        assert fp(reflowed, audit1).digest == base.digest

    def test_line_layout_splits_buckets(self, audit1):
        # diagnostics report line numbers, so members must agree on them
        base = fp(SOURCE, audit1)
        reflowed = SOURCE.replace("int accum = 0;", "int\naccum = 0;")
        assert fp(reflowed, audit1).digest != base.digest

    def test_statement_reordering_splits_buckets(self, audit1):
        swapped = SOURCE.replace(
            "int accum = 0;\n        for",
            "int unused = 7;\n        int accum = 0;\n        for",
        )
        base_plus = SOURCE.replace(
            "int accum = 0;\n        for",
            "int accum = 0;\n        int unused = 7;\n        for",
        )
        assert fp(swapped, audit1).digest != fp(base_plus, audit1).digest

    def test_string_literal_change_splits_buckets(self, audit1):
        with_string = SOURCE.replace(
            "return accum;", 'String tag = "alpha"; return accum;'
        )
        other = with_string.replace('"alpha"', '"beta"')
        assert fp(with_string, audit1).digest != fp(other, audit1).digest

    def test_unlexable_source_fingerprints_to_none(self, audit1):
        assert fingerprint_source('int x = "unclosed;', audit1) is None


class TestKeepDecisions:
    def test_digit_bearing_names_are_kept(self, audit1):
        sprint = fp(SOURCE.replace("accum", "accum1"), audit1)
        assert "accum1" not in sprint.spellings

    def test_names_quoted_in_string_literals_are_kept(self, audit1):
        quoted = SOURCE.replace(
            "return accum;", 'String tag = "accum"; return accum;'
        )
        sprint = fp(quoted, audit1)
        assert "accum" not in sprint.spellings
        assert "tag" in sprint.spellings

    def test_names_containing_template_literal_runs_are_kept(self, audit1):
        runs = [
            run for run in audit1.literal_runs
            if run.isalpha() and run.islower()
        ]
        if not runs:
            pytest.skip("assignment has no alphabetic literal runs")
        hazard = "zz" + sorted(runs)[0]
        sprint = fp(SOURCE.replace("accum", hazard), audit1)
        assert hazard not in sprint.spellings

    def test_report_vocabulary_words_are_kept(self, audit1):
        # "in your code" appears in the matching layer's message text,
        # so an identifier spelled 'code' must never be renamed
        assert "code" in audit1.keep_identifiers
        sprint = fp(SOURCE.replace("accum", "code"), audit1)
        assert "code" not in sprint.spellings

    def test_kept_spelling_divergence_splits_buckets(self, audit1):
        a = fp(SOURCE.replace("accum", "accum1"), audit1)
        b = fp(SOURCE.replace("accum", "accum2"), audit1)
        assert a.digest != b.digest


class TestGraphRefinement:
    def test_equal_token_fingerprints_imply_equal_graph_fingerprints(
        self, assignment1, audit1
    ):
        engine = FeedbackEngine(assignment1, frontend_cache_size=0)
        for source in assignment1.reference_solutions[:2]:
            variant = make_variant(source, audit1, 1)
            assert (
                fp(source, audit1).digest == fp(variant, audit1).digest
            ), "order-preserving variant must share the token fingerprint"
            graph_digests = []
            for member in (source, variant):
                entry = engine.frontend_entry(member)
                assert not isinstance(entry, str)
                _unit, graphs = entry
                graph_digests.append(fingerprint_graphs(graphs, audit1))
            assert graph_digests[0] == graph_digests[1]
