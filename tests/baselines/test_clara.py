"""Unit tests for the CLARA baseline simulator."""

import pytest

from repro.baselines import ClaraSim, trace_of
from repro.baselines.clara import event_trace_of
from repro.core.assignment import FunctionalTest
from repro.errors import ReproError
from repro.kb import get_assignment
from repro.kb.assignments.assignment1 import (
    FIGURE_2B,
    FIGURE_8A,
    FIGURE_8B,
)


@pytest.fixture(scope="module")
def a1():
    return get_assignment("assignment1")


class TestTraces:
    def test_trace_of_simple_program(self):
        test = FunctionalTest("f", (3,))
        traces = trace_of(
            "void f(int n) { int x = n + 1; System.out.println(x); }",
            test,
        )
        assert traces["n"] == (3,)
        assert traces["x"] == (4,)
        assert traces["out"] == ("4\n",)

    def test_event_trace_preserves_order(self):
        test = FunctionalTest("f", ())
        events = event_trace_of(
            "void f() { int a = 1; int b = 2; a = 3; }", test
        )
        assert events == ("1", "2", "3")

    def test_different_interleavings_different_event_traces(self):
        test = FunctionalTest("f", ())
        first = event_trace_of("void f() { int a = 1; int b = 2; }", test)
        second = event_trace_of("void f() { int b = 2; int a = 1; }", test)
        assert first != second


class TestClustering:
    def test_fit_requires_sources(self, a1):
        with pytest.raises(ReproError):
            ClaraSim(a1).fit([])

    def test_match_requires_fit(self, a1):
        with pytest.raises(ReproError):
            ClaraSim(a1).match(FIGURE_2B)

    def test_value_equivalent_variants_share_a_cluster(self, a1):
        space = a1.space()
        sources = [space.submission(i).source
                   for i in space.correct_indices(limit=12)]
        sim = ClaraSim(a1)
        # i++ vs i += 1 etc. produce identical traces
        assert sim.fit(sources) < len(sources)

    def test_structural_variants_fragment_clusters(self, a1):
        sim = ClaraSim(a1)
        count = sim.fit([
            a1.reference_solutions[0], FIGURE_2B, FIGURE_8A, FIGURE_8B,
        ])
        # the paper: CLARA needs one reference per variation
        assert count == 4

    def test_exact_member_matches_its_cluster(self, a1):
        sim = ClaraSim(a1)
        sim.fit([a1.reference_solutions[0]])
        result = sim.match(a1.reference_solutions[0])
        assert result.matched and result.distance == 0


class TestFigure8:
    def test_8a_reference_does_not_match_8b(self, a1):
        # the paper's Figure 8 claim verbatim
        sim = ClaraSim(a1)
        sim.fit([FIGURE_8A])
        result = sim.match(FIGURE_8B)
        assert not result.matched
        assert result.distance > 0
        assert result.repairs  # low-level line repairs offered

    def test_adding_8b_as_reference_fixes_it(self, a1):
        sim = ClaraSim(a1)
        sim.fit([FIGURE_8A, FIGURE_8B])
        assert sim.cluster_count == 2
        assert sim.match(FIGURE_8B).matched

    def test_repair_feedback_is_line_level(self, a1):
        sim = ClaraSim(a1)
        sim.fit([FIGURE_8A])
        result = sim.match(FIGURE_8B)
        assert any(line.startswith("Change line") for line in result.repairs)


class TestFailureModes:
    def test_infinite_loop_times_out(self, a1):
        sim = ClaraSim(a1, step_budget=5_000)
        sim.fit([a1.reference_solutions[0]])
        looping = """
        void assignment1(int[] a) {
            int i = 0;
            while (i < 10) { int x = 1; }
        }
        """
        result = sim.match(looping)
        assert result.timed_out
        assert "timed out" in result.render()

    def test_crash_reported(self, a1):
        sim = ClaraSim(a1)
        sim.fit([a1.reference_solutions[0]])
        crashing = """
        void assignment1(int[] a) {
            int x = a[999];
        }
        """
        result = sim.match(crashing)
        assert result.crashed and not result.timed_out

    def test_trace_cost_grows_with_input_size(self, a1):
        # ours is input-independent; CLARA's tracing cost is not
        big = FunctionalTest("assignment1", (list(range(500)),))
        small = FunctionalTest("assignment1", ([1, 2],))
        long_events = event_trace_of(a1.reference_solutions[0], big)
        short_events = event_trace_of(a1.reference_solutions[0], small)
        assert len(long_events) > 100 * len(short_events) / 10
        assert len(long_events) > len(short_events)
