"""Unit tests for the AutoGrader/Sketch baseline simulator."""

import pytest

from repro.baselines import AutoGraderSim
from repro.kb import get_assignment


@pytest.fixture(scope="module")
def sim():
    assignment = get_assignment("assignment1")
    return AutoGraderSim(assignment, assignment.space())


def choices_with(sim, **slots):
    names = [cp.name for cp in sim.space.choice_points]
    choices = [0] * len(names)
    for slot, option in slots.items():
        choices[names.index(slot)] = option
    return choices


class TestRepairSearch:
    def test_correct_submission_needs_no_repairs(self, sim):
        result = sim.repair(choices_with(sim))
        assert result.repaired and result.repair_count == 0

    def test_single_error_single_repair(self, sim):
        result = sim.repair(choices_with(sim, **{"odd-init": 1}))
        assert result.repaired
        assert result.repair_count == 1
        (repair,) = result.repairs
        assert repair.choice_point == "odd-init"
        assert (repair.from_text, repair.to_text) == ("1", "0")

    def test_two_errors_two_repairs(self, sim):
        result = sim.repair(choices_with(sim, **{"odd-init": 1, "bound": 1}))
        assert result.repaired and result.repair_count == 2

    def test_repairs_render_like_autograder_feedback(self, sim):
        result = sim.repair(choices_with(sim, **{"odd-init": 1}))
        assert "Change '1' to '0'" in result.render()

    def test_work_grows_with_repair_count(self, sim):
        work = []
        for slots in (
            {"odd-init": 1},
            {"odd-init": 1, "bound": 1},
            {"odd-init": 1, "bound": 1, "i-init": 1},
        ):
            result = sim.repair(choices_with(sim, **slots))
            assert result.repaired
            work.append(result.work)
        # the paper: performance degrades combinatorially with repairs
        assert work[0] < work[1] < work[2]
        assert work[2] > 10 * work[1] or work[1] > 10 * work[0]

    def test_max_repairs_bound_respected(self):
        assignment = get_assignment("assignment1")
        small = AutoGraderSim(assignment, assignment.space(), max_repairs=1)
        result = small.repair(
            choices_with(small, **{"odd-init": 1, "bound": 1})
        )
        assert not result.repaired

    def test_budget_exhaustion_reported(self):
        assignment = get_assignment("assignment1")
        tiny = AutoGraderSim(assignment, assignment.space(), work_budget=5)
        result = tiny.repair(
            choices_with(tiny, **{"odd-init": 1, "bound": 1})
        )
        assert not result.repaired and result.exhausted_budget
        assert "budget" in result.render()

    def test_repair_lands_on_functional_equivalent_not_reference(self, sim):
        # a print-order swap: AutoGrader demands exact-output equivalence,
        # so it *does* request a repair our technique would not
        result = sim.repair(choices_with(sim, prints=1))
        assert result.repaired
        assert result.repair_count >= 1

    def test_repair_by_space_index(self, sim):
        index = sim.space.encode(choices_with(sim, **{"odd-init": 1}))
        result = sim.repair_source_in_space(index)
        assert result.repaired and result.repair_count == 1
