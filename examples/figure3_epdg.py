"""Regenerate the paper's Figure 3: the EPDG of the Figure 2a submission.

Prints the graph in text form and emits Graphviz DOT (solid = Data,
dashed = Ctrl, exactly the paper's rendering convention).

    python examples/figure3_epdg.py [--dot]
"""

import sys

from repro.java import parse_submission
from repro.kb.assignments.assignment1 import FIGURE_2A
from repro.pdg import extract_epdg, to_dot


def main() -> None:
    unit = parse_submission(FIGURE_2A)
    graph = extract_epdg(unit.method("assignment1"))
    if "--dot" in sys.argv:
        print(to_dot(graph))
        return
    print("Figure 2a submission:")
    print(FIGURE_2A)
    print("Extended program dependence graph (paper Figure 3):")
    print(graph)
    print()
    print("Legend: '->' Data edge, '=>' Ctrl edge; node numbering may")
    print("differ from the paper's figure (construction order), the")
    print("node contents and edge structure are identical.")


if __name__ == "__main__":
    main()
