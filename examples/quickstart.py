"""Quickstart: grade student submissions for Assignment 1.

Runs the paper's three Figure 2 submissions through the feedback engine
and prints the personalized feedback each student would receive.

    python examples/quickstart.py
"""

from repro import FeedbackEngine, get_assignment
from repro.kb.assignments.assignment1 import FIGURE_2A, FIGURE_2B, FIGURE_2C


def main() -> None:
    assignment = get_assignment("assignment1")
    engine = FeedbackEngine(assignment)

    print(f"Assignment: {assignment.title}")
    print(f"Statement:  {assignment.statement}")
    print(f"Patterns:   {assignment.pattern_count}, "
          f"constraints: {assignment.constraint_count}")
    print("=" * 72)

    submissions = [
        ("Figure 2a (incorrect)", FIGURE_2A),
        ("Figure 2b (correct)", FIGURE_2B),
        ("Figure 2c (incorrect)", FIGURE_2C),
        ("does not compile", "void assignment1(int[] a) { int x = ; }"),
    ]
    for label, source in submissions:
        print(f"\n--- {label} ---")
        report = engine.grade(source)
        print(report.render())


if __name__ == "__main__":
    main()
