"""Author a brand-new assignment from existing knowledge-base patterns.

The paper's pitch is that patterns are *reusable*: an instructor
configures a new assignment by selecting patterns and adding a few
constraints, without writing new matching code.  This example builds a
"sum of squares up to n" assignment from three library patterns plus one
freshly-authored pattern, then grades two submissions with it.

    python examples/author_new_assignment.py
"""

from repro import FeedbackEngine, get_pattern
from repro.core import Assignment, FunctionalTest
from repro.matching.submission import ExpectedMethod
from repro.patterns import ExprTemplate, Pattern, PatternNode
from repro.patterns.model import EdgeExistenceConstraint
from repro.pdg import EdgeType, NodeType
from repro.pdg.graph import GraphEdge


def square_sum_pattern() -> Pattern:
    """A new pattern: accumulating squares of the loop variable."""
    return Pattern(
        name="square-sum",
        description="accumulating squares of the running index",
        nodes=[
            PatternNode(
                0, NodeType.UNTYPED,
                ExprTemplate(r"sq = 0", frozenset({"sq"})),
                approx=ExprTemplate(r"sq =", frozenset({"sq"})),
                feedback_correct="the square sum {sq} starts at 0",
                feedback_incorrect="the square sum {sq} should start at 0",
            ),
            PatternNode(1, NodeType.COND, ExprTemplate("", frozenset())),
            PatternNode(
                2, NodeType.ASSIGN,
                ExprTemplate(r"sq \+= qv \* qv|sq = sq \+ qv \* qv",
                             frozenset({"sq", "qv"})),
                approx=ExprTemplate(r"sq \+= qv|sq =",
                                    frozenset({"sq", "qv"})),
                feedback_correct="{sq} accumulates {qv} * {qv}",
                feedback_incorrect="{sq} must accumulate the square "
                                   "({qv} * {qv})",
            ),
        ],
        edges=[
            GraphEdge(0, 2, EdgeType.DATA),
            GraphEdge(1, 2, EdgeType.CTRL),
        ],
        feedback_present="You sum the squares into {sq}.",
        feedback_missing="We expected the squares to be accumulated "
                         "inside the loop.",
    )


def build_assignment() -> Assignment:
    expected = ExpectedMethod(
        name="sumOfSquares",
        patterns=[
            (get_pattern("range-loop"), 1),       # reused from the KB
            (square_sum_pattern(), 1),            # authored here
            (get_pattern("assign-print"), 1),     # reused from the KB
            (get_pattern("print-call"), None),    # reused from the KB
        ],
        constraints=[
            EdgeExistenceConstraint(
                name="square-sum-inside-range-loop",
                feedback_correct="Squares are accumulated inside the "
                                 "counting loop.",
                feedback_incorrect="Accumulate the squares inside the "
                                   "counting loop.",
                pattern_i="range-loop", node_i=1,
                pattern_j="square-sum", node_j=2,
                edge_type=EdgeType.CTRL,
            ),
            EdgeExistenceConstraint(
                name="square-sum-is-printed",
                feedback_correct="The square sum is printed to console.",
                feedback_incorrect="Print the accumulated square sum to "
                                   "console.",
                pattern_i="square-sum", node_i=2,
                pattern_j="assign-print", node_j=1,
                edge_type=EdgeType.DATA,
            ),
        ],
    )
    return Assignment(
        name="sum-of-squares",
        title="Sum of squares up to n",
        statement="Print the sum 1^2 + 2^2 + ... + n^2 to console.  "
                  "Header: void sumOfSquares(int n).",
        expected_methods=[expected],
        tests=[
            FunctionalTest("sumOfSquares", (3,), expected_stdout="14\n"),
            FunctionalTest("sumOfSquares", (1,), expected_stdout="1\n"),
            FunctionalTest("sumOfSquares", (10,), expected_stdout="385\n"),
        ],
    )


GOOD = """
void sumOfSquares(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++)
        s += i * i;
    System.out.println(s);
}
"""

BUGGY = """
void sumOfSquares(int n) {
    int s = 1;
    for (int i = 1; i <= n; i++)
        s += i;
    System.out.println(s);
}
"""


def main() -> None:
    assignment = build_assignment()
    engine = FeedbackEngine(assignment)
    for label, source in (("correct", GOOD), ("buggy", BUGGY)):
        print(f"--- {label} submission ---")
        print(engine.grade(source).render())
        print()


if __name__ == "__main__":
    main()
