"""Compare feedback styles: our engine vs AutoGrader vs CLARA.

Grades the same buggy Assignment-1 submission with all three systems and
prints their feedback side by side — the qualitative comparison of the
paper's Section VI-C in executable form.

    python examples/baseline_comparison.py
"""

from repro import FeedbackEngine, get_assignment
from repro.baselines import AutoGraderSim, ClaraSim


def main() -> None:
    assignment = get_assignment("assignment1")
    space = assignment.space()

    # a submission with two injected mistakes: odd sum initialized to 1
    # and an off-by-one loop bound
    names = [cp.name for cp in space.choice_points]
    choices = [0] * len(names)
    choices[names.index("odd-init")] = 1
    choices[names.index("bound")] = 1
    buggy = space.submission(space.encode(choices))
    print("Buggy submission:")
    print(buggy.source)

    print("=" * 72)
    print("Our technique (semantic patterns):")
    report = FeedbackEngine(assignment).grade(buggy.source)
    print(report.render())

    print("=" * 72)
    print("AutoGrader / Sketch (repair search over the error model):")
    autograder = AutoGraderSim(assignment, space)
    result = autograder.repair(choices)
    print(result.render())
    print(f"(explored {result.work} candidate programs)")

    print("=" * 72)
    print("CLARA (variable-trace matching against correct clusters):")
    clara = ClaraSim(assignment)
    clara.fit([space.reference.source])
    print(clara.match(buggy.source).render())


if __name__ == "__main__":
    main()
