"""MOOC-scale batch grading: the scenario the paper's intro motivates.

Samples a synthetic cohort from an assignment's error-model space (the
stand-in for a MOOC's submission stream), injects the duplication a
real MOOC exhibits (students resubmitting identical files), and pushes
everything through the batch pipeline (``repro.core.pipeline``): worker
pool, content-keyed result cache, per-phase metrics.  Prints an
instructor dashboard: throughput, cache hit rate, per-phase wall time,
verdict distribution, and the most common mistakes.

    python examples/mooc_batch_grading.py [assignment] [cohort-size] [mode]
"""

import random
import sys

from repro import get_assignment
from repro.core.pipeline import BatchGrader
from repro.matching.feedback import FeedbackStatus
from repro.synth import sample_submissions


def build_cohort(assignment, size: int, seed: int = 42):
    """A cohort with MOOC-style duplication: ~40% unique solutions.

    Students resubmit unchanged files and converge on the same fixes,
    so a realistic stream repeats sources heavily — exactly what the
    pipeline's content-keyed cache exploits.
    """
    space = assignment.space()
    unique = max(1, int(size * 0.4))
    originals = sample_submissions(space, unique, seed=seed)
    rng = random.Random(seed)
    cohort = [(f"student-{i:04d}", rng.choice(originals).source)
              for i in range(size)]
    return cohort


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "assignment1"
    cohort_size = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    mode = sys.argv[3] if len(sys.argv) > 3 else "thread"

    assignment = get_assignment(name)
    cohort = build_cohort(assignment, cohort_size)
    print(f"Assignment {name}: search space of "
          f"{assignment.space().size:,} programs, grading a cohort of "
          f"{len(cohort)} (mode={mode})")

    grader = BatchGrader(assignment, mode=mode)
    result = grader.grade_batch(cohort)

    print()
    print(result.stats.summary())

    print()
    counts = result.status_counts()
    print("Verdicts:", ", ".join(
        f"{count} {status}" for status, count in sorted(counts.items())
    ))

    mistakes: dict[str, int] = {}
    for report in result.reports:
        for comment in report.comments:
            if comment.status is not FeedbackStatus.CORRECT:
                key = f"{comment.source} [{comment.status}]"
                mistakes[key] = mistakes.get(key, 0) + 1
    if mistakes:
        print("\nTop mistakes across the cohort:")
        ranked = sorted(mistakes.items(), key=lambda kv: (-kv[1], kv[0]))
        for source, count in ranked[:8]:
            print(f"  {count:4d}  {source}")

    # Resubmission wave: the whole cohort resubmits unchanged files —
    # the cache answers everything without grading a single one again.
    wave = grader.grade_batch(cohort)
    print(f"\nResubmission wave: {wave.stats.submissions} submissions, "
          f"{wave.stats.graded} graded, cache hit rate "
          f"{100 * wave.stats.cache_hit_rate:.1f}%, "
          f"{wave.stats.throughput:,.0f} submissions/s")


if __name__ == "__main__":
    main()
