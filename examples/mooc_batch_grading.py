"""MOOC-scale batch grading: the scenario the paper's intro motivates.

Samples a synthetic cohort from an assignment's error-model space (the
stand-in for a MOOC's submission stream), runs it through the cohort
analytics, and prints an instructor dashboard: throughput, verdict
distribution, the most common mistakes, and agreement with functional
testing (paper Table I's D column).

    python examples/mooc_batch_grading.py [assignment] [cohort-size]
"""

import sys

from repro import get_assignment
from repro.core import analyze_cohort
from repro.synth import sample_submissions


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "assignment1"
    cohort_size = int(sys.argv[2]) if len(sys.argv) > 2 else 300

    assignment = get_assignment(name)
    space = assignment.space()
    cohort = [
        (f"submission-{s.index}", s.source)
        for s in sample_submissions(space, cohort_size, seed=42)
    ]
    print(f"Assignment {name}: search space of {space.size:,} programs, "
          f"grading a cohort of {len(cohort)}")

    analysis = analyze_cohort(assignment, cohort)
    print()
    print(analysis.summary())

    if analysis.discrepancies:
        print("\nDiscrepancy examples (pattern verdict vs tests):")
        for outcome in analysis.discrepancies[:5]:
            direction = (
                "pattern-positive / tests-fail" if outcome.positive
                else "tests-pass / pattern-negative"
            )
            print(f"  {outcome.label}: {direction}")


if __name__ == "__main__":
    main()
