"""The paper's Section VII future work, running.

Two extensions beyond the ICDE 2017 system, both implemented in this
reproduction:

1. **Pattern variant groups** — "patterns will be clustered by
   variations to achieve the same semantics": the index-jumping
   Assignment-1 submission (`i += 2`) goes from false-negative to fully
   positive once the access patterns become groups.
2. **Else-expression support** — "transforming else into
   if (i % 2 == 1)": enabling synthesized negated conditions lets the
   positive-form patterns match an if/else submission.

    python examples/futurework_extensions.py
"""

import dataclasses

from repro import FeedbackEngine, get_assignment
from repro.kb.extensions import (
    SKIP_INDEX_SUBMISSION,
    assignment1_with_variants,
)

IF_ELSE_SUBMISSION = """
void assignment1(int[] a) {
    int odd = 0;
    int even = 1;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 0)
            even *= a[i];
        else
            odd += a[i];
        i++;
    }
    System.out.println(odd);
    System.out.println(even);
}
"""


def verdict(engine, source):
    report = engine.grade(source)
    return "POSITIVE" if report.is_positive else "negative"


def main() -> None:
    base = get_assignment("assignment1")
    plain = FeedbackEngine(base)

    print("=== 1. Pattern variant groups (index jumping) ===")
    print(SKIP_INDEX_SUBMISSION)
    upgraded = FeedbackEngine(assignment1_with_variants())
    print(f"  ICDE 2017 knowledge base : {verdict(plain, SKIP_INDEX_SUBMISSION)}")
    print(f"  with variant groups      : {verdict(upgraded, SKIP_INDEX_SUBMISSION)}")

    print()
    print("=== 2. Else-expression support ===")
    print(IF_ELSE_SUBMISSION)
    with_else = FeedbackEngine(
        dataclasses.replace(base, synthesize_else_conditions=True)
    )
    print(f"  ICDE 2017 knowledge base : {verdict(plain, IF_ELSE_SUBMISSION)}")
    print(f"  with else synthesis      : {verdict(with_else, IF_ELSE_SUBMISSION)}")

    print()
    print("Both submissions pass the functional tests; the extensions")
    print("close the two 'functionally equivalent variation' discrepancy")
    print("families the paper's Section VI-B discusses.")


if __name__ == "__main__":
    main()
