"""The asyncio grading service: admission → workers → report.

:class:`GradingService` is the long-running front-end the ROADMAP's
"serves heavy traffic" goal calls for.  One request's life:

1. ``POST /assignments/{name}/grade`` arrives; body ``{"source": ...}``.
2. Validation (404 unknown assignment, 400 bad body, 413 oversized).
3. The per-assignment **result cache** answers duplicates instantly —
   the same content-keyed :class:`~repro.core.pipeline.ResultCache` the
   batch pipeline uses, shared across all requests for the lifetime of
   the service.  Cache hits bypass admission entirely: replay costs no
   worker time.
4. The assignment's **circuit breaker** may refuse (503 + Retry-After)
   while the assignment is quarantined for repeated timeouts.
5. **Admission control** bounds admitted-but-unfinished requests; the
   excess gets 429 + Retry-After instead of unbounded queueing.
6. A **worker** grades under a per-request deadline — cooperative
   first, hard kill as backstop — and the report returns as JSON
   (200 for ok/rejected/parse-error, 504 for timeout, 500 for
   internal error), byte-identical to what the offline
   :class:`~repro.core.pipeline.BatchGrader` produces for the same
   source.

``GET /healthz`` (liveness), ``/readyz`` (admission state),
``/metrics`` (JSON, or Prometheus text with ``?format=prometheus``)
round out the operational surface.  ``SIGTERM``/``SIGINT`` trigger a
graceful drain: readiness flips, new grades are refused, in-flight
work finishes, workers shut down.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import time
from dataclasses import dataclass, field

from repro.core.pipeline import (
    CACHEABLE_STATUSES,
    ResultCache,
    source_key,
)
from repro.core.report import GradingReport
from repro.core.store import ResultStore
from repro.errors import KnowledgeBaseError
from repro.kb import all_assignment_names, get_assignment
from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerRegistry
from repro.serve.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
)
from repro.serve.metrics import ServiceMetrics, render_prometheus
from repro.serve.pool import DEFAULT_KILL_GRACE, GradingWorkerPool

_GRADE_PATH = re.compile(r"^/assignments/([^/]+)/grade$")

#: HTTP status per report status; anything graded is a 200 — a student
#: submission that fails to parse is a *successful* grading.
_REPORT_HTTP_STATUS = {"timeout": 504, "error": 500}


@dataclass
class ServiceConfig:
    """Tunables for one :class:`GradingService` instance."""

    host: str = "127.0.0.1"
    port: int = 8652  # 0 = ephemeral (tests / benchmarks)
    workers: int = field(
        default_factory=lambda: max(2, min(4, os.cpu_count() or 2))
    )
    #: ``"process"`` (hard deadline kills) or ``"inline"`` (threads,
    #: cooperative deadline only — tests and fork-less platforms).
    pool_mode: str = "process"
    #: Admitted-but-unfinished requests beyond the worker slots; the
    #: admission capacity is ``workers + queue_capacity``.
    queue_capacity: int = 64
    default_deadline_seconds: float = 10.0
    max_deadline_seconds: float = 30.0
    kill_grace_seconds: float = DEFAULT_KILL_GRACE
    max_body_bytes: int = 1 << 20
    cache_size: int = 8192
    #: Directory for the persistent cross-process result cache
    #: (:class:`~repro.core.store.ResultStore`); ``None`` disables it.
    #: A restarted service — or a batch run pointed at the same
    #: directory — replays previously graded submissions from disk.
    cache_dir: str | os.PathLike | None = None
    #: Store representation for ``cache_dir``: ``"auto"`` (default;
    #: picks SQLite when the directory holds a ``store.sqlite``, which
    #: is what ``repro store migrate`` leaves behind), ``"json"``, or
    #: ``"sqlite"``.  SQLite is the right choice when several service
    #: shards share one cache directory.
    store_backend: str = "auto"
    #: Grade via submission clustering (:mod:`repro.cluster`): each
    #: worker buckets structurally duplicate submissions and
    #: specializes one representative's report instead of re-grading.
    #: Output-preserving; worth enabling for duplicate-heavy cohorts,
    #: a no-op overhead (one extra lex per request) for diverse ones.
    cluster: bool = False
    #: Grade with the repair channel (:mod:`repro.repair`): rejected
    #: submissions additionally carry corpus-backed, functionally
    #: verified fix suggestions.  When both ``cluster`` and ``repair``
    #: are on, workers fall back to full grading per submission —
    #: suggestions are member-specific, so representative replay is
    #: unsound.  Stored reports scope under the repair fingerprint, so
    #: a plain service sharing the cache directory keeps its
    #: byte-identical output.
    repair: bool = False
    #: Grade with the performance analyzer (:mod:`repro.analysis.perf`):
    #: reports additionally carry loop-complexity findings, escalated
    #: when the dynamic cost-shape fitter confirms them.  Cluster-mode
    #: workers fall back to full grading per submission (perf findings
    #: are member-specific).  Stored reports scope under the perf
    #: fingerprint, so a plain service sharing the cache directory
    #: keeps its byte-identical output.
    perf: bool = False
    breaker_window: int = 20
    breaker_min_volume: int = 5
    breaker_failure_ratio: float = 0.5
    breaker_cooldown_seconds: float = 30.0
    breaker_half_open_probes: int = 2
    drain_timeout_seconds: float = 30.0
    #: Honor the ``debug_sleep_seconds`` request field (load tests use
    #: it to simulate wedged submissions).  Never enable in production.
    debug_hooks: bool = False


class GradingService:
    """Serves grade requests over HTTP with bounded latency and load."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(
            capacity=self.config.workers + self.config.queue_capacity
        )
        self.breakers = BreakerRegistry(
            window=self.config.breaker_window,
            min_volume=self.config.breaker_min_volume,
            failure_ratio=self.config.breaker_failure_ratio,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
            half_open_probes=self.config.breaker_half_open_probes,
        )
        self.pool = GradingWorkerPool(
            workers=self.config.workers,
            mode=self.config.pool_mode,
            kill_grace_seconds=self.config.kill_grace_seconds,
            store_root=(
                str(self.config.cache_dir)
                if self.config.cache_dir is not None
                else None
            ),
            store_backend=self.config.store_backend,
        )
        self._caches: dict[str, ResultCache] = {}
        self._stores: dict[str, ResultStore] = {}
        # lazily-computed KB lint report (the KB is immutable for the
        # lifetime of a service process, so one run is enough)
        self._lint_payload: dict | None = None
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._draining = False
        self._drain_requested = asyncio.Event()
        self.port = self.config.port

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Start workers and begin accepting connections."""
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(
        self, install_signal_handlers: bool = True
    ) -> int:
        """Run until a drain is requested; returns a process exit code."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_drain)
        await self._drain_requested.wait()
        clean = await self.drain()
        return 0 if clean else 1

    def request_drain(self) -> None:
        """Signal-safe drain trigger (idempotent)."""
        self._drain_requested.set()

    async def drain(self) -> bool:
        """Graceful shutdown: finish in-flight work, refuse the rest.

        Returns ``True`` when everything in flight completed within
        ``drain_timeout_seconds``.
        """
        self._draining = True
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        expiry = time.monotonic() + self.config.drain_timeout_seconds
        while (
            (not self.admission.idle or self._busy > 0)
            and time.monotonic() < expiry
        ):
            await asyncio.sleep(0.02)
        clean = self.admission.idle and self._busy == 0
        await self.pool.stop()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        return clean

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as error:
                    self.metrics.increment("serve.bad_requests")
                    await self._write(writer, _error_response(error), False)
                    return
                if request is None:
                    return
                self._busy += 1
                try:
                    response = await self._safe_dispatch(request)
                    keep_alive = request.keep_alive and not self._draining
                    await self._write(writer, response, keep_alive)
                finally:
                    self._busy -= 1
                if not keep_alive:
                    return
        except (
            ConnectionResetError, BrokenPipeError, asyncio.CancelledError
        ):
            pass  # client went away or the drain is closing us
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        response: HttpResponse,
        keep_alive: bool,
    ) -> None:
        writer.write(response.encode(keep_alive))
        await writer.drain()

    async def _safe_dispatch(self, request: HttpRequest) -> HttpResponse:
        try:
            return await self._dispatch(request)
        except HttpError as error:
            if error.status < 500:
                self.metrics.increment("serve.bad_requests")
            else:
                self.metrics.increment("serve.internal_errors")
            return _error_response(error)
        except Exception as exc:  # noqa: BLE001 - never kill the connection
            self.metrics.increment("serve.internal_errors")
            return HttpResponse.json(
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                status=500,
            )

    # -- routing ---------------------------------------------------------

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        self.metrics.increment("serve.requests_total")
        path = request.path
        match = _GRADE_PATH.match(path)
        if match is not None:
            if request.method != "POST":
                raise HttpError(405, "grading requires POST")
            return await self._grade(request, match.group(1))
        if request.method != "GET":
            raise HttpError(405, f"unsupported method {request.method}")
        if path == "/healthz":
            return HttpResponse.text("ok\n")
        if path == "/readyz":
            if self._draining:
                return HttpResponse.text("draining\n", status=503)
            return HttpResponse.text("ready\n")
        if path == "/metrics":
            return self._metrics_response(request)
        if path == "/assignments":
            return HttpResponse.json(
                {"assignments": list(all_assignment_names())}
            )
        if path == "/lint":
            return self._lint_response()
        if path == "/":
            return HttpResponse.json({
                "service": "repro-grading",
                "endpoints": [
                    "POST /assignments/{name}/grade",
                    "GET /assignments",
                    "GET /healthz",
                    "GET /readyz",
                    "GET /lint",
                    "GET /metrics",
                ],
            })
        self.metrics.increment("serve.not_found")
        raise HttpError(404, f"no route for {path}")

    def _lint_response(self) -> HttpResponse:
        """KB lint report for operators (``repro lint-kb`` over HTTP)."""
        if self._lint_payload is None:
            from repro.analysis import lint_knowledge_base

            self._lint_payload = lint_knowledge_base().to_dict()
        status = 200 if self._lint_payload["ok"] else 503
        return HttpResponse.json(self._lint_payload, status=status)

    def _metrics_response(self, request: HttpRequest) -> HttpResponse:
        self.metrics.counters["serve.worker_respawns"] = self.pool.respawns
        snapshot = self.metrics.snapshot(
            queue_depth=self.admission.pending,
            queue_capacity=self.admission.capacity,
            workers=self.config.workers,
            breakers=self.breakers.snapshot(),
            draining=self._draining,
            store=self._store_info(),
        )
        if request.query.get("format") == "prometheus":
            return HttpResponse.text(render_prometheus(snapshot))
        return HttpResponse.json(snapshot)

    # -- grading ---------------------------------------------------------

    def _cache(self, assignment_name: str) -> ResultCache:
        cache = self._caches.get(assignment_name)
        if cache is None:
            cache = ResultCache(maxsize=self.config.cache_size)
            self._caches[assignment_name] = cache
        return cache

    def _store_info(self) -> dict:
        """``/metrics`` store section: which backend this service uses.

        Resolved without constructing a store (``"auto"`` is decided by
        what sits in the cache directory), so the section is accurate
        before the first grade request touches disk.
        """
        if self.config.cache_dir is None:
            return {"enabled": False, "backend": "none"}
        from repro.core.store import resolve_backend

        return {
            "enabled": True,
            "backend": resolve_backend(
                self.config.cache_dir, self.config.store_backend
            ),
        }

    def _store(self, assignment_name: str) -> ResultStore | None:
        """Per-assignment persistent store, or ``None`` when disabled."""
        if self.config.cache_dir is None:
            return None
        store = self._stores.get(assignment_name)
        if store is None:
            store = ResultStore(
                self.config.cache_dir,
                get_assignment(assignment_name),
                backend=self.config.store_backend,
                repair=self.config.repair,
                perf=self.config.perf,
            )
            self._stores[assignment_name] = store
        return store

    async def _grade(
        self, request: HttpRequest, assignment_name: str
    ) -> HttpResponse:
        self.metrics.increment("serve.grade_requests")
        started = time.perf_counter()
        if self._draining:
            self.metrics.increment("serve.rejected_draining")
            return HttpResponse.json(
                {"error": "service is draining"},
                status=503,
                headers={"Retry-After": "5"},
            )
        payload = request.json()
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise HttpError(
                400, "body must include a non-empty 'source' string"
            )
        label = payload.get("label")
        if label is not None and not isinstance(label, str):
            raise HttpError(400, "'label' must be a string")
        try:
            get_assignment(assignment_name)
        except KnowledgeBaseError as exc:
            self.metrics.increment("serve.not_found")
            raise HttpError(
                404, f"unknown assignment {assignment_name!r}"
            ) from exc
        deadline_seconds = self._deadline_from(payload)
        hang_seconds = self._debug_sleep_from(payload)

        # replayed reports cost no worker time: cache hits bypass both
        # the breaker and admission
        cache = self._cache(assignment_name)
        key = source_key(source)
        cached = cache.get(key)
        if cached is not None:
            self.metrics.increment("serve.cache_hits")
            self.metrics.increment("serve.completed")
            self.metrics.pipeline.record_submission(cache_hit=True)
            elapsed = time.perf_counter() - started
            self.metrics.latency.observe(elapsed)
            return self._report_response(cached, label, True, elapsed)

        # second chance: the persistent cross-process store.  A hit is
        # promoted into the in-memory cache and replayed like any other
        # cache hit — no worker time, no admission.
        store = self._store(assignment_name)
        if store is not None:
            persisted = store.get(key)
            if persisted is not None:
                self.metrics.pipeline.record_counter("cache.store_hits")
                cache.put(key, persisted)
                self.metrics.increment("serve.cache_hits")
                self.metrics.increment("serve.completed")
                self.metrics.pipeline.record_submission(cache_hit=True)
                elapsed = time.perf_counter() - started
                self.metrics.latency.observe(elapsed)
                return self._report_response(persisted, label, True, elapsed)
            self.metrics.pipeline.record_counter("cache.store_misses")

        breaker = self.breakers.get(assignment_name)
        if not breaker.allow():
            self.metrics.increment("serve.rejected_breaker_open")
            return HttpResponse.json(
                {
                    "error": (
                        f"assignment {assignment_name!r} is quarantined "
                        "after repeated grading timeouts"
                    ),
                    "breaker": breaker.snapshot(),
                },
                status=503,
                headers={
                    "Retry-After": str(breaker.retry_after_seconds())
                },
            )
        if not self.admission.try_admit():
            self.metrics.increment("serve.rejected_queue_full")
            retry = self.admission.retry_after_seconds(self.config.workers)
            return HttpResponse.json(
                {
                    "error": "grading queue is full",
                    "queue_depth": self.admission.pending,
                    "queue_capacity": self.admission.capacity,
                },
                status=429,
                headers={"Retry-After": str(retry)},
            )
        self.metrics.increment("serve.admitted")
        try:
            result = await self.pool.grade(
                assignment_name, source, deadline_seconds, hang_seconds,
                cluster=self.config.cluster,
                repair=self.config.repair,
                perf=self.config.perf,
            )
        finally:
            self.admission.release(time.perf_counter() - started)

        report = result.report
        breaker.record(failure=report.status == "timeout")
        if result.collector is not None:
            self.metrics.pipeline.merge_phases(result.collector)
        self.metrics.pipeline.record_submission(
            seconds=result.seconds,
            parse_error=report.status == "parse-error",
            timeout=report.status == "timeout",
            error=report.status == "error",
        )
        cache.put(key, report)  # refuses timeout/error statuses itself
        if store is not None and report.status in CACHEABLE_STATUSES:
            if store.put(key, report):
                self.metrics.pipeline.record_counter("cache.store_writes")
            else:
                self.metrics.pipeline.record_counter("cache.store_errors")
        if result.killed:
            self.metrics.increment("serve.deadline_kills")
        elif report.status == "timeout":
            self.metrics.increment("serve.deadline_timeouts")
        self.metrics.increment("serve.completed")
        elapsed = time.perf_counter() - started
        self.metrics.latency.observe(elapsed)
        return self._report_response(report, label, False, elapsed)

    def _deadline_from(self, payload: dict) -> float:
        raw = payload.get(
            "deadline_seconds", self.config.default_deadline_seconds
        )
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) \
                or raw <= 0:
            raise HttpError(400, "'deadline_seconds' must be > 0")
        return min(float(raw), self.config.max_deadline_seconds)

    def _debug_sleep_from(self, payload: dict) -> float:
        raw = payload.get("debug_sleep_seconds", 0)
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) \
                or raw < 0:
            raise HttpError(400, "'debug_sleep_seconds' must be >= 0")
        if raw and not self.config.debug_hooks:
            raise HttpError(
                400, "'debug_sleep_seconds' requires --debug-hooks"
            )
        return float(raw)

    @staticmethod
    def _report_response(
        report: GradingReport,
        label: str | None,
        from_cache: bool,
        elapsed_seconds: float,
    ) -> HttpResponse:
        return HttpResponse.json(
            {
                "label": label,
                "from_cache": from_cache,
                "latency_ms": round(1000 * elapsed_seconds, 3),
                "report": report.to_dict(),
            },
            status=_REPORT_HTTP_STATUS.get(report.status, 200),
        )


def _error_response(error: HttpError) -> HttpResponse:
    return HttpResponse.json(
        {"error": error.detail}, status=error.status
    )
