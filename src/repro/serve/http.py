"""Hand-rolled HTTP/1.1 over asyncio streams.

The grading service deliberately depends on nothing outside the
standard library, so this module implements the small slice of
HTTP/1.1 it needs: request-line + header parsing with hard size
limits, ``Content-Length`` bodies (chunked uploads are refused with
501), keep-alive connection reuse, and response encoding.  Anything
malformed maps to an :class:`HttpError` carrying the status code the
connection handler should answer with — parsing never crashes the
connection task.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard limits keeping one abusive client from ballooning server memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 64
MAX_HEADER_LINE = 8192
DEFAULT_MAX_BODY = 1 << 20  # 1 MiB of Java source is a *very* long lab

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that must be answered with an error status."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request (headers lower-cased, body fully read)."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    def json(self) -> dict:
        """The body as a JSON object, or 400."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload


@dataclass
class HttpResponse:
    """One response; :meth:`encode` produces the bytes on the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls, payload: dict, status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> "HttpResponse":
        return cls(
            status=status,
            body=(json.dumps(payload) + "\n").encode("utf-8"),
            content_type="application/json",
            headers=dict(headers or {}),
        )

    @classmethod
    def text(
        cls, content: str, status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> "HttpResponse":
        return cls(
            status=status,
            body=content.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
            headers=dict(headers or {}),
        )

    def encode(self, keep_alive: bool) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    """One CRLF-terminated line, bounded by ``limit`` bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "header line too long") from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError from exc
        raise HttpError(400, "truncated request") from exc
    if len(line) > limit:
        raise HttpError(431, "header line too long")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> HttpRequest | None:
    """Parse one request; ``None`` on clean EOF between requests.

    Raises :class:`HttpError` for anything malformed or over-limit; the
    connection handler converts that into an error response and closes.
    """
    try:
        request_line = await _read_line(reader, MAX_REQUEST_LINE)
    except EOFError:
        return None
    if not request_line:
        # tolerate a stray blank line between pipelined requests
        try:
            request_line = await _read_line(reader, MAX_REQUEST_LINE)
        except EOFError:
            return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version}")

    headers: dict[str, str] = {}
    while True:
        try:
            line = await _read_line(reader, MAX_HEADER_LINE)
        except EOFError as exc:
            raise HttpError(400, "truncated headers") from exc
        if not line:
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(431, "too many headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked uploads are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from exc
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body:
        raise HttpError(413, f"body exceeds {max_body} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc

    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )
