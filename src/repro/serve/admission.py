"""Bounded admission control with explicit backpressure.

MOOC cohorts are bursty — a deadline hour can multiply the request
rate by orders of magnitude.  An unbounded server queue turns that
burst into unbounded latency for *everyone*; the controller instead
bounds the number of admitted-but-unfinished requests and refuses the
excess immediately with ``429 Too Many Requests`` plus a
``Retry-After`` estimate, so clients back off instead of piling on.

The estimate is honest rather than fancy: an exponentially-weighted
average of recent service times, scaled by the queue depth ahead of
the retrying client and divided by the worker count.  All accounting
happens on the event-loop thread, so plain integers suffice.
"""

from __future__ import annotations

import math

#: Smoothing factor for the service-time EWMA (≈ last ~10 requests).
_EWMA_ALPHA = 0.2

#: Fallback service-time guess (seconds) before any request finished.
_DEFAULT_SERVICE_SECONDS = 0.25


class AdmissionController:
    """Counts in-flight work and refuses admissions beyond capacity.

    ``capacity`` bounds admitted-but-unfinished requests: the ones
    being graded by workers *plus* the ones waiting for a worker.  A
    drain (:meth:`begin_drain`) refuses all new admissions while
    letting the in-flight ones finish.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.pending = 0
        self.draining = False
        self._ewma_seconds: float | None = None

    def try_admit(self) -> bool:
        """Admit one request, or refuse (full / draining)."""
        if self.draining or self.pending >= self.capacity:
            return False
        self.pending += 1
        return True

    def release(self, service_seconds: float | None = None) -> None:
        """One admitted request finished (however it ended)."""
        if self.pending <= 0:
            raise RuntimeError("release() without a matching try_admit()")
        self.pending -= 1
        if service_seconds is not None and service_seconds >= 0:
            if self._ewma_seconds is None:
                self._ewma_seconds = service_seconds
            else:
                self._ewma_seconds += _EWMA_ALPHA * (
                    service_seconds - self._ewma_seconds
                )

    def retry_after_seconds(self, workers: int) -> int:
        """Whole-second ``Retry-After`` estimate for a refused client.

        Time to clear the current backlog through ``workers`` grading
        slots at the recent average service time, clamped to [1, 60] —
        a floor so clients never hot-loop, a ceiling so a slow spell
        does not park the cohort for minutes.
        """
        per_request = (
            self._ewma_seconds
            if self._ewma_seconds is not None
            else _DEFAULT_SERVICE_SECONDS
        )
        estimate = self.pending * per_request / max(1, workers)
        return max(1, min(60, math.ceil(estimate)))

    def begin_drain(self) -> None:
        self.draining = True

    @property
    def idle(self) -> bool:
        return self.pending == 0
