"""Process-backed grading workers with deadline kills and respawn.

The batch pipeline's :class:`~concurrent.futures.ProcessPoolExecutor`
is the wrong tool for an always-on service: it cannot cancel a running
job, and killing a worker poisons the whole pool.  This pool manages
its workers directly — one long-lived process per slot, each with a
private pipe — so a request that blows through its deadline is ended
by killing *that* worker and respawning it, while every other in-flight
request keeps running.

Deadlines are two-layered, mirroring the batch pipeline's
``max_seconds`` guard:

* the **cooperative** deadline travels with the job; the child's
  grading phases and matcher search loop check it and return a
  ``timeout`` report quickly — the cheap, common path;
* the **hard** deadline (cooperative + a grace period) is enforced
  parent-side with a pipe poll; if the child has not answered by then
  it is assumed wedged (C-level loop, pathological parse) and killed.

Workers keep one :class:`~repro.core.engine.FeedbackEngine` per
assignment alive across requests, so pattern search plans and
assignment state — the PR-2 caches — are reused for the whole worker
lifetime, not rebuilt per request.  The content-keyed result cache
lives in the *parent* (the service), in front of this pool.

``mode="inline"`` grades in the event loop's executor threads with
only the cooperative deadline — no processes, no hard kill.  It exists
for unit tests and platforms where fork is expensive; the service
default is ``"process"``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker

from repro.core.engine import FeedbackEngine
from repro.core.pipeline import _grade_one
from repro.core.report import GradingReport
from repro.instrumentation import PhaseCollector
from repro.kb import get_assignment

POOL_MODES = ("process", "inline")

#: Extra wall-clock seconds the parent grants beyond the cooperative
#: deadline before it kills the worker.
DEFAULT_KILL_GRACE = 0.5


@dataclass
class PoolResult:
    """One grading job's outcome as seen by the service."""

    report: GradingReport
    #: Child-side phase timings/counters; ``None`` when the worker was
    #: killed before answering (its partial stats die with it).
    collector: PhaseCollector | None
    seconds: float
    #: True when the hard deadline killed the worker (the report is a
    #: parent-synthesized ``timeout``).
    killed: bool = False


def _timeout_report(assignment_name: str, max_seconds: float | None,
                    killed: bool) -> GradingReport:
    if killed:
        detail = (
            f"grading exceeded the {max_seconds:g}s deadline and the "
            "worker was terminated"
            if max_seconds is not None
            else "grading exceeded its deadline and the worker was "
                 "terminated"
        )
    else:
        detail = (
            f"grading exceeded the {max_seconds:g}s wall-clock limit"
            if max_seconds is not None
            else "grading exceeded its wall-clock limit"
        )
    return GradingReport(assignment_name=assignment_name, timeout=detail)


# -- child side ----------------------------------------------------------

def _close_inherited_fds(keep: frozenset[int]) -> None:
    """Close fds a forked worker inherited but does not own.

    A fork copies *every* open parent fd: sibling workers' pipes (whose
    stray write ends stop a dead sibling's sentinel from ever firing,
    stalling ``Process.join``) and live client sockets (whose stray
    dups suppress the EOF clients expect after the parent closes a
    connection).  Only the worker's own pipe, its parent sentinel, and
    stdio survive.  Best-effort: without procfs this is a no-op.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover - no procfs
        return
    for fd in fds:
        if fd > 2 and fd not in keep:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass


def _build_grader(
    assignment_name: str,
    cluster: bool,
    repair: bool = False,
    perf: bool = False,
    store_root: str | None = None,
    store_backend: str = "auto",
):
    """One grading entry point for ``assignment_name``.

    With ``cluster=True`` the engine is wrapped in a
    :class:`~repro.cluster.grader.ClusterGrader` whose bucket registry
    lives for the worker's lifetime: structural duplicates across
    requests specialize instead of re-grading.  Workers keep buckets in
    memory only — the parent-side result cache and store already handle
    cross-process reuse at the report level.

    With ``repair=True`` the engine carries a
    :class:`~repro.repair.engine.RepairEngine`; ``store_root`` (the
    service's cache directory, when configured) lets workers share one
    persisted corpus instead of each building its own.  ``perf=True``
    attaches a :class:`~repro.analysis.perf.analyzer.PerfAnalyzer`, so
    graded submissions carry performance findings.
    """
    assignment = get_assignment(assignment_name)
    repairer = None
    if repair:
        from repro.core.store import ResultStore
        from repro.repair.engine import RepairEngine

        store = (
            ResultStore(
                store_root, assignment, backend=store_backend, repair=True
            )
            if store_root is not None
            else None
        )
        repairer = RepairEngine.for_assignment(assignment, store=store)
    perf_analyzer = None
    if perf:
        from repro.analysis.perf.analyzer import PerfAnalyzer

        perf_analyzer = PerfAnalyzer(assignment)
    engine = FeedbackEngine(
        assignment, frontend_cache_size=0, repairer=repairer,
        perf_analyzer=perf_analyzer,
    )
    if cluster:
        from repro.cluster.grader import ClusterGrader

        return ClusterGrader(engine)
    return engine


def _worker_main(
    conn, store_root: str | None = None, store_backend: str = "auto"
) -> None:
    """Child loop: engines cached per assignment, one job at a time.

    Jobs are ``(assignment_name, source, max_seconds, hang_seconds,
    cluster, repair, perf)``; replies are ``(report, collector,
    seconds)``.
    ``hang_seconds`` is the load-test hook: it stalls the worker
    *before* grading, standing in for the pathological submission the
    hard deadline exists for.  A ``None`` job is the shutdown sentinel.
    ``store_root``/``store_backend`` are fixed per pool and only feed
    repair-enabled graders (corpus sharing).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent drives shutdown
    keep = {conn.fileno()}
    parent = multiprocessing.parent_process()
    if parent is not None and parent.sentinel is not None:
        keep.add(parent.sentinel)
    tracker_fd = getattr(
        getattr(resource_tracker, "_resource_tracker", None), "_fd", None
    )
    if tracker_fd is not None:
        keep.add(tracker_fd)
    _close_inherited_fds(frozenset(keep))
    engines: dict[tuple[str, bool, bool, bool], object] = {}
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        (
            assignment_name, source, max_seconds, hang_seconds, cluster,
            repair, perf,
        ) = job
        try:
            if hang_seconds:
                time.sleep(hang_seconds)
            engine = engines.get((assignment_name, cluster, repair, perf))
            if engine is None:
                engine = _build_grader(
                    assignment_name, cluster, repair, perf,
                    store_root, store_backend,
                )
                engines[(assignment_name, cluster, repair, perf)] = engine
            result = _grade_one(engine, source, max_seconds)
        except Exception as exc:  # noqa: BLE001 - keep the worker alive
            result = (
                GradingReport(
                    assignment_name=assignment_name,
                    error=f"{type(exc).__name__}: {exc}",
                ),
                PhaseCollector(),
                0.0,
            )
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


# -- parent side ---------------------------------------------------------

class _WorkerHandle:
    """One worker process + its pipe; used by one request at a time."""

    #: Serializes forks: two handles created concurrently from executor
    #: threads must not leak each other's pipe/sentinel fds into their
    #: children, or a dead worker's sentinel never fires and ``join``
    #: stalls for its full timeout.
    _spawn_lock = threading.Lock()

    def __init__(
        self, context, store_root: str | None = None,
        store_backend: str = "auto",
    ):
        self._context = context
        with self._spawn_lock:
            parent_conn, child_conn = context.Pipe(duplex=True)
            self.conn = parent_conn
            self.process = context.Process(
                target=_worker_main,
                args=(child_conn, store_root, store_backend),
                daemon=True,
            )
            self.process.start()
            child_conn.close()

    def execute(
        self,
        assignment_name: str,
        source: str,
        max_seconds: float | None,
        hang_seconds: float,
        hard_timeout: float | None,
        cluster: bool = False,
        repair: bool = False,
        perf: bool = False,
    ) -> tuple[PoolResult, bool]:
        """Run one job (blocking); returns ``(result, worker_dead)``."""
        started = time.perf_counter()
        try:
            self.conn.send((assignment_name, source, max_seconds,
                            hang_seconds, cluster, repair, perf))
            if self.conn.poll(hard_timeout):
                report, collector, seconds = self.conn.recv()
                return PoolResult(report, collector, seconds), False
        except (BrokenPipeError, EOFError, OSError):
            self.terminate()
            elapsed = time.perf_counter() - started
            return (
                PoolResult(
                    GradingReport(
                        assignment_name=assignment_name,
                        error="grading worker died unexpectedly",
                    ),
                    None,
                    elapsed,
                ),
                True,
            )
        # hard deadline: the worker is wedged — kill it
        self.terminate()
        elapsed = time.perf_counter() - started
        return (
            PoolResult(
                _timeout_report(assignment_name, max_seconds, killed=True),
                None,
                elapsed,
                killed=True,
            ),
            True,
        )

    def terminate(self) -> None:
        try:
            self.process.kill()
            self.process.join(timeout=1)
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        """Polite stop: sentinel, short join, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2)
        if self.process.is_alive():
            self.terminate()
        else:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass


class GradingWorkerPool:
    """Fixed-size pool of grading workers behind an asyncio free-list.

    :meth:`grade` takes a free worker, runs the blocking pipe exchange
    in a thread, and returns the worker — or its freshly-spawned
    replacement after a kill — to the free-list.  Capacity is exactly
    ``workers``: callers queue on the free-list, and the service's
    admission controller bounds how many may wait.
    """

    def __init__(
        self,
        workers: int = 2,
        mode: str = "process",
        kill_grace_seconds: float = DEFAULT_KILL_GRACE,
        store_root: str | None = None,
        store_backend: str = "auto",
    ):
        if mode not in POOL_MODES:
            raise ValueError(
                f"unknown pool mode {mode!r}; expected one of {POOL_MODES}"
            )
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.mode = mode
        self.kill_grace_seconds = kill_grace_seconds
        self.store_root = store_root
        self.store_backend = store_backend
        self.respawns = 0
        self._free: asyncio.Queue = asyncio.Queue()
        self._executor: ThreadPoolExecutor | None = None
        self._context = None
        # inline mode: (assignment, cluster, repair, perf) -> engine
        self._engines: dict[tuple[str, bool, bool, bool], object] = {}
        self._started = False

    def _spawn_handle(self) -> "_WorkerHandle":
        return _WorkerHandle(
            self._context, self.store_root, self.store_backend
        )

    async def start(self) -> None:
        if self._started:
            return
        # +workers threads so respawns never wait behind executions
        self._executor = ThreadPoolExecutor(
            max_workers=2 * self.workers,
            thread_name_prefix="repro-serve-pool",
        )
        if self.mode == "process":
            methods = multiprocessing.get_all_start_methods()
            self._context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            loop = asyncio.get_running_loop()
            handles = await asyncio.gather(*[
                loop.run_in_executor(self._executor, self._spawn_handle)
                for _ in range(self.workers)
            ])
            for handle in handles:
                self._free.put_nowait(handle)
        else:
            for _ in range(self.workers):
                self._free.put_nowait(None)  # inline slots
        self._started = True

    async def grade(
        self,
        assignment_name: str,
        source: str,
        max_seconds: float | None,
        hang_seconds: float = 0.0,
        cluster: bool = False,
        repair: bool = False,
        perf: bool = False,
    ) -> PoolResult:
        """Grade one submission on the next free worker."""
        if not self._started:
            raise RuntimeError("pool not started")
        slot = await self._free.get()
        loop = asyncio.get_running_loop()
        try:
            if self.mode == "inline":
                return await self._grade_inline(
                    loop, assignment_name, source, max_seconds,
                    hang_seconds, cluster, repair, perf,
                )
            hard_timeout = (
                max_seconds + self.kill_grace_seconds
                if max_seconds is not None
                else None
            )
            result, worker_dead = await loop.run_in_executor(
                self._executor, slot.execute,
                assignment_name, source, max_seconds, hang_seconds,
                hard_timeout, cluster, repair, perf,
            )
            if worker_dead:
                self.respawns += 1
                slot = await loop.run_in_executor(
                    self._executor, self._spawn_handle
                )
            return result
        finally:
            self._free.put_nowait(slot)

    async def _grade_inline(
        self, loop, assignment_name, source, max_seconds, hang_seconds,
        cluster=False, repair=False, perf=False,
    ) -> PoolResult:
        def run():
            try:
                if hang_seconds:
                    time.sleep(hang_seconds)
                engine = self._engines.get(
                    (assignment_name, cluster, repair, perf)
                )
                if engine is None:
                    engine = _build_grader(
                        assignment_name, cluster, repair, perf,
                        self.store_root, self.store_backend,
                    )
                    self._engines[
                        (assignment_name, cluster, repair, perf)
                    ] = engine
                return _grade_one(engine, source, max_seconds)
            except Exception as exc:  # noqa: BLE001 - mirror process mode
                return (
                    GradingReport(
                        assignment_name=assignment_name,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                    PhaseCollector(),
                    0.0,
                )

        hard_timeout = (
            max_seconds + self.kill_grace_seconds
            if max_seconds is not None
            else None
        )
        future = loop.run_in_executor(self._executor, run)
        try:
            report, collector, seconds = await asyncio.wait_for(
                asyncio.shield(future), hard_timeout
            )
            return PoolResult(report, collector, seconds)
        except asyncio.TimeoutError:
            # no process to kill inline: abandon the thread (it still
            # holds an executor slot until it returns) and answer with
            # the same synthesized timeout the process mode produces
            self.respawns += 1
            return PoolResult(
                _timeout_report(assignment_name, max_seconds, killed=True),
                None,
                hard_timeout or 0.0,
                killed=True,
            )

    async def stop(self) -> None:
        """Shut every worker down; in-flight jobs should be done."""
        if not self._started:
            return
        self._started = False
        loop = asyncio.get_running_loop()
        shutdowns = []
        while not self._free.empty():
            slot = self._free.get_nowait()
            if slot is not None:
                shutdowns.append(
                    loop.run_in_executor(self._executor, slot.shutdown)
                )
        if shutdowns:
            await asyncio.gather(*shutdowns, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
