"""Service-level metrics: ``serve.*`` counters + latency reservoir.

The batch pipeline already has :class:`~repro.core.metrics.PipelineStats`
for *grading* work; the service adds the request-level view around it —
admission decisions, queue depth, breaker trips, deadline kills, and a
latency distribution.  :class:`ServiceMetrics` owns both: worker results
fold their :class:`~repro.instrumentation.PhaseCollector` into one
service-lifetime ``PipelineStats`` (the same aggregation the batch
pipeline uses across process workers), and every finished request lands
in a bounded :class:`LatencyReservoir` for p50/p95/p99 readouts.

``/metrics`` serves :meth:`ServiceMetrics.snapshot` as JSON, or the
flat Prometheus-style text exposition from :func:`render_prometheus`
with ``?format=prometheus``.
"""

from __future__ import annotations

from repro.core.metrics import PipelineStats

#: Canonical ``serve.*`` counter names, in rough request-lifecycle
#: order.  The snapshot always materializes all of them (zero when
#: never incremented) so dashboards see a stable schema.
SERVE_COUNTERS = (
    "serve.requests_total",
    "serve.grade_requests",
    "serve.admitted",
    "serve.completed",
    "serve.cache_hits",
    "serve.rejected_queue_full",
    "serve.rejected_breaker_open",
    "serve.rejected_draining",
    "serve.deadline_timeouts",
    "serve.deadline_kills",
    "serve.worker_respawns",
    "serve.bad_requests",
    "serve.not_found",
    "serve.internal_errors",
)


class LatencyReservoir:
    """Bounded ring buffer of recent latencies with quantile readout.

    Keeps the last ``capacity`` observations (a sliding window, not a
    sampled stream — deterministic, and at the default size the sort in
    :meth:`quantile` is microseconds).  Quantiles use the nearest-rank
    method on the current window.
    """

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.count += 1
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the current window (0 when empty)."""
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        rank = max(0, min(len(ordered) - 1, round(q * len(ordered)) - 1))
        return ordered[rank]

    def snapshot(self) -> dict:
        """JSON-friendly view: window size, total count, p50/p95/p99/max."""
        return {
            "count": self.count,
            "window": len(self._ring),
            "p50_ms": round(1000 * self.quantile(0.50), 3),
            "p95_ms": round(1000 * self.quantile(0.95), 3),
            "p99_ms": round(1000 * self.quantile(0.99), 3),
            "max_ms": round(1000 * max(self._ring), 3) if self._ring else 0.0,
        }


class ServiceMetrics:
    """Everything ``/metrics`` exposes, owned by one service instance.

    All mutation happens on the event loop thread, so plain dicts and
    ints suffice — no locks.
    """

    def __init__(self, reservoir_capacity: int = 2048):
        self.counters: dict[str, int] = {name: 0 for name in SERVE_COUNTERS}
        self.latency = LatencyReservoir(reservoir_capacity)
        #: Service-lifetime grading stats, aggregated from worker
        #: results exactly like the batch pipeline aggregates process
        #: workers' collectors.
        self.pipeline = PipelineStats(mode="serve")

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def snapshot(
        self,
        queue_depth: int = 0,
        queue_capacity: int = 0,
        workers: int = 0,
        breakers: dict[str, dict] | None = None,
        draining: bool = False,
        store: dict | None = None,
    ) -> dict:
        return {
            "serve": dict(sorted(self.counters.items())),
            "queue": {
                "depth": queue_depth,
                "capacity": queue_capacity,
                "workers": workers,
            },
            "latency_ms": self.latency.snapshot(),
            "breakers": breakers or {},
            "draining": draining,
            "store": store or {"enabled": False, "backend": "none"},
            "pipeline": self.pipeline.to_dict(),
        }


def render_prometheus(snapshot: dict) -> str:
    """Flatten a :meth:`ServiceMetrics.snapshot` into exposition text.

    Counter names map ``serve.rejected_queue_full`` →
    ``repro_serve_rejected_queue_full``; gauges and quantiles get their
    own metrics.  Only scalar values are exported — the nested pipeline
    phase maps stay JSON-only.
    """
    lines: list[str] = []

    def emit(name: str, value, labels: str = "") -> None:
        lines.append(f"repro_{name}{labels} {value}")

    for name, value in sorted(snapshot.get("serve", {}).items()):
        emit(name.replace(".", "_"), value)
    queue = snapshot.get("queue", {})
    emit("serve_queue_depth", queue.get("depth", 0))
    emit("serve_queue_capacity", queue.get("capacity", 0))
    emit("serve_workers", queue.get("workers", 0))
    emit("serve_draining", int(bool(snapshot.get("draining"))))
    latency = snapshot.get("latency_ms", {})
    for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms"):
        emit(f"serve_latency_{key}", latency.get(key, 0.0))
    for assignment, state in sorted(snapshot.get("breakers", {}).items()):
        emit(
            "serve_breaker_open",
            int(state.get("state") == "open"),
            f'{{assignment="{assignment}"}}',
        )
    pipeline = snapshot.get("pipeline", {})
    for key in ("submissions", "graded", "cache_hits", "parse_errors",
                "timeouts", "errors"):
        emit(f"pipeline_{key}", pipeline.get(key, 0))
    # persistent-store visibility: an info gauge naming the active
    # backend, plus the pipeline's cache.store_* traffic labelled with
    # it (so dashboards can compare hit rates across backends)
    store = snapshot.get("store", {})
    backend = store.get("backend", "none")
    emit("store_backend", 1, f'{{backend="{backend}"}}')
    if store.get("enabled"):
        counters = pipeline.get("counters", {})
        for key in ("hits", "misses", "writes", "errors"):
            emit(
                f"cache_store_{key}",
                counters.get(f"cache.store_{key}", 0),
                f'{{backend="{backend}"}}',
            )
    # static-analysis, repair, perf, and interpreter visibility:
    # per-check finding and suggestion counters, compiled-program cache
    # traffic, plus each phase's wall time, flattened like the serve
    # counters
    # (``analysis.use-before-init`` → ``repro_analysis_use_before_init``,
    # ``interp.compile_hits`` → ``repro_interp_compile_hits``)
    for name, value in sorted(pipeline.get("counters", {}).items()):
        if name.startswith(("analysis.", "repair.", "interp.", "perf.")):
            emit(name.replace(".", "_").replace("-", "_"), value)
    phase_ms = pipeline.get("phase_ms", {})
    for phase in ("analysis", "repair", "perf"):
        if phase in phase_ms:
            emit(f"pipeline_{phase}_ms", phase_ms[phase])
    return "\n".join(lines) + "\n"
