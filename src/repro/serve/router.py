"""Multi-process shard router: N grading services behind one port.

One :class:`~repro.serve.server.GradingService` is bounded by one
Python process.  :class:`ShardRouter` scales the serving layer out on a
single host: it forks ``N`` full service instances (each with its own
worker pool, admission controller, caches, and breakers), binds one
front port, and proxies every grade request to the shard that owns it
under **consistent hashing** of ``(assignment, source_key)``:

* the same submission content always lands on the same shard, so each
  shard's in-memory result cache and cluster-bucket registry stay as
  effective as a single instance's — no cache dilution across shards;
* the hash ring uses virtual nodes, so shard counts can change between
  deployments with bounded key movement (only ``~1/N`` of the keyspace
  moves when a shard is added).

All shards share one persistent result store (point ``cache_dir`` at a
SQLite store — WAL mode lets N writers and the router coexist without
a coordinator), so a report graded by any shard replays from disk on
every other.  Reports remain byte-identical to single-instance and
offline batch output: routing chooses *where* a submission is graded,
never *how*.

Operational surface mirrors the single service: ``/healthz`` (process
liveness of every shard), ``/readyz``, ``/metrics`` (aggregated across
shards — ``serve.*`` counters summed, tail latencies maxed, per-shard
detail nested), ``/shards`` (topology), ``/assignments`` and ``/lint``
(answered locally; the KB is identical in every process).  SIGTERM
drains the router first (stop accepting, finish in-flight proxying),
then every shard.

Usage: ``repro serve --shards 4 --cache-dir cache/`` or::

    from repro.serve import ServiceConfig
    from repro.serve.router import ShardRouter
    router = ShardRouter(ServiceConfig(port=8652), shards=4)
    exit_code = asyncio.run(router.serve_forever())
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import re
import signal
import threading
import time
from collections import deque
from dataclasses import asdict

from repro.core.metrics import PipelineStats
from repro.core.pipeline import source_key
from repro.kb import all_assignment_names
from repro.serve.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
)
from repro.serve.metrics import render_prometheus
from repro.serve.server import ServiceConfig, _error_response

_GRADE_PATH_RE = re.compile(r"^/assignments/([^/]+)/grade$")

#: Virtual nodes per shard on the hash ring.  64 keeps the keyspace
#: split within a few percent of even for small shard counts while the
#: ring stays tiny (shards x 64 points).
DEFAULT_VNODES = 64

#: Idle proxy connections kept open per shard.
POOL_SIZE = 16


class HashRing:
    """Consistent-hash ring over shard indices with virtual nodes."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                digest = hashlib.sha256(
                    f"shard-{shard}:vnode-{vnode}".encode("utf-8")
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, assignment: str, key: str) -> int:
        """The shard owning ``(assignment, key)`` — stable across calls."""
        digest = hashlib.sha256(
            f"{assignment}:{key}".encode("utf-8")
        ).digest()
        value = int.from_bytes(digest[:8], "big")
        index = bisect.bisect_right(self._points, value)
        if index == len(self._points):
            index = 0
        return self._owners[index]


# -- shard child process -------------------------------------------------


def _shard_main(config_kwargs: dict, conn) -> None:
    """Child entry: run one full GradingService on an ephemeral port.

    The bound port travels back over ``conn``; afterwards the pipe is
    the drain channel — any message (or EOF, if the router dies) drains
    the shard gracefully.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the router drives shutdown
    from repro.serve.server import GradingService

    config = ServiceConfig(**config_kwargs)
    config.port = 0  # ephemeral: the router learns it from the pipe
    service = GradingService(config)

    async def run() -> int:
        await service.start()
        conn.send(("ready", service.port))
        loop = asyncio.get_running_loop()

        def watch() -> None:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass  # router died: drain anyway
            loop.call_soon_threadsafe(service.request_drain)

        threading.Thread(target=watch, daemon=True).start()
        return await service.serve_forever(install_signal_handlers=False)

    try:
        code = asyncio.run(run())
    except Exception as exc:  # noqa: BLE001 - report, then exit non-zero
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        code = 1
    raise SystemExit(code)


class _ShardHandle:
    """One shard process: its pipe, port, and proxy connection pool."""

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.port: int | None = None
        self.pool: deque = deque()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


# -- the router ----------------------------------------------------------


class ShardRouter:
    """Routes grade traffic across N forked :class:`GradingService`\\ s.

    ``config`` is the per-shard service configuration (every shard gets
    the same workers/queue/deadline/cache settings); ``config.host`` and
    ``config.port`` name the *router's* listen address.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        shards: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.config = config or ServiceConfig()
        self.shards = shards
        self.ring = HashRing(shards, vnodes)
        self.counters: dict[str, int] = {
            "router.requests_total": 0,
            "router.proxied": 0,
            "router.proxy_errors": 0,
            "router.unroutable": 0,
        }
        self._handles: list[_ShardHandle] = []
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._draining = False
        self._drain_requested = asyncio.Event()
        self.port = self.config.port
        # generous per-proxy timeout: the shard enforces the real
        # deadlines; this only catches a wedged shard process
        self._proxy_timeout = (
            max(
                self.config.max_deadline_seconds,
                self.config.default_deadline_seconds,
            )
            + self.config.kill_grace_seconds
            + 10.0
        )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Fork the shards, learn their ports, then bind the front port."""
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        kwargs = asdict(self.config)
        loop = asyncio.get_running_loop()
        for index in range(self.shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            # not daemonic: each shard forks its own worker pool, which
            # daemon processes may not do.  Orphan protection comes from
            # the pipe instead — EOF drains the shard (see _shard_main).
            process = context.Process(
                target=_shard_main,
                args=(kwargs, child_conn),
            )
            process.start()
            child_conn.close()
            self._handles.append(_ShardHandle(index, process, parent_conn))
        # collect readiness off-loop (pipe recv blocks)
        for handle in self._handles:
            message = await loop.run_in_executor(None, handle.conn.recv)
            kind, value = message
            if kind != "ready":
                await self._kill_all()
                raise RuntimeError(f"shard {handle.index} failed: {value}")
            handle.port = value
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(
        self, install_signal_handlers: bool = True
    ) -> int:
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_drain)
        await self._drain_requested.wait()
        clean = await self.drain()
        return 0 if clean else 1

    def request_drain(self) -> None:
        """Signal-safe drain trigger (idempotent)."""
        self._drain_requested.set()

    async def drain(self) -> bool:
        """Stop accepting, finish in-flight proxying, drain every shard."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        expiry = time.monotonic() + self.config.drain_timeout_seconds
        while self._busy > 0 and time.monotonic() < expiry:
            await asyncio.sleep(0.02)
        clean = self._busy == 0
        for handle in self._handles:
            try:
                handle.conn.send("drain")
            except (BrokenPipeError, OSError):
                pass
        loop = asyncio.get_running_loop()
        deadline = self.config.drain_timeout_seconds
        await asyncio.gather(*[
            loop.run_in_executor(None, handle.process.join, deadline)
            for handle in self._handles
        ])
        for handle in self._handles:
            if handle.process.is_alive():
                clean = False
        await self._kill_all()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        return clean

    @property
    def draining(self) -> bool:
        return self._draining

    async def _kill_all(self) -> None:
        for handle in self._handles:
            while handle.pool:
                _, writer = handle.pool.popleft()
                writer.close()
            try:
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=1)
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- connection handling (mirrors GradingService) --------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as error:
                    await self._write(writer, _error_response(error), False)
                    return
                if request is None:
                    return
                self._busy += 1
                try:
                    response = await self._safe_dispatch(request)
                    keep_alive = request.keep_alive and not self._draining
                    await self._write(writer, response, keep_alive)
                finally:
                    self._busy -= 1
                if not keep_alive:
                    return
        except (
            ConnectionResetError, BrokenPipeError, asyncio.CancelledError
        ):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        response: HttpResponse,
        keep_alive: bool,
    ) -> None:
        writer.write(response.encode(keep_alive))
        await writer.drain()

    async def _safe_dispatch(self, request: HttpRequest) -> HttpResponse:
        try:
            return await self._dispatch(request)
        except HttpError as error:
            return _error_response(error)
        except Exception as exc:  # noqa: BLE001 - never kill the connection
            return HttpResponse.json(
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                status=500,
            )

    # -- routing ---------------------------------------------------------

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        self.counters["router.requests_total"] += 1
        path = request.path
        match = _GRADE_PATH_RE.match(path)
        if match is not None:
            if request.method != "POST":
                raise HttpError(405, "grading requires POST")
            return await self._proxy_grade(request, match.group(1))
        if request.method != "GET":
            raise HttpError(405, f"unsupported method {request.method}")
        if path == "/healthz":
            dead = [h.index for h in self._handles if not h.alive]
            if dead:
                return HttpResponse.text(
                    f"shards down: {dead}\n", status=503
                )
            return HttpResponse.text("ok\n")
        if path == "/readyz":
            if self._draining:
                return HttpResponse.text("draining\n", status=503)
            if any(not h.alive for h in self._handles):
                return HttpResponse.text("degraded\n", status=503)
            return HttpResponse.text("ready\n")
        if path == "/metrics":
            return await self._metrics_response(request)
        if path == "/shards":
            return HttpResponse.json({"shards": self._topology()})
        if path == "/assignments":
            return HttpResponse.json(
                {"assignments": list(all_assignment_names())}
            )
        if path == "/lint":
            from repro.analysis import lint_knowledge_base

            payload = lint_knowledge_base().to_dict()
            return HttpResponse.json(
                payload, status=200 if payload["ok"] else 503
            )
        if path == "/":
            return HttpResponse.json({
                "service": "repro-grading-router",
                "shards": self.shards,
                "endpoints": [
                    "POST /assignments/{name}/grade",
                    "GET /assignments",
                    "GET /healthz",
                    "GET /readyz",
                    "GET /lint",
                    "GET /metrics",
                    "GET /shards",
                ],
            })
        raise HttpError(404, f"no route for {path}")

    def _topology(self) -> list[dict]:
        return [
            {
                "index": handle.index,
                "port": handle.port,
                "pid": handle.process.pid,
                "alive": handle.alive,
            }
            for handle in self._handles
        ]

    def _route(self, assignment: str, body: bytes) -> int:
        """Pick the shard for a grade request.

        Routing hashes the *content key* (the same normalization-stable
        :func:`~repro.core.pipeline.source_key` the caches use), so
        resubmissions hit the shard that already holds their report.  A
        body the router cannot interpret goes to shard 0 — the shard
        produces the canonical 400, and all such errors colocate
        harmlessly.
        """
        try:
            payload = json.loads(body.decode("utf-8"))
            source = payload.get("source")
            if isinstance(source, str) and source.strip():
                return self.ring.shard_for(assignment, source_key(source))
        except Exception:  # noqa: BLE001 - malformed bodies route to shard 0
            pass
        self.counters["router.unroutable"] += 1
        return 0

    async def _proxy_grade(
        self, request: HttpRequest, assignment: str
    ) -> HttpResponse:
        if self._draining:
            return HttpResponse.json(
                {"error": "service is draining"},
                status=503,
                headers={"Retry-After": "5"},
            )
        index = self._route(assignment, request.body)
        try:
            status, content_type, body = await self._shard_request(
                index, "POST", request.path, request.body
            )
        except (OSError, asyncio.TimeoutError, EOFError, ValueError):
            self.counters["router.proxy_errors"] += 1
            return HttpResponse.json(
                {"error": f"shard {index} is unavailable"},
                status=503,
                headers={"Retry-After": "5"},
            )
        self.counters["router.proxied"] += 1
        return HttpResponse(
            status=status, body=body, content_type=content_type
        )

    # -- proxy client ----------------------------------------------------

    async def _shard_request(
        self, index: int, method: str, path: str, body: bytes = b""
    ) -> tuple[int, str, bytes]:
        """One proxied request over a pooled keep-alive connection."""
        handle = self._handles[index]
        last_error: Exception | None = None
        for attempt in range(2):
            if handle.pool:
                reader, writer = handle.pool.popleft()
            else:
                reader, writer = await asyncio.open_connection(
                    self.config.host, handle.port
                )
            try:
                head = (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: shard-{index}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: keep-alive\r\n\r\n"
                ).encode("latin-1")
                writer.write(head + body)
                await writer.drain()
                status, content_type, payload = await asyncio.wait_for(
                    self._read_response(reader), self._proxy_timeout
                )
            except (
                OSError, EOFError, ValueError, asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ) as error:
                writer.close()
                last_error = error
                # a pooled connection may have gone stale while idle;
                # retry once on a fresh one, then give up
                if attempt == 0 and handle.alive:
                    continue
                raise
            if len(handle.pool) < POOL_SIZE:
                handle.pool.append((reader, writer))
            else:
                writer.close()
            return status, content_type, payload
        raise last_error  # pragma: no cover - loop always returns/raises

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, str, bytes]:
        status_line = await reader.readline()
        if not status_line:
            raise EOFError("shard closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        content_type = "application/json"
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "content-type":
                content_type = value.strip()
        body = await reader.readexactly(length) if length else b""
        return status, content_type, body

    # -- metrics aggregation ---------------------------------------------

    async def _metrics_response(self, request: HttpRequest) -> HttpResponse:
        snapshot = await self._aggregate_metrics()
        if request.query.get("format") == "prometheus":
            text = render_prometheus(snapshot)
            extra = [f"repro_router_shards {self.shards}"]
            for name, value in sorted(self.counters.items()):
                extra.append(f"repro_{name.replace('.', '_')} {value}")
            for shard in snapshot["router"]["topology"]:
                extra.append(
                    f'repro_router_shard_up{{shard="{shard["index"]}"}} '
                    f'{int(shard["alive"])}'
                )
            return HttpResponse.text(text + "\n".join(extra) + "\n")
        return HttpResponse.json(snapshot)

    async def _aggregate_metrics(self) -> dict:
        """Fan ``/metrics`` out to every live shard and fold the results.

        ``serve.*`` counters and queue gauges are summed (they are
        volumes), tail latencies are maxed (the fleet's worst case is
        what an SLO cares about), the pipeline stats merge exactly like
        batch shards, and the full per-shard snapshots stay nested under
        ``shards`` for drill-down.
        """

        async def fetch(handle: _ShardHandle) -> dict | None:
            if not handle.alive:
                return None
            try:
                status, _, body = await self._shard_request(
                    handle.index, "GET", "/metrics"
                )
                if status != 200:
                    return None
                return json.loads(body.decode("utf-8"))
            except (OSError, asyncio.TimeoutError, EOFError, ValueError):
                return None

        snapshots = await asyncio.gather(
            *[fetch(handle) for handle in self._handles]
        )
        serve: dict[str, int] = {}
        queue = {"depth": 0, "capacity": 0, "workers": 0}
        latency = {"count": 0, "window": 0, "p50_ms": 0.0, "p95_ms": 0.0,
                   "p99_ms": 0.0, "max_ms": 0.0}
        pipeline = PipelineStats(mode="router", workers=self.shards)
        breakers: dict[str, dict] = {}
        per_shard: dict[str, dict] = {}
        store = {"enabled": False, "backend": "none"}
        draining = self._draining
        for handle, shard_snapshot in zip(self._handles, snapshots):
            name = str(handle.index)
            if shard_snapshot is None:
                per_shard[name] = {"up": False}
                continue
            for key, value in shard_snapshot.get("serve", {}).items():
                serve[key] = serve.get(key, 0) + int(value)
            shard_queue = shard_snapshot.get("queue", {})
            for key in queue:
                queue[key] += int(shard_queue.get(key, 0))
            shard_latency = shard_snapshot.get("latency_ms", {})
            for key in ("count", "window"):
                latency[key] += int(shard_latency.get(key, 0))
            for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms"):
                latency[key] = max(
                    latency[key], float(shard_latency.get(key, 0.0))
                )
            pipeline.merge(
                PipelineStats.from_dict(shard_snapshot.get("pipeline", {}))
            )
            for assignment, state in shard_snapshot.get(
                "breakers", {}
            ).items():
                breakers[f"{assignment}@{name}"] = state
            if shard_snapshot.get("store", {}).get("enabled"):
                store = shard_snapshot["store"]
            draining = draining or bool(shard_snapshot.get("draining"))
            per_shard[name] = {
                "up": True,
                "port": handle.port,
                "latency_ms": shard_latency,
                "breakers": shard_snapshot.get("breakers", {}),
            }
        return {
            "serve": dict(sorted(serve.items())),
            "queue": queue,
            "latency_ms": latency,
            "breakers": breakers,
            "draining": draining,
            "store": store,
            "pipeline": pipeline.to_dict(),
            "router": {
                "shards": self.shards,
                "counters": dict(sorted(self.counters.items())),
                "topology": self._topology(),
            },
            "shards": per_shard,
        }
