"""``repro.serve``: the always-on asyncio grading service.

Dependency-free (stdlib only) HTTP front-end over the grading engine:
bounded admission with explicit backpressure, a process-backed worker
pool with per-request deadlines and hard kills, per-assignment circuit
breakers, and an operational surface (``/healthz``, ``/readyz``,
``/metrics``) with graceful drain.  See ``docs/SERVING.md``.

Usage::

    from repro.serve import GradingService, ServiceConfig
    service = GradingService(ServiceConfig(port=8652, workers=4))
    exit_code = asyncio.run(service.serve_forever())

or from the shell: ``repro serve --port 8652 --workers 4``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerRegistry, BreakerState, CircuitBreaker
from repro.serve.http import HttpError, HttpRequest, HttpResponse
from repro.serve.metrics import (
    LatencyReservoir,
    ServiceMetrics,
    render_prometheus,
)
from repro.serve.pool import GradingWorkerPool, PoolResult
from repro.serve.router import HashRing, ShardRouter
from repro.serve.server import GradingService, ServiceConfig

__all__ = [
    "AdmissionController",
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
    "GradingService",
    "GradingWorkerPool",
    "HashRing",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "LatencyReservoir",
    "PoolResult",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardRouter",
    "render_prometheus",
]
