"""Per-assignment circuit breakers quarantining pathological traffic.

One assignment with a matcher-hostile pattern/cohort combination must
not consume the whole worker fleet request after request.  Each
assignment gets a breaker watching a sliding window of recent
outcomes; when timeouts dominate, the breaker *opens* and the service
answers that assignment's requests with ``503`` immediately — no
worker time spent — until a cooldown passes.  Then a few *probe*
requests are let through (*half-open*): if they complete, the breaker
closes and traffic resumes; if any times out again, it re-opens for
another cooldown.

The clock is injectable so tests drive state transitions without
sleeping.  Only deadline failures count against the breaker — parse
errors and rejected submissions are *successful* gradings of bad
student code, not signs of a sick assignment.
"""

from __future__ import annotations

import enum
import time
from collections import deque


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:
        return self.value


class CircuitBreaker:
    """Sliding-window breaker for one assignment's request flow.

    Parameters
    ----------
    window:
        Number of recent outcomes considered.
    min_volume:
        Outcomes required in the window before the ratio can trip the
        breaker (a single early timeout must not quarantine an
        assignment).
    failure_ratio:
        Trip threshold: open when ``failures / window_size`` reaches
        this with at least ``min_volume`` outcomes recorded.
    cooldown_seconds:
        How long an open breaker refuses traffic before probing.
    half_open_probes:
        Probe requests admitted in the half-open state; all must
        succeed to close the breaker.
    """

    def __init__(
        self,
        window: int = 20,
        min_volume: int = 5,
        failure_ratio: float = 0.5,
        cooldown_seconds: float = 30.0,
        half_open_probes: int = 2,
        clock=time.monotonic,
    ):
        if window <= 0 or min_volume <= 0 or half_open_probes <= 0:
            raise ValueError("window, min_volume, half_open_probes "
                             "must be positive")
        if not 0 < failure_ratio <= 1:
            raise ValueError("failure_ratio must be in (0, 1]")
        self.window = window
        self.min_volume = min_volume
        self.failure_ratio = failure_ratio
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._probes_started = 0
        self._probes_succeeded = 0
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        # promote OPEN → HALF_OPEN lazily on observation
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_started = 0
            self._probes_succeeded = 0
        return self._state

    def allow(self) -> bool:
        """May the next request for this assignment reach a worker?"""
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN:
            if self._probes_started < self.half_open_probes:
                self._probes_started += 1
                return True
            return False
        return False

    def record(self, failure: bool) -> None:
        """Record one finished request (``failure`` = deadline hit)."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            if failure:
                self._trip()
            else:
                self._probes_succeeded += 1
                if self._probes_succeeded >= self.half_open_probes:
                    self._state = BreakerState.CLOSED
                    self._outcomes.clear()
            return
        if state is BreakerState.OPEN:
            # a request admitted before the trip finishing late; the
            # open window already made its decision
            return
        self._outcomes.append(failure)
        if len(self._outcomes) >= self.min_volume:
            failures = sum(self._outcomes)
            if failures / len(self._outcomes) >= self.failure_ratio:
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._outcomes.clear()
        self.trips += 1

    def retry_after_seconds(self) -> int:
        """Seconds until the cooldown elapses (min 1)."""
        remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
        return max(1, int(remaining) + 1) if self._state is BreakerState.OPEN \
            else 1

    def snapshot(self) -> dict:
        return {
            "state": str(self.state),
            "window_failures": sum(self._outcomes),
            "window_size": len(self._outcomes),
            "trips": self.trips,
        }


class BreakerRegistry:
    """One :class:`CircuitBreaker` per assignment, created on demand."""

    def __init__(self, clock=time.monotonic, **params):
        self._params = params
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, assignment_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(assignment_name)
        if breaker is None:
            breaker = CircuitBreaker(clock=self._clock, **self._params)
            self._breakers[assignment_name] = breaker
        return breaker

    def snapshot(self) -> dict[str, dict]:
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(self._breakers.items())
        }
