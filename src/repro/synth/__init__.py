"""Synthetic student-submission generation (paper Section VI-A).

The paper follows Singh et al.'s hypothesis that novice errors are
predictable, encoding them as rules (``i = 0 → i = 1``) whose combinations
span an explicit search space of correct and incorrect submissions.  Here
each assignment declares :class:`ChoicePoint` objects over a reference
template; a :class:`SubmissionSpace` enumerates the full cartesian product
lazily (mixed-radix indexing), so spaces with millions of programs cost
nothing until a submission is materialized.
"""

from repro.synth.rules import ChoicePoint, Option, correct, wrong
from repro.synth.spaces import SubmissionSpace
from repro.synth.generator import sample_indices, sample_submissions

__all__ = [
    "ChoicePoint",
    "Option",
    "correct",
    "wrong",
    "SubmissionSpace",
    "sample_indices",
    "sample_submissions",
]
