"""Error-model rules: choice points and their options.

A :class:`ChoicePoint` is one independent location in the reference
solution where students make predictable choices — some correct
alternatives (``for`` vs ``while``), some classic mistakes (``i = 1``
instead of ``i = 0``).  Singh et al.'s error-model rules map directly onto
choice points whose first option is the reference text and whose other
options are the rule right-hand sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class Option:
    """One alternative for a choice point.

    ``correct`` marks options that keep the program functionally correct
    *in isolation*; the ground truth for a full submission is still the
    functional test suite (options can interact), but the flag lets
    benchmarks sample correct-leaning or error-leaning submissions.
    """

    text: str
    correct: bool
    label: str = ""


def correct(text: str, label: str = "") -> Option:
    """Shorthand for a functionally-correct option."""
    return Option(text=text, correct=True, label=label)


def wrong(text: str, label: str = "") -> Option:
    """Shorthand for an error-model option (a student mistake)."""
    return Option(text=text, correct=False, label=label)


@dataclass(frozen=True)
class ChoicePoint:
    """A named slot in the reference template with its options.

    The first option is by convention the reference text.  Slot names
    appear in templates as ``{{name}}``.
    """

    name: str
    options: tuple[Option, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise ReproError(
                f"choice point {self.name!r} needs at least two options"
            )
        if not self.options[0].correct:
            raise ReproError(
                f"choice point {self.name!r}: the first option must be the "
                "correct reference text"
            )

    @property
    def arity(self) -> int:
        return len(self.options)


def binary(name: str, reference: str, mistake: str) -> ChoicePoint:
    """A two-option choice point: the reference text and one mistake."""
    return ChoicePoint(name, (correct(reference), wrong(mistake)))


def variants(name: str, *texts: str) -> ChoicePoint:
    """A choice point whose options are all functionally correct."""
    return ChoicePoint(name, tuple(correct(t) for t in texts))
