"""Deterministic sampling from submission spaces.

Benchmarks and tests need reproducible samples from spaces of up to
9.4M submissions; we use a seeded PRNG so every run (and the paper-vs-
measured numbers in EXPERIMENTS.md) sees the same programs.
"""

from __future__ import annotations

import random

from repro.synth.spaces import GeneratedSubmission, SubmissionSpace


def sample_indices(
    space: SubmissionSpace, count: int, seed: int = 0
) -> list[int]:
    """``count`` distinct indices from the space, deterministic in ``seed``.

    The reference submission (index 0) is always included so each sample
    contains at least one fully-correct program.
    """
    if count >= space.size:
        return list(range(space.size))
    rng = random.Random(seed)
    picked = {0}
    while len(picked) < count:
        picked.add(rng.randrange(space.size))
    return sorted(picked)


def sample_submissions(
    space: SubmissionSpace, count: int, seed: int = 0
) -> list[GeneratedSubmission]:
    """Materialized submissions for :func:`sample_indices`."""
    return [space.submission(i) for i in sample_indices(space, count, seed)]
