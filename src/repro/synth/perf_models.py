"""Deliberately-slow correct variants for the performance analyzer.

The regular error-model spaces (:mod:`repro.synth.spaces`) encode
*functional* mistakes; every option changes what a program computes.
The performance analyzer needs the complementary cohort: submissions
that compute the **right answer the slow way** — the paper's premise
that MOOC graders accept asymptotically awful code because the tests
only check outputs.

Each supported assignment gets a small dedicated space whose ``impl``
choice point offers one fast reference implementation plus slow
implementations tagged with ``slow:<perf-pattern-id>`` labels (the
pattern id from :data:`repro.analysis.perf.model.PERF_PATTERNS` the
variant embodies).  Every option is functionally correct — the slow
cohort must *pass* the functional tests, otherwise it would not need a
performance analyzer to be caught.

:func:`sample_slow_cohort` / :func:`sample_fast_cohort` draw seeded,
reproducible cohorts for the benchmark gate
(``benchmarks/bench_perf_feedback.py``): detection is asserted at 100%
on the slow cohort and 0% (no false positives) on the fast one.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.synth.rules import ChoicePoint, Option, correct
from repro.synth.spaces import GeneratedSubmission, SubmissionSpace

#: Label prefix marking an option as a seeded slow implementation.
SLOW_LABEL_PREFIX = "slow:"


def slow(text: str, pattern_id: str) -> Option:
    """A functionally-correct option embodying one perf anti-pattern."""
    return Option(
        text=text, correct=True, label=f"{SLOW_LABEL_PREFIX}{pattern_id}"
    )


_ASSIGNMENT1_TEMPLATE = """\
void assignment1(int[] a) {
    int odd = 0;
    int even = 1;
    {{impl}}
    System.out.println(odd);
    System.out.println(even);
}
"""

_ASSIGNMENT1_FAST = """\
for (int i = 0; i < a.length; i++) {
        if (i % 2 == 1)
            odd += a[i];
        else
            even *= a[i];
    }"""

_ASSIGNMENT1_NESTED = """\
for (int i = 0; i < a.length; i++) {
        for (int j = 0; j < a.length; j++) {
            if (j == i) {
                if (i % 2 == 1)
                    odd += a[j];
                else
                    even *= a[j];
            }
        }
    }"""


def _assignment1_space() -> SubmissionSpace:
    return SubmissionSpace(
        "assignment1-perf",
        _ASSIGNMENT1_TEMPLATE,
        [
            ChoicePoint("impl", (
                correct(_ASSIGNMENT1_FAST, label="fast"),
                slow(_ASSIGNMENT1_NESTED, "nested-loop-lookup"),
            )),
        ],
    )


_POLYNOMIALS_TEMPLATE = """\
void evaluate(int[] c, int x) {
    int r = 0;
    {{impl}}
    System.out.println(r);
}
"""

_POLYNOMIALS_FAST = """\
int p = 1;
    for (int i = 0; i < c.length; i++) {
        r += c[i] * p;
        p = p * x;
    }"""

_POLYNOMIALS_RECOMPUTE = """\
for (int i = 0; i < c.length; i++) {
        int p = 1;
        for (int k = 0; k < i; k++) {
            p = p * x;
        }
        r += c[i] * p;
    }"""


def _polynomials_space() -> SubmissionSpace:
    return SubmissionSpace(
        "mitx-polynomials-perf",
        _POLYNOMIALS_TEMPLATE,
        [
            ChoicePoint("impl", (
                correct(_POLYNOMIALS_FAST, label="fast"),
                slow(_POLYNOMIALS_RECOMPUTE, "loop-invariant-recomputation"),
            )),
        ],
    )


_DERIVATIVES_TEMPLATE = """\
void derivative(int[] c) {
    {{impl}}
}
"""

_DERIVATIVES_FAST = """\
for (int i = 1; i < c.length; i++) {
        System.out.println(c[i] * i);
    }"""

_DERIVATIVES_NESTED = """\
for (int i = 1; i < c.length; i++) {
        for (int j = 1; j < c.length; j++) {
            if (j == i) {
                System.out.println(c[j] * j);
            }
        }
    }"""


def _derivatives_space() -> SubmissionSpace:
    return SubmissionSpace(
        "mitx-derivatives-perf",
        _DERIVATIVES_TEMPLATE,
        [
            ChoicePoint("impl", (
                correct(_DERIVATIVES_FAST, label="fast"),
                slow(_DERIVATIVES_NESTED, "nested-loop-lookup"),
            )),
        ],
    )


#: Assignments with a seeded slow-variant space.
PERF_SPACES: dict[str, Callable[[], SubmissionSpace]] = {
    "assignment1": _assignment1_space,
    "mitx-polynomials": _polynomials_space,
    "mitx-derivatives": _derivatives_space,
}


def perf_space(assignment_name: str) -> SubmissionSpace:
    """The slow-variant space for ``assignment_name`` (KeyError if none)."""
    return PERF_SPACES[assignment_name]()


def _is_slow(submission: GeneratedSubmission,
             space: SubmissionSpace) -> bool:
    selected = space.selected_options(submission.index)
    return any(
        option.label.startswith(SLOW_LABEL_PREFIX)
        for option in selected.values()
    )


def _cohort(
    assignment_name: str, count: int, seed: int, want_slow: bool
) -> list[GeneratedSubmission]:
    space = perf_space(assignment_name)
    pool = [
        space.submission(index)
        for index in range(space.size)
        if _is_slow(space.submission(index), space) is want_slow
    ]
    if not pool:
        return []
    rng = random.Random(seed)
    return [pool[rng.randrange(len(pool))] for _ in range(count)]


def sample_slow_cohort(
    assignment_name: str, count: int = 8, seed: int = 42
) -> list[GeneratedSubmission]:
    """Seeded sample of functionally-correct, deliberately slow variants."""
    return _cohort(assignment_name, count, seed, want_slow=True)


def sample_fast_cohort(
    assignment_name: str, count: int = 8, seed: int = 42
) -> list[GeneratedSubmission]:
    """Seeded sample of fast correct variants (the zero-FP control)."""
    return _cohort(assignment_name, count, seed, want_slow=False)
