"""Lazily-enumerated submission spaces over a reference template.

A :class:`SubmissionSpace` is the cartesian product of its choice points'
options, addressed by a single integer index in mixed-radix encoding.
``space.size`` equals the paper's Table I column ``S`` for each
assignment (asserted by tests), and materializing submission ``i`` is
O(template length), so even the 9.4M-program spaces sample instantly.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import ReproError
from repro.synth.rules import ChoicePoint, Option

_SLOT = re.compile(r"\{\{([A-Za-z0-9_-]+)\}\}")


@dataclass(frozen=True)
class GeneratedSubmission:
    """One materialized synthetic submission."""

    index: int
    source: str
    choices: tuple[int, ...]
    all_options_correct: bool


class SubmissionSpace:
    """The explicit search space of one assignment's error model."""

    def __init__(self, name: str, template: str, choice_points: list[ChoicePoint]):
        self.name = name
        self.template = template
        self.choice_points = list(choice_points)
        # a slot may occur several times (e.g. a variable-naming choice
        # point substituting every use of the name)
        slots = set(_SLOT.findall(template))
        declared = [cp.name for cp in self.choice_points]
        if slots != set(declared):
            missing = set(declared) - slots
            extra = slots - set(declared)
            raise ReproError(
                f"space {name!r}: template slots do not match choice points "
                f"(missing {sorted(missing)}, undeclared {sorted(extra)})"
            )
        if len(set(declared)) != len(declared):
            raise ReproError(f"space {name!r}: duplicate choice point names")
        self._by_name = {cp.name: cp for cp in self.choice_points}

    # ------------------------------------------------------------------
    # indexing

    @property
    def size(self) -> int:
        """|S|: the number of submissions in the space."""
        return math.prod(cp.arity for cp in self.choice_points)

    def decode(self, index: int) -> tuple[int, ...]:
        """Mixed-radix decode of ``index`` into one choice per point."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"index {index} out of range for space of size {self.size}"
            )
        choices = []
        for cp in reversed(self.choice_points):
            index, digit = divmod(index, cp.arity)
            choices.append(digit)
        return tuple(reversed(choices))

    def encode(self, choices: tuple[int, ...] | list[int]) -> int:
        """Inverse of :meth:`decode`."""
        if len(choices) != len(self.choice_points):
            raise ReproError(
                f"expected {len(self.choice_points)} choices, got {len(choices)}"
            )
        index = 0
        for cp, choice in zip(self.choice_points, choices):
            if not 0 <= choice < cp.arity:
                raise ReproError(
                    f"choice {choice} out of range for point {cp.name!r}"
                )
            index = index * cp.arity + choice
        return index

    # ------------------------------------------------------------------
    # materialization

    def selected_options(self, index: int) -> dict[str, Option]:
        choices = self.decode(index)
        return {
            cp.name: cp.options[choice]
            for cp, choice in zip(self.choice_points, choices)
        }

    def submission(self, index: int) -> GeneratedSubmission:
        """Materialize the submission at ``index``."""
        choices = self.decode(index)
        selected = {
            cp.name: cp.options[choice]
            for cp, choice in zip(self.choice_points, choices)
        }
        source = _SLOT.sub(lambda m: selected[m.group(1)].text, self.template)
        return GeneratedSubmission(
            index=index,
            source=source,
            choices=choices,
            all_options_correct=all(o.correct for o in selected.values()),
        )

    @property
    def reference(self) -> GeneratedSubmission:
        """Index 0: every choice point takes its reference option."""
        return self.submission(0)

    def correct_indices(self, limit: int | None = None):
        """Indices whose options are all individually correct, lazily.

        These are the syntactic variants of the reference (loop styles,
        equivalent updates, print styles...).  Option-level correctness
        does not compose in every space, so callers that need *ground
        truth* should still run the functional tests.
        """
        correct_options = [
            [k for k, option in enumerate(cp.options) if option.correct]
            for cp in self.choice_points
        ]
        produced = 0
        stack: list[list[int]] = [[]]
        while stack:
            prefix = stack.pop()
            depth = len(prefix)
            if depth == len(self.choice_points):
                yield self.encode(prefix)
                produced += 1
                if limit is not None and produced >= limit:
                    return
                continue
            # depth-first, reference option first
            for option_index in reversed(correct_options[depth]):
                stack.append(prefix + [option_index])

    def correct_count(self) -> int:
        """Number of all-options-correct submissions in the space."""
        return math.prod(
            sum(1 for option in cp.options if option.correct)
            for cp in self.choice_points
        )

    def average_loc(self, sample: list[int] | None = None) -> float:
        """Average non-blank lines of code (Table I column ``L``).

        Uses the whole space if small, otherwise the given sample (or an
        evenly-strided implicit sample).
        """
        if sample is None:
            if self.size <= 2048:
                sample = list(range(self.size))
            else:
                stride = self.size // 2048
                sample = list(range(0, self.size, stride))[:2048]
        total = 0
        for index in sample:
            source = self.submission(index).source
            total += sum(1 for line in source.splitlines() if line.strip())
        return total / len(sample)

    def __len__(self) -> int:
        return self.size
