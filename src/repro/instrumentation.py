"""Low-level phase-timing primitives shared by all pipeline layers.

The batch pipeline (:mod:`repro.core.pipeline`) wants per-phase wall
time — parse / EPDG build / pattern match / constraint match — but the
phases live in different layers (``repro.java``, ``repro.pdg``,
``repro.matching``).  Threading a recorder object through every
signature would churn the whole public API, so instead the timed code
wraps itself in :func:`phase` and an *ambient* collector (a
:class:`contextvars.ContextVar`) decides whether anything is recorded.

When no collector is installed — the common case for one-off
``FeedbackEngine.grade`` calls — :func:`phase` is a no-op costing one
context-variable read.  The batch pipeline installs a fresh
:class:`PhaseCollector` per submission via :func:`collecting`, which
also makes the mechanism safe under thread pools: each worker task
installs its own collector in its own context.

This module deliberately imports nothing from the rest of ``repro`` so
every layer (including :mod:`repro.matching`, which :mod:`repro.core`
itself imports) can depend on it without cycles.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Iterator

#: Ambient per-context collector; ``None`` disables all recording.
_collector: contextvars.ContextVar["PhaseCollector | None"] = (
    contextvars.ContextVar("repro_phase_collector", default=None)
)

#: Ambient grading deadline as a ``time.monotonic()`` timestamp;
#: ``None`` disables all deadline checking.
_deadline: contextvars.ContextVar["float | None"] = (
    contextvars.ContextVar("repro_deadline", default=None)
)

#: Canonical phase names emitted by the grading pipeline, in data-flow
#: order.  Other layers may emit additional names; consumers should not
#: assume this list is exhaustive.
PIPELINE_PHASES = (
    "parse",
    "epdg_build",
    "pattern_match",
    "constraint_match",
    "analysis",
    "repair",
)


class PhaseCollector:
    """Accumulates wall seconds, entry counts, and event counters.

    ``seconds``/``counts`` come from :func:`phase` blocks; ``counters``
    are plain event tallies recorded with :func:`count` — the matcher
    uses them for search statistics (candidates pruned, nodes visited,
    cache hits) that have no meaningful duration.
    """

    __slots__ = ("seconds", "counts", "counters")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.counters: dict[str, int] = {}

    def add(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge(self, other: "PhaseCollector") -> None:
        """Fold another collector's totals into this one."""
        for name, elapsed in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={self.seconds[name] * 1000:.2f}ms"
            for name in sorted(self.seconds)
        )
        return f"PhaseCollector({parts})"


class DeadlineExceeded(Exception):
    """Raised by :func:`check_deadline` when the ambient deadline passed.

    Deliberately *not* a :class:`repro.errors.ReproError`: the batch
    pipeline and the serving layer convert it into a ``timeout`` report
    at the grading boundary, so it should never cross the public API —
    and keeping it here keeps this module import-free.
    """

    def __init__(self, limit_seconds: float | None = None):
        self.limit_seconds = limit_seconds
        limit = (
            f" (limit {limit_seconds:g}s)" if limit_seconds is not None else ""
        )
        super().__init__(f"grading deadline exceeded{limit}")


@contextmanager
def deadline(seconds: float | None) -> Iterator[None]:
    """Install a wall-clock deadline for the enclosed block.

    ``None`` is a no-op, so callers can thread an optional limit without
    branching.  Nested deadlines keep the *earliest* expiry — an outer
    budget can only be tightened, never extended, by an inner scope.
    Instrumented code observes the deadline through
    :func:`check_deadline`, which raises :class:`DeadlineExceeded`; the
    pipeline phases check on entry and the matcher's search loop checks
    periodically, so a pathological submission is abandoned within a
    bounded number of search steps rather than hanging its worker.
    """
    if seconds is None:
        yield
        return
    expires = time.monotonic() + seconds
    current = _deadline.get()
    if current is not None and current < expires:
        # inherit the tighter outer deadline; remember our own limit
        # only for the error message
        expires = current
    token = _deadline.set(expires)
    try:
        yield
    finally:
        _deadline.reset(token)


def check_deadline(limit_hint: float | None = None) -> None:
    """Raise :class:`DeadlineExceeded` if the ambient deadline passed.

    A no-op (one context-variable read) when no deadline is installed —
    the matcher calls this from its inner loop, so the unlimited path
    must stay free, exactly like :func:`phase` and :func:`count`.
    """
    expires = _deadline.get()
    if expires is not None and time.monotonic() > expires:
        raise DeadlineExceeded(limit_hint)


def active_deadline() -> float | None:
    """Monotonic expiry of the ambient deadline, if one is installed."""
    return _deadline.get()


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time the enclosed block under ``name`` if a collector is active.

    The elapsed time is recorded even when the block raises, so error
    paths (a submission failing mid-match) still show up in the totals.
    Entering a phase also checks the ambient deadline — phase
    boundaries are natural cancellation points, and checking here means
    even layers without inner-loop checks cannot start new work past
    their budget.
    """
    check_deadline()
    collector = _collector.get()
    if collector is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        collector.add(name, time.perf_counter() - started)


def count(name: str, amount: int = 1) -> None:
    """Record ``amount`` occurrences of ``name`` on the ambient collector.

    A no-op (one context-variable read) when no collector is installed,
    exactly like :func:`phase` — the matcher calls this from its inner
    loops, so the uninstrumented path must stay free.

    Counter names emitted by the matching engine:

    ``match.nodes_visited``
        Backtracking search states expanded by Algorithm 1.
    ``match.candidates_pruned``
        Graph nodes removed from the search space Φ by the degree and
        variable-arity filters before the search started.
    ``match.cache_hits`` / ``match.cache_misses``
        Engine-level ``match_pattern`` result-cache outcomes.
    ``match.embeddings_truncated``
        Times the :data:`~repro.matching.pattern_matching.MAX_EMBEDDINGS`
        safety valve cut a search short.
    ``match.assignments_truncated``
        Times the method-assignment sweep hit its permutation cap.

    The execution engine emits ``interp.compile_hits`` /
    ``interp.compile_misses`` — compiled-program cache traffic from
    :func:`repro.interp.compiler.compile_unit` — through the same
    channel, so duplicate-heavy cohorts show their compile reuse in
    ``--stats`` and ``/metrics`` alongside the matcher counters.
    """
    collector = _collector.get()
    if collector is not None:
        collector.increment(name, amount)


@contextmanager
def collecting(
    collector: PhaseCollector | None = None,
) -> Iterator[PhaseCollector]:
    """Install ``collector`` (or a fresh one) as the ambient collector.

    Returns the collector so callers can read the totals afterwards::

        with collecting() as phases:
            engine.grade(source)
        print(phases.seconds)
    """
    if collector is None:
        collector = PhaseCollector()
    token = _collector.set(collector)
    try:
        yield collector
    finally:
        _collector.reset(token)


def active_collector() -> PhaseCollector | None:
    """The collector currently installed in this context, if any."""
    return _collector.get()
