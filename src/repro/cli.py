"""Command-line interface: grade submissions from the shell.

Usage::

    repro list
    repro show assignment1
    repro grade assignment1 Submission.java
    repro grade assignment1 -            # read the submission from stdin
    repro grade-batch assignment1 submissions/ --stats
    repro grade-batch assignment1 --synthetic 200 --mode thread --stats
    repro grade-batch assignment1 submissions/ --cluster --stats
    repro grade-campaign assignment1 manifest.jsonl --cache-dir cache/
    repro grade-campaign assignment1 --synthetic 1000000 --cache-dir cache/
    repro store migrate cache/ [--remove-json]
    repro store info cache/
    repro repair corpus build assignment1 --cache-dir cache/
    repro repair corpus info assignment1 --cache-dir cache/
    repro serve --port 8652 --workers 4 [--cluster] [--shards 4]
    repro lint-kb [assignment ...] [--json -] [--fail-on error]
    repro test assignment1 Submission.java
    repro epdg assignment1 Submission.java [--dot]
    repro export-kb out_dir/

Instructors get the whole pipeline without writing Python: ``grade``
prints the personalized feedback, ``grade-batch`` runs the batch
pipeline (worker pools + result cache, see ``docs/SCALING.md``) over
files, directories, or a synthetic cohort, ``grade-campaign`` streams
arbitrarily large manifests through checkpointed shards (resumable;
see ``docs/SCALING.md``), ``store`` manages the persistent result
store (including JSON-to-SQLite migration), ``repair`` manages the
repair channel's per-assignment corpus of verified correct solutions
(the ``--repair`` flag on grade-batch/grade-campaign/serve turns the
channel on; see ``docs/REPAIR.md``), the ``--perf`` flag on the same
three commands adds performance diagnostics (loop anti-patterns
cross-checked against measured cost shapes; see ``docs/ANALYSIS.md``),
``lint-kb`` statically
validates the pattern/constraint knowledge base (the CI gate; see
``docs/ANALYSIS.md``), ``test`` runs the functional suite, ``epdg``
dumps the dependence graph, and ``export-kb`` writes the knowledge base
as JSON.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import FeedbackEngine, all_assignment_names, get_assignment
from repro.errors import JavaSyntaxError, ReproError
from repro.java import parse_submission
from repro.kb import all_patterns
from repro.patterns import constraint_to_dict, pattern_to_dict
from repro.pdg import extract_all_epdgs, to_dot
from repro.testing import run_tests_on_source


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return pathlib.Path(path).read_text()


def _cmd_list(_args) -> int:
    print(f"{'assignment':22s} {'P':>3} {'C':>3} {'S':>10}  title")
    for name in all_assignment_names():
        assignment = get_assignment(name)
        size = assignment.space().size if assignment.space_factory else 0
        print(f"{name:22s} {assignment.pattern_count:3d} "
              f"{assignment.constraint_count:3d} {size:10,d}  "
              f"{assignment.title}")
    return 0


def _cmd_show(args) -> int:
    assignment = get_assignment(args.assignment)
    print(f"{assignment.name}: {assignment.title}")
    print(assignment.statement)
    print()
    for method in assignment.expected_methods:
        print(f"expected method: {method.name}")
        for pattern, count in method.patterns:
            expected = "any" if count is None else count
            print(f"  pattern {pattern.name} (expected {expected}): "
                  f"{pattern.description}")
        for constraint in method.constraints:
            print(f"  constraint {constraint.name}")
    print()
    print("reference solution:")
    print(assignment.reference_solutions[0])
    return 0


def _cmd_grade(args) -> int:
    assignment = get_assignment(args.assignment)
    engine = FeedbackEngine(assignment)
    report = engine.grade(_read_source(args.submission))
    print(report.render())
    return 0 if report.is_positive else 1


def _collect_batch(args) -> list[tuple[str, str]]:
    """The cohort for ``grade-batch``: files, directories, or synthetic."""
    cohort: list[tuple[str, str]] = []
    for entry in args.submissions:
        path = pathlib.Path(entry)
        if path.is_dir():
            for java in sorted(path.glob("*.java")):
                cohort.append((java.name, java.read_text()))
        else:
            cohort.append((path.name if entry != "-" else "<stdin>",
                           _read_source(entry)))
    if args.synthetic:
        from repro.synth import sample_submissions

        assignment = get_assignment(args.assignment)
        cohort.extend(
            (f"synthetic-{s.index}", s.source)
            for s in sample_submissions(
                assignment.space(), args.synthetic, seed=args.seed
            )
        )
    if not cohort:
        raise ReproError(
            "grade-batch needs submission files/directories or --synthetic N"
        )
    return cohort


def _cmd_grade_batch(args) -> int:
    from repro.core.pipeline import BatchGrader

    assignment = get_assignment(args.assignment)
    grader = BatchGrader(
        assignment,
        mode=args.mode,
        workers=args.workers,
        cache=not args.no_cache,
        store=args.cache_dir,
        cluster=args.cluster,
        store_backend=args.store_backend,
        repair=args.repair,
        perf=args.perf,
    )
    result = grader.grade_batch(_collect_batch(args))
    if args.json:
        payload = {
            "assignment": result.assignment_name,
            "stats": result.stats.to_dict(),
            "submissions": [
                {"label": item.label, "from_cache": item.from_cache,
                 **item.report.to_dict()}
                for item in result.items
            ],
        }
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            pathlib.Path(args.json).write_text(text + "\n")
    elif args.render:
        for item in result.items:
            print(f"=== {item.label} ===")
            print(item.report.render())
            print()
    else:
        for item in result.items:
            report = item.report
            cached = " (cached)" if item.from_cache else ""
            print(f"{item.label}: {report.status} "
                  f"{report.score:g}/{report.max_score:g}{cached}")
    if args.stats:
        print()
        print(result.stats.summary())
    return 1 if result.stats.errors else 0


def _cmd_grade_campaign(args) -> int:
    from repro.core.campaign import (
        CampaignRunner,
        iter_manifest,
        synthetic_stream,
    )

    assignment = get_assignment(args.assignment)
    if args.manifest is None and not args.synthetic:
        raise ReproError(
            "grade-campaign needs a manifest file or --synthetic N"
        )
    if args.manifest is not None and args.synthetic:
        raise ReproError(
            "grade-campaign takes a manifest file or --synthetic N, not both"
        )
    runner = CampaignRunner(
        assignment,
        args.cache_dir,
        shard_size=args.shard_size,
        mode=args.mode,
        workers=args.workers,
        cluster=args.cluster,
        max_seconds=args.max_seconds,
        store_backend=args.store_backend,
        repair=args.repair,
        perf=args.perf,
    )
    if args.manifest is not None:
        stream = iter_manifest(args.manifest)
    else:
        stream = synthetic_stream(
            assignment, args.synthetic, seed=args.seed
        )
    result = runner.run(
        stream,
        campaign_id=args.campaign_id,
        resume=not args.no_resume,
        max_shards=args.max_shards,
        output_dir=args.output_dir,
    )
    if args.json != "-":
        stopped = "" if result.completed else " (stopped at --max-shards)"
        print(
            f"campaign {result.campaign_id!r}: {result.submissions} "
            f"submissions in {result.shards_total} shards "
            f"({result.shards_resumed} resumed, {result.shards_graded} "
            f"graded) in {result.wall_seconds:.1f}s "
            f"[{runner.store.backend_name} store]{stopped}"
        )
        if args.stats:
            print()
            print(result.stats.summary())
    if args.json:
        text = json.dumps(result.to_dict(), indent=2)
        if args.json == "-":
            print(text)
        else:
            pathlib.Path(args.json).write_text(text + "\n")
    return 1 if result.run_stats.errors else 0


def _cmd_store(args) -> int:
    from repro.core.storage import resolve_backend
    from repro.core.storage.migrate import migrate_to_sqlite
    from repro.core.storage.sqlite_backend import database_path

    root = pathlib.Path(args.directory)
    if args.store_command == "migrate":
        if not root.is_dir():
            raise ReproError(f"{root} is not a store directory")
        stats = migrate_to_sqlite(root, remove_json=args.remove_json)
        print(stats.summary())
        print(f"{root} now resolves to the "
              f"{resolve_backend(root)!r} backend")
        return 0
    # info
    backend = resolve_backend(root)
    print(f"store root: {root}")
    print(f"resolved backend: {backend}")
    if backend == "sqlite":
        db = database_path(root)
        if db.is_file():
            import sqlite3

            size = db.stat().st_size
            try:
                with sqlite3.connect(db) as conn:
                    rows = conn.execute(
                        "SELECT kind, COUNT(*) FROM records GROUP BY kind"
                    ).fetchall()
            except sqlite3.Error as error:
                raise ReproError(f"cannot read {db}: {error}") from None
            print(f"database: {db} ({size:,d} bytes)")
            for kind, count in sorted(rows):
                print(f"  {kind}: {count:,d} records")
        else:
            print(f"database: {db} (not created yet)")
    else:
        files = sum(1 for _ in root.rglob("*.json")) if root.is_dir() else 0
        print(f"json files: {files:,d}")
        for kind, count in sorted(_json_kind_counts(root).items()):
            print(f"  {kind}: {count:,d} records")
    return 0


#: Subdirectories of a JSON scope dir that hold namespaced record kinds
#: (everything else at that level is an entry shard).
_JSON_KINDS = ("campaign", "cluster", "repair")


def _json_kind_counts(root: pathlib.Path) -> dict[str, int]:
    """Per-kind record counts across every scope of a JSON store root."""
    counts = {"entry": 0, **{kind: 0 for kind in _JSON_KINDS}}
    if not root.is_dir():
        return counts
    for assignment_dir in (p for p in root.iterdir() if p.is_dir()):
        for scope_dir in (p for p in assignment_dir.iterdir() if p.is_dir()):
            for sub in (p for p in scope_dir.iterdir() if p.is_dir()):
                if sub.name in _JSON_KINDS:
                    counts[sub.name] += sum(
                        1 for _ in sub.glob("*/*.json")
                    )
                else:
                    counts["entry"] += sum(1 for _ in sub.glob("*.json"))
    return counts


def _cmd_repair(args) -> int:
    from repro.core.store import ResultStore
    from repro.repair.corpus import RepairCorpus

    assignment = get_assignment(args.assignment)
    store = ResultStore(
        args.cache_dir, assignment, backend=args.store_backend, repair=True
    )
    if args.corpus_command == "build":
        corpus = RepairCorpus.build(
            assignment, synth_samples=args.synth_samples
        )
        saved = corpus.save(store)
        counts = corpus.origin_counts()
        print(
            f"built repair corpus for {assignment.name}: {saved} verified "
            f"solutions ({counts.get('reference', 0)} reference, "
            f"{counts.get('synth', 0)} synthetic) "
            f"[{store.backend_name} store]"
        )
        return 0
    # info
    print(f"store root: {store.root}")
    print(f"resolved backend: {store.backend_name}")
    print(f"repair records in scope: {store.repair_count():,d}")
    corpus = RepairCorpus.load(assignment, store)
    if corpus is None:
        print("corpus: not built (run `repro repair corpus build`)")
    else:
        counts = corpus.origin_counts()
        print(
            f"corpus: {len(corpus)} verified solutions "
            f"({counts.get('reference', 0)} reference, "
            f"{counts.get('synth', 0)} synthetic)"
        )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import GradingService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        pool_mode=args.pool_mode,
        queue_capacity=args.queue,
        default_deadline_seconds=args.deadline,
        max_deadline_seconds=max(args.deadline, args.max_deadline),
        cache_size=args.cache_size,
        cache_dir=args.cache_dir,
        cluster=args.cluster,
        repair=args.repair,
        perf=args.perf,
        drain_timeout_seconds=args.drain_timeout,
        debug_hooks=args.debug_hooks,
        store_backend=args.store_backend,
    )
    if args.workers is not None:
        config.workers = max(1, args.workers)

    if args.shards > 1:
        from repro.serve.router import ShardRouter

        router = ShardRouter(config, shards=args.shards)

        async def run_router() -> int:
            await router.start()
            print(
                f"repro shard router on http://{config.host}:{router.port} "
                f"({args.shards} shards x {config.workers} "
                f"{config.pool_mode} workers)",
                flush=True,
            )
            return await router.serve_forever()

        return asyncio.run(run_router())

    service = GradingService(config)

    async def run() -> int:
        await service.start()
        print(
            f"repro grading service on http://{config.host}:{service.port} "
            f"({config.workers} {config.pool_mode} workers, "
            f"queue {config.queue_capacity}, "
            f"deadline {config.default_deadline_seconds:g}s)",
            flush=True,
        )
        return await service.serve_forever()

    return asyncio.run(run())


def _cmd_lint_kb(args) -> int:
    from repro.analysis import lint_knowledge_base

    report = lint_knowledge_base(args.assignments or None)
    if args.json:
        text = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(text)
        else:
            pathlib.Path(args.json).write_text(text + "\n")
            print(report.render())
    else:
        print(report.render())
    thresholds = {"info": 0, "warning": 1, "error": 2}
    if args.fail_on == "never":
        return 0
    return 1 if report.worst_rank() >= thresholds[args.fail_on] else 0


def _cmd_test(args) -> int:
    assignment = get_assignment(args.assignment)
    report = run_tests_on_source(
        _read_source(args.submission), assignment.tests
    )
    print(report.summary())
    for result in report.failures:
        label = f"{result.test.method}{result.test.arguments}"
        if result.error:
            print(f"  FAIL {label}: {result.error}")
        else:
            print(f"  FAIL {label}: expected "
                  f"{result.test.expected_stdout!r}, got "
                  f"{result.actual_stdout!r}")
    return 0 if report.passed else 1


def _cmd_epdg(args) -> int:
    source = _read_source(args.submission)
    graphs = extract_all_epdgs(parse_submission(source))
    for name, graph in graphs.items():
        if args.dot:
            print(to_dot(graph))
        else:
            print(graph)
            print()
    return 0


def _cmd_export_kb(args) -> int:
    out = pathlib.Path(args.directory)
    (out / "patterns").mkdir(parents=True, exist_ok=True)
    (out / "assignments").mkdir(parents=True, exist_ok=True)
    for name, pattern in all_patterns().items():
        path = out / "patterns" / f"{name}.json"
        path.write_text(json.dumps(pattern_to_dict(pattern), indent=2))
    for name in all_assignment_names():
        assignment = get_assignment(name)
        payload = {
            "name": assignment.name,
            "title": assignment.title,
            "statement": assignment.statement,
            "reference_solutions": assignment.reference_solutions,
            "expected_methods": [
                {
                    "name": method.name,
                    "patterns": [
                        {"pattern": pattern.name, "expected": count}
                        for pattern, count in method.patterns
                    ],
                    "constraints": [
                        constraint_to_dict(c) for c in method.constraints
                    ],
                }
                for method in assignment.expected_methods
            ],
        }
        path = out / "assignments" / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2))
    total = len(all_patterns()) + len(all_assignment_names())
    print(f"wrote {total} knowledge-base files under {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Personalized feedback for introductory Java "
                    "assignments (ICDE 2017 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the twelve assignments"
                   ).set_defaults(func=_cmd_list)

    show = sub.add_parser("show", help="show one assignment's spec")
    show.add_argument("assignment")
    show.set_defaults(func=_cmd_show)

    grade = sub.add_parser("grade", help="grade a submission")
    grade.add_argument("assignment")
    grade.add_argument("submission", help="Java file, or - for stdin")
    grade.set_defaults(func=_cmd_grade)

    batch = sub.add_parser(
        "grade-batch",
        help="grade many submissions with workers + result cache",
    )
    batch.add_argument("assignment")
    batch.add_argument(
        "submissions", nargs="*",
        help="Java files and/or directories of *.java files",
    )
    batch.add_argument(
        "--synthetic", type=int, default=0, metavar="N",
        help="also grade N submissions sampled from the assignment's "
             "synthetic error-model space",
    )
    batch.add_argument("--seed", type=int, default=42,
                       help="sampling seed for --synthetic (default 42)")
    batch.add_argument(
        "--mode", choices=["serial", "thread", "process"], default="serial",
        help="worker model (default serial; results are identical in all "
             "modes)",
    )
    batch.add_argument("--workers", type=int, default=None,
                       help="pool size for thread/process modes "
                            "(default: CPU count)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the content-keyed result cache")
    batch.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent on-disk result cache shared "
                            "across runs and processes (entries are "
                            "invalidated automatically when the "
                            "knowledge base changes)")
    batch.add_argument("--store-backend",
                       choices=["auto", "json", "sqlite"], default="auto",
                       help="on-disk representation for --cache-dir "
                            "(default auto: sqlite when the directory "
                            "holds a store.sqlite, json otherwise)")
    batch.add_argument("--cluster", action="store_true",
                       help="bucket structurally duplicate submissions "
                            "and grade one representative per bucket "
                            "(output-preserving; see docs/CLUSTERING.md)")
    batch.add_argument("--repair", action="store_true",
                       help="add verified minimal-fix suggestions to "
                            "rejected submissions' reports "
                            "(see docs/REPAIR.md)")
    batch.add_argument("--perf", action="store_true",
                       help="add performance diagnostics (loop "
                            "anti-patterns cross-checked against "
                            "measured cost shapes; see docs/ANALYSIS.md)")
    batch.add_argument("--stats", action="store_true",
                       help="print per-phase timing, cache hit rate, and "
                            "throughput (PipelineStats)")
    batch.add_argument("--render", action="store_true",
                       help="print full feedback per submission instead of "
                            "one summary line")
    batch.add_argument("--json", metavar="FILE",
                       help="write reports + stats as JSON (- for stdout)")
    batch.set_defaults(func=_cmd_grade_batch)

    campaign = sub.add_parser(
        "grade-campaign",
        help="grade an arbitrarily large cohort in resumable shards",
    )
    campaign.add_argument("assignment")
    campaign.add_argument(
        "manifest", nargs="?", default=None,
        help="JSONL manifest: one {\"label\", \"source\"|\"path\"} "
             "object per line (paths resolve relative to the manifest)",
    )
    campaign.add_argument(
        "--synthetic", type=int, default=0, metavar="N",
        help="grade N synthetic submissions instead of a manifest "
             "(duplicate-heavy stream from the assignment's "
             "synthesis space)",
    )
    campaign.add_argument("--seed", type=int, default=11,
                          help="seed for --synthetic (default 11)")
    campaign.add_argument("--cache-dir", metavar="DIR", required=True,
                          help="result store holding the reports and the "
                               "campaign journal (required: it is what "
                               "makes the campaign resumable)")
    campaign.add_argument("--store-backend",
                          choices=["auto", "json", "sqlite"],
                          default="auto",
                          help="store representation (default auto; "
                               "sqlite recommended at campaign scale)")
    campaign.add_argument("--campaign-id", default="campaign",
                          help="journal namespace; reusing an id resumes "
                               "it (default 'campaign')")
    campaign.add_argument("--shard-size", type=int, default=1000,
                          help="submissions per checkpointed shard "
                               "(default 1000)")
    campaign.add_argument(
        "--mode", choices=["serial", "thread", "process"], default="serial",
        help="worker model within each shard (default serial)",
    )
    campaign.add_argument("--workers", type=int, default=None,
                          help="pool size for thread/process modes")
    campaign.add_argument("--cluster", action="store_true",
                          help="cluster-aware grading within shards "
                               "(see docs/CLUSTERING.md)")
    campaign.add_argument("--repair", action="store_true",
                          help="add verified minimal-fix suggestions to "
                               "rejected submissions' reports "
                               "(see docs/REPAIR.md)")
    campaign.add_argument("--perf", action="store_true",
                          help="add performance diagnostics to reports "
                               "(see docs/ANALYSIS.md)")
    campaign.add_argument("--max-seconds", type=float, default=None,
                          help="per-submission wall-clock budget")
    campaign.add_argument("--max-shards", type=int, default=None,
                          help="stop after this many shards (checkpoint "
                               "and exit; a rerun resumes)")
    campaign.add_argument("--no-resume", action="store_true",
                          help="ignore existing checkpoints for this "
                               "campaign id")
    campaign.add_argument("--output-dir", metavar="DIR", default=None,
                          help="write one JSONL report file per shard")
    campaign.add_argument("--stats", action="store_true",
                          help="print merged PipelineStats for the whole "
                               "campaign")
    campaign.add_argument("--json", metavar="FILE",
                          help="write the campaign result as JSON "
                               "(- for stdout)")
    campaign.set_defaults(func=_cmd_grade_campaign)

    store = sub.add_parser(
        "store",
        help="inspect or migrate a persistent result store",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    migrate = store_sub.add_parser(
        "migrate",
        help="copy a sharded-JSON store into store.sqlite in place",
    )
    migrate.add_argument("directory", help="store root (a --cache-dir)")
    migrate.add_argument("--remove-json", action="store_true",
                         help="delete JSON entries after migrating them")
    migrate.set_defaults(func=_cmd_store)
    info = store_sub.add_parser(
        "info", help="show a store's resolved backend and record counts",
    )
    info.add_argument("directory", help="store root (a --cache-dir)")
    info.set_defaults(func=_cmd_store)

    repair = sub.add_parser(
        "repair",
        help="manage the repair channel (see docs/REPAIR.md)",
    )
    repair_sub = repair.add_subparsers(dest="repair_command", required=True)
    corpus = repair_sub.add_parser(
        "corpus",
        help="build or inspect the verified-solution corpus",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_build = corpus_sub.add_parser(
        "build",
        help="verify reference + synthetic solutions and persist them",
    )
    corpus_build.add_argument("assignment")
    corpus_build.add_argument("--cache-dir", metavar="DIR", required=True,
                              help="result store the corpus persists into "
                                   "(shared with --repair grading runs)")
    corpus_build.add_argument("--store-backend",
                              choices=["auto", "json", "sqlite"],
                              default="auto",
                              help="store representation (default auto)")
    corpus_build.add_argument("--synth-samples", type=int, default=16,
                              help="synthetic correct solutions to sample "
                                   "beyond the references (default 16)")
    corpus_build.set_defaults(func=_cmd_repair)
    corpus_info = corpus_sub.add_parser(
        "info", help="show the persisted corpus for one assignment",
    )
    corpus_info.add_argument("assignment")
    corpus_info.add_argument("--cache-dir", metavar="DIR", required=True,
                             help="result store to inspect")
    corpus_info.add_argument("--store-backend",
                             choices=["auto", "json", "sqlite"],
                             default="auto",
                             help="store representation (default auto)")
    corpus_info.set_defaults(func=_cmd_repair)

    serve = sub.add_parser(
        "serve",
        help="run the asyncio grading service (see docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8652,
                       help="listen port (0 for ephemeral; default 8652)")
    serve.add_argument("--workers", type=int, default=None,
                       help="grading worker processes (default: up to 4)")
    serve.add_argument("--pool-mode", choices=["process", "inline"],
                       default="process",
                       help="process workers (hard deadline kills) or "
                            "inline threads (cooperative deadline only)")
    serve.add_argument("--queue", type=int, default=64,
                       help="admitted requests allowed to wait for a "
                            "worker before 429 (default 64)")
    serve.add_argument("--deadline", type=float, default=10.0,
                       help="default per-request grading deadline in "
                            "seconds (default 10)")
    serve.add_argument("--max-deadline", type=float, default=30.0,
                       help="cap on client-requested deadlines "
                            "(default 30)")
    serve.add_argument("--cache-size", type=int, default=8192,
                       help="per-assignment result-cache entries "
                            "(default 8192)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent on-disk result cache shared "
                            "with grade-batch and across restarts")
    serve.add_argument("--store-backend",
                       choices=["auto", "json", "sqlite"], default="auto",
                       help="on-disk representation for --cache-dir "
                            "(default auto)")
    serve.add_argument("--shards", type=int, default=1,
                       help="run N grading service processes behind a "
                            "consistent-hash router (default 1: a "
                            "single in-process service)")
    serve.add_argument("--cluster", action="store_true",
                       help="bucket structurally duplicate submissions "
                            "per worker and specialize one "
                            "representative's report "
                            "(output-preserving; see docs/CLUSTERING.md)")
    serve.add_argument("--repair", action="store_true",
                       help="add verified minimal-fix suggestions to "
                            "rejected submissions' reports "
                            "(see docs/REPAIR.md)")
    serve.add_argument("--perf", action="store_true",
                       help="add performance diagnostics (loop "
                            "anti-patterns cross-checked against "
                            "measured cost shapes; see docs/ANALYSIS.md)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight work on "
                            "SIGTERM (default 30)")
    serve.add_argument("--debug-hooks", action="store_true",
                       help="honor the debug_sleep_seconds request "
                            "field (load testing only)")
    serve.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint-kb",
        help="statically validate the knowledge base (CI gate)",
    )
    lint.add_argument(
        "assignments", nargs="*",
        help="assignment names to lint (default: all twelve)",
    )
    lint.add_argument("--json", metavar="FILE",
                      help="write the machine-readable lint report as "
                           "JSON (- for stdout)")
    lint.add_argument("--fail-on",
                      choices=["error", "warning", "info", "never"],
                      default="error",
                      help="lowest severity that makes the exit status "
                           "non-zero (default error)")
    lint.set_defaults(func=_cmd_lint_kb)

    test = sub.add_parser("test", help="run the functional tests")
    test.add_argument("assignment")
    test.add_argument("submission", help="Java file, or - for stdin")
    test.set_defaults(func=_cmd_test)

    epdg = sub.add_parser("epdg", help="print a submission's EPDGs")
    epdg.add_argument("assignment", nargs="?",
                      help="unused; kept for symmetry")
    epdg.add_argument("submission", help="Java file, or - for stdin")
    epdg.add_argument("--dot", action="store_true",
                      help="emit Graphviz DOT instead of text")
    epdg.set_defaults(func=_cmd_epdg)

    export = sub.add_parser("export-kb",
                            help="write the knowledge base as JSON")
    export.add_argument("directory")
    export.set_defaults(func=_cmd_export_kb)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except JavaSyntaxError as error:
        print(f"error: submission does not compile: {error}",
              file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
