"""Pattern variant groups — the paper's first future-work item.

Section VII: "patterns will be clustered by variations to achieve the
same semantics, e.g., a student can access even positions in an array
using if (i % 2 == 0) or updating twice the value of i.  Our algorithms
will take such hierarchy into account accordingly."

A :class:`PatternGroup` bundles alternative patterns with the same
semantics.  The matcher tries every alternative and keeps the best one
(fully-correct embeddings beat approximate ones, which beat absence), so
a single expected-pattern slot accepts several idioms without widening
any individual pattern's expressions.

Constraints keep referencing node ids of the group's *primary*
alternative; every other alternative carries a ``node_map`` translating
primary ids to its own, and matched embeddings are translated back, so
the constraint layer never needs to know which variant matched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PatternDefinitionError
from repro.patterns.model import Pattern


@dataclass
class PatternVariant:
    """One alternative inside a group.

    ``node_map`` maps the *primary* alternative's node ids to this
    pattern's node ids, for every node a constraint may reference.  The
    primary's own variant uses the identity map.
    """

    pattern: Pattern
    node_map: dict[int, int] = field(default_factory=dict)

    def translate(self, primary_node: int) -> int:
        if primary_node in self.node_map:
            return self.node_map[primary_node]
        raise PatternDefinitionError(
            f"variant {self.pattern.name!r} does not map primary node "
            f"u{primary_node}"
        )


@dataclass
class PatternGroup:
    """Alternatives with the same semantics, tried best-first.

    The group presents itself under the primary pattern's ``name`` so
    assignment specs and constraints are untouched when variants are
    added — exactly the drop-in evolution the paper sketches.
    """

    variants: list[PatternVariant]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.variants:
            raise PatternDefinitionError("a pattern group needs variants")
        primary = self.primary.pattern
        if not self.description:
            self.description = primary.description
        identity = {u.node_id: u.node_id for u in primary.nodes}
        if not self.variants[0].node_map:
            self.variants[0].node_map = identity
        for variant in self.variants[1:]:
            for primary_id, variant_id in variant.node_map.items():
                if primary_id >= len(primary.nodes) or variant_id >= len(
                    variant.pattern.nodes
                ):
                    raise PatternDefinitionError(
                        f"variant {variant.pattern.name!r}: node map entry "
                        f"u{primary_id}->u{variant_id} is out of range"
                    )
        names = [v.pattern.name for v in self.variants]
        if len(set(names)) != len(names):
            raise PatternDefinitionError(
                "group variants must have distinct pattern names"
            )

    @property
    def primary(self) -> PatternVariant:
        return self.variants[0]

    @property
    def name(self) -> str:
        return self.primary.pattern.name

    @property
    def feedback_missing(self) -> str:
        return self.primary.pattern.feedback_missing


def group_of(primary: Pattern, *alternatives: tuple[Pattern, dict[int, int]]
             ) -> PatternGroup:
    """Convenience constructor: a primary pattern plus (pattern,
    node_map) alternatives."""
    variants = [PatternVariant(primary)]
    variants.extend(
        PatternVariant(pattern, dict(node_map))
        for pattern, node_map in alternatives
    )
    return PatternGroup(variants=variants)
