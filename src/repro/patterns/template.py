"""Incomplete Java expression templates (Definition 6).

A template is a regular expression over *canonical* node content in which
the pattern's variables appear as bare identifiers.  Matching a template
against a graph node's content under a variable mapping γ (``r ⪯_γ c``)
substitutes each variable with its bound submission identifier and then
searches the node content — templates are *incomplete*, so a substring
match suffices, exactly as in the paper.

Authoring rules:

* the template body is a Python regular expression, so literal
  metacharacters must be escaped (``s\\[x\\]``, ``x \\+= 1``);
* declared variables are written as bare identifiers and are replaced with
  the γ-bound name (with identifier-boundary guards, so variable ``x``
  never matches inside ``max``);
* a single space matches any run of whitespace, letting one template match
  both canonical and hand-written spacing.
"""

from __future__ import annotations

import re
from functools import lru_cache

from repro.errors import PatternDefinitionError

# identifiers *in templates* never contain `$` (it is the regex
# end-anchor there); submission identifiers may, which the boundary
# lookarounds below account for
_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_BOUNDARY_BEFORE = r"(?<![A-Za-z0-9_$])"
_BOUNDARY_AFTER = r"(?![A-Za-z0-9_$])"


class ExprTemplate:
    """A compiled incomplete-expression template.

    Parameters
    ----------
    source:
        The regex template text, e.g. ``x <= s\\.length``.
    variables:
        The declared variable names appearing in ``source``.  Identifiers
        not listed here are matched literally (``length``, ``System``...).
    """

    def __init__(self, source: str, variables: frozenset[str] | set[str]):
        self.source = source
        self.variables = frozenset(variables)
        self._segments = self._split(source)
        mentioned = {seg for kind, seg in self._segments if kind == "var"}
        missing = self.variables - mentioned
        # A variable declared but never mentioned is almost always a typo
        # in the knowledge base; fail fast at definition time.
        if missing and source:
            raise PatternDefinitionError(
                f"template {source!r} never mentions variables {sorted(missing)}"
            )

    def _split(self, source: str) -> list[tuple[str, str]]:
        """Split the template into literal-regex and variable segments."""
        segments: list[tuple[str, str]] = []
        position = 0
        for match in _IDENTIFIER.finditer(source):
            name = match.group(0)
            if name not in self.variables:
                continue
            # an identifier preceded by a backslash is regex syntax
            # (\b, \s ...), never a variable
            if match.start() > 0 and source[match.start() - 1] == "\\":
                continue
            if match.start() > position:
                segments.append(("lit", source[position:match.start()]))
            segments.append(("var", name))
            position = match.end()
        if position < len(source):
            segments.append(("lit", source[position:]))
        return segments

    def mentioned_variables(self) -> frozenset[str]:
        """Variables that actually occur in the template text."""
        return frozenset(seg for kind, seg in self._segments if kind == "var")

    def render(self, gamma: dict[str, str]) -> str:
        """Build the concrete regex for a (complete) binding γ."""
        parts: list[str] = []
        for kind, segment in self._segments:
            if kind == "var":
                if segment not in gamma:
                    raise PatternDefinitionError(
                        f"variable {segment!r} of template {self.source!r} "
                        "is unbound"
                    )
                parts.append(
                    _BOUNDARY_BEFORE + re.escape(gamma[segment]) + _BOUNDARY_AFTER
                )
            else:
                parts.append(segment.replace(" ", r"\s*"))
        return "".join(parts)

    def matches(self, content: str, gamma: dict[str, str]) -> bool:
        """Test ``self ⪯_γ content`` (substring semantics)."""
        if not self.source:
            return True
        regex = _compile(self.render(gamma))
        return regex.search(content) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExprTemplate({self.source!r}, vars={sorted(self.variables)})"


@lru_cache(maxsize=4096)
def _compile(pattern: str) -> re.Pattern[str]:
    try:
        return re.compile(pattern)
    except re.error as error:
        raise PatternDefinitionError(
            f"invalid expression template regex {pattern!r}: {error}"
        ) from None


def render_feedback(template: str, gamma: dict[str, str]) -> str:
    """Instantiate a natural-language feedback template with γ.

    Feedback text references pattern variables in braces — ``"{x} should
    be initialized to 0"`` — which are substituted with the matched
    submission identifiers.  Unbound references are left verbatim so
    partial matches still produce readable feedback.
    """
    def substitute(match: re.Match[str]) -> str:
        name = match.group(1)
        return gamma.get(name, "{" + name + "}")

    return re.sub(r"\{([A-Za-z_$][A-Za-z0-9_$]*)\}", substitute, template)
