"""JSON-friendly (de)serialization of patterns and constraints.

The paper ships its knowledge base as files in a public repository; this
module provides the equivalent round-trip so the KB can be exported,
version-controlled, and re-imported without executing Python definitions.
"""

from __future__ import annotations

from repro.errors import PatternDefinitionError
from repro.patterns.model import (
    Constraint,
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
    Pattern,
    PatternNode,
)
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType, GraphEdge, NodeType


def pattern_to_dict(pattern: Pattern) -> dict:
    """Serialize a pattern to a JSON-compatible dict."""
    return {
        "name": pattern.name,
        "description": pattern.description,
        "feedback_present": pattern.feedback_present,
        "feedback_missing": pattern.feedback_missing,
        "count_nodes": (
            None if pattern.count_nodes is None
            else list(pattern.count_nodes)
        ),
        "nodes": [
            {
                "id": node.node_id,
                "type": node.type.value,
                "expr": node.expr.source,
                "variables": sorted(node.expr.variables),
                "approx": None if node.approx is None else node.approx.source,
                "approx_variables": (
                    [] if node.approx is None else sorted(node.approx.variables)
                ),
                "feedback_correct": node.feedback_correct,
                "feedback_incorrect": node.feedback_incorrect,
            }
            for node in pattern.nodes
        ],
        "edges": [
            {"source": e.source, "target": e.target, "type": e.type.value}
            for e in pattern.edges
        ],
    }


def pattern_from_dict(data: dict) -> Pattern:
    """Deserialize a pattern produced by :func:`pattern_to_dict`."""
    nodes = []
    for raw in data["nodes"]:
        approx = None
        if raw.get("approx") is not None:
            approx = ExprTemplate(
                raw["approx"], frozenset(raw.get("approx_variables", []))
            )
        nodes.append(
            PatternNode(
                node_id=raw["id"],
                type=NodeType(raw["type"]),
                expr=ExprTemplate(raw["expr"], frozenset(raw["variables"])),
                approx=approx,
                feedback_correct=raw.get("feedback_correct", ""),
                feedback_incorrect=raw.get("feedback_incorrect", ""),
            )
        )
    edges = [
        GraphEdge(raw["source"], raw["target"], EdgeType(raw["type"]))
        for raw in data["edges"]
    ]
    count_nodes = data.get("count_nodes")
    return Pattern(
        name=data["name"],
        description=data.get("description", ""),
        nodes=nodes,
        edges=edges,
        feedback_present=data.get("feedback_present", ""),
        feedback_missing=data.get("feedback_missing", ""),
        count_nodes=None if count_nodes is None else tuple(count_nodes),
    )


def constraint_to_dict(constraint: Constraint) -> dict:
    """Serialize a constraint to a JSON-compatible dict."""
    base = {
        "name": constraint.name,
        "feedback_correct": constraint.feedback_correct,
        "feedback_incorrect": constraint.feedback_incorrect,
    }
    if isinstance(constraint, EqualityConstraint):
        base.update(
            kind="equality",
            pattern_i=constraint.pattern_i, node_i=constraint.node_i,
            pattern_j=constraint.pattern_j, node_j=constraint.node_j,
        )
    elif isinstance(constraint, EdgeExistenceConstraint):
        base.update(
            kind="edge",
            pattern_i=constraint.pattern_i, node_i=constraint.node_i,
            pattern_j=constraint.pattern_j, node_j=constraint.node_j,
            edge_type=constraint.edge_type.value,
        )
    elif isinstance(constraint, ContainmentConstraint):
        base.update(
            kind="containment",
            pattern=constraint.pattern, node=constraint.node,
            expr=constraint.expr.source,
            variables=sorted(constraint.expr.variables),
            supporting=list(constraint.supporting),
        )
    else:
        raise PatternDefinitionError(
            f"unknown constraint type {type(constraint).__name__}"
        )
    return base


def constraint_from_dict(data: dict) -> Constraint:
    """Deserialize a constraint produced by :func:`constraint_to_dict`."""
    kind = data.get("kind")
    common = {
        "name": data["name"],
        "feedback_correct": data.get("feedback_correct", ""),
        "feedback_incorrect": data.get("feedback_incorrect", ""),
    }
    if kind == "equality":
        return EqualityConstraint(
            pattern_i=data["pattern_i"], node_i=data["node_i"],
            pattern_j=data["pattern_j"], node_j=data["node_j"],
            **common,
        )
    if kind == "edge":
        return EdgeExistenceConstraint(
            pattern_i=data["pattern_i"], node_i=data["node_i"],
            pattern_j=data["pattern_j"], node_j=data["node_j"],
            edge_type=EdgeType(data["edge_type"]),
            **common,
        )
    if kind == "containment":
        return ContainmentConstraint(
            pattern=data["pattern"], node=data["node"],
            expr=ExprTemplate(data["expr"], frozenset(data["variables"])),
            supporting=tuple(data.get("supporting", [])),
            **common,
        )
    raise PatternDefinitionError(f"unknown constraint kind {kind!r}")
