"""Patterns, feedback templates, and constraints (paper Sections III-B/C).

A :class:`Pattern` is a small graph whose nodes carry *incomplete Java
expressions* (regular-expression templates over declared variables) plus
natural-language feedback; instructors attach patterns to assignments and
correlate them with :class:`EqualityConstraint`,
:class:`EdgeExistenceConstraint` and :class:`ContainmentConstraint`.
"""

from repro.patterns.groups import PatternGroup, PatternVariant, group_of
from repro.patterns.model import (
    Constraint,
    ContainmentConstraint,
    EdgeExistenceConstraint,
    EqualityConstraint,
    Pattern,
    PatternNode,
)
from repro.patterns.template import ExprTemplate, render_feedback
from repro.patterns.serialization import (
    constraint_from_dict,
    constraint_to_dict,
    pattern_from_dict,
    pattern_to_dict,
)

__all__ = [
    "PatternGroup",
    "PatternVariant",
    "group_of",
    "Constraint",
    "ContainmentConstraint",
    "EdgeExistenceConstraint",
    "EqualityConstraint",
    "Pattern",
    "PatternNode",
    "ExprTemplate",
    "render_feedback",
    "pattern_from_dict",
    "pattern_to_dict",
    "constraint_from_dict",
    "constraint_to_dict",
]
