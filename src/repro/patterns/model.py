"""Pattern and constraint dataclasses (Definitions 4, 5, 8, 9, 10)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PatternDefinitionError
from repro.patterns.template import ExprTemplate
from repro.pdg.graph import EdgeType, GraphEdge, NodeType


@dataclass(frozen=True)
class PatternNode:
    """A pattern node ``u = (t_u, r, r̂, f_c, f_i)``.

    ``expr`` (r) is the incomplete expression that marks the node
    *correct*; ``approx`` (r̂) is the looser expression that still
    recognizes the student's intent but marks the node *incorrect*.
    ``feedback_correct``/``feedback_incorrect`` are the node-level
    natural-language templates; an empty ``feedback_incorrect`` marks a
    *crucial* node (paper: no incorrect feedback is attached because
    failing to match it means the whole pattern is not recognized).
    """

    node_id: int
    type: NodeType
    expr: ExprTemplate
    approx: ExprTemplate | None = None
    feedback_correct: str = ""
    feedback_incorrect: str = ""

    @property
    def name(self) -> str:
        return f"u{self.node_id}"

    @property
    def variables(self) -> frozenset[str]:
        merged = set(self.expr.variables)
        if self.approx is not None:
            merged |= self.approx.variables
        return frozenset(merged)

    def __str__(self) -> str:
        return f"{self.name}[{self.type}] {self.expr.source}"


@dataclass
class Pattern:
    """A pattern ``p = (U, F, f_p, f_m)`` with its feedback messages.

    ``name`` identifies the pattern in the knowledge base; constraints
    reference patterns by name.  ``feedback_present``/``feedback_missing``
    are delivered when the pattern is found/absent in a submission.
    """

    name: str
    description: str
    nodes: list[PatternNode] = field(default_factory=list)
    edges: list[GraphEdge] = field(default_factory=list)
    feedback_present: str = ""
    feedback_missing: str = ""
    #: Occurrence identity for counting against ``t̄``.  ``None`` (the
    #: default) counts distinct sets of matched graph nodes.  A tuple of
    #: node ids counts distinct (mapped nodes at those ids, γ) pairs —
    #: used when several data-flow paths legitimately reach the same
    #: anchor node (e.g. the print call of ``assign-print`` after an
    #: if/else definition merge).
    count_nodes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        ids = [node.node_id for node in self.nodes]
        if ids != list(range(len(ids))):
            raise PatternDefinitionError(
                f"pattern {self.name!r} node ids must be dense from 0"
            )
        for edge in self.edges:
            if edge.source >= len(ids) or edge.target >= len(ids):
                raise PatternDefinitionError(
                    f"pattern {self.name!r} edge {edge} references missing node"
                )
        if self.count_nodes is not None:
            for node_id in self.count_nodes:
                if node_id >= len(self.nodes):
                    raise PatternDefinitionError(
                        f"pattern {self.name!r}: count node u{node_id} "
                        "does not exist"
                    )
        for node in self.nodes:
            if node.approx is not None and not (
                node.approx.variables <= node.expr.variables
            ):
                raise PatternDefinitionError(
                    f"pattern {self.name!r} node {node.name}: approximate "
                    "expression variables must be a subset of the exact "
                    "expression's (Definition 4)"
                )

    @property
    def variables(self) -> frozenset[str]:
        merged: set[str] = set()
        for node in self.nodes:
            merged |= node.variables
        return frozenset(merged)

    def node(self, node_id: int) -> PatternNode:
        return self.nodes[node_id]

    def edges_touching(self, node_id: int) -> list[GraphEdge]:
        return [
            e for e in self.edges if e.source == node_id or e.target == node_id
        ]

    def __str__(self) -> str:
        lines = [f"Pattern {self.name}: {self.description}"]
        for node in self.nodes:
            lines.append(f"  {node}")
        for edge in self.edges:
            lines.append(f"  u{edge.source} -> u{edge.target} [{edge.type}]")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# constraints


@dataclass(frozen=True)
class Constraint:
    """Base class for constraints correlating several patterns.

    ``name`` identifies the constraint in feedback; the two feedback
    templates describe the satisfied/violated outcomes.
    """

    name: str
    feedback_correct: str = ""
    feedback_incorrect: str = ""

    def referenced_patterns(self) -> tuple[str, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class EqualityConstraint(Constraint):
    """Definition 8: nodes from two patterns match the *same* graph node."""

    pattern_i: str = ""
    node_i: int = 0
    pattern_j: str = ""
    node_j: int = 0

    def referenced_patterns(self) -> tuple[str, ...]:
        return (self.pattern_i, self.pattern_j)


@dataclass(frozen=True)
class EdgeExistenceConstraint(Constraint):
    """Definition 9: an edge of ``edge_type`` links nodes of two patterns."""

    pattern_i: str = ""
    node_i: int = 0
    pattern_j: str = ""
    node_j: int = 0
    edge_type: EdgeType = EdgeType.DATA

    def referenced_patterns(self) -> tuple[str, ...]:
        return (self.pattern_i, self.pattern_j)


@dataclass(frozen=True)
class ContainmentConstraint(Constraint):
    """Definition 10: a node of the main pattern contains an expression
    over variables drawn from *supporting* patterns.

    ``expr`` is an :class:`ExprTemplate` whose variables come from the
    main pattern and/or any of the supporting patterns' variable sets.
    """

    pattern: str = ""
    node: int = 0
    expr: ExprTemplate = field(
        default_factory=lambda: ExprTemplate("", frozenset())
    )
    supporting: tuple[str, ...] = ()

    def referenced_patterns(self) -> tuple[str, ...]:
        return (self.pattern, *self.supporting)
