"""Functional-testing harness (Table I column ``T`` and the D oracle).

Runs an assignment's :class:`~repro.core.assignment.FunctionalTest` suite
over a submission in the interpreter and reports pass/fail per test.
A submission that fails to parse, crashes, or exceeds its step budget
fails the suite — matching how a JUnit harness would treat it.
"""

from repro.testing.functional import (
    FunctionalReport,
    TestResult,
    run_tests,
    run_tests_on_source,
)

__all__ = [
    "FunctionalReport",
    "TestResult",
    "run_tests",
    "run_tests_on_source",
]
