"""Functional test execution over the interpreter."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import FunctionalTest
from repro.errors import (
    BudgetExceededError,
    JavaRuntimeError,
    JavaSyntaxError,
    ReproError,
)
from repro.interp.interpreter import run_method
from repro.interp.tracing import CostCounters
from repro.interp.values import JavaArray
from repro.java import ast, parse_submission

#: Per-test step budget.  Reference solutions for all twelve assignments
#: finish in well under ten thousand steps, so 100k reliably separates
#: bugs from non-termination while keeping suites over error-model
#: mutants (many of which loop forever) fast.
DEFAULT_TEST_BUDGET = 100_000


@dataclass(frozen=True)
class TestResult:
    """Outcome of one functional test."""

    test: FunctionalTest
    passed: bool
    actual_stdout: str | None = None
    actual_return: object = None
    error: str | None = None
    #: Execution-cost profile (steps, per-loop iterations, calls,
    #: allocations) recorded by the compiled runtime; ``None`` when the
    #: run raised before completing.
    cost: CostCounters | None = None


@dataclass
class FunctionalReport:
    """Outcome of a whole test suite on one submission."""

    results: list[TestResult]
    parse_error: str | None = None

    @property
    def passed(self) -> bool:
        """True when the submission parsed and every test passed."""
        return self.parse_error is None and all(r.passed for r in self.results)

    @property
    def failures(self) -> list[TestResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        if self.parse_error is not None:
            return f"does not compile: {self.parse_error}"
        passed = sum(1 for r in self.results if r.passed)
        return f"{passed}/{len(self.results)} tests passed"


def _materialize_argument(argument):
    """Turn plain Python values from test specs into runtime values.

    Lists/tuples become ``int[]`` (or ``String[]``/``double[]`` based on
    element types), matching how a JUnit harness would construct inputs.
    """
    if isinstance(argument, (list, tuple)):
        if argument and isinstance(argument[0], str):
            element = "String"
        elif any(isinstance(v, float) for v in argument):
            element = "double"
            argument = [float(v) for v in argument]
        else:
            element = "int"
        return JavaArray(element, list(argument))
    return argument


def _returns_match(expected, actual) -> bool:
    if isinstance(expected, (list, tuple)):
        return isinstance(actual, JavaArray) and list(expected) == list(
            actual.elements
        )
    return expected == actual


def run_tests(
    unit: ast.CompilationUnit,
    tests: list[FunctionalTest],
    step_budget: int = DEFAULT_TEST_BUDGET,
    cache_key: str | None = None,
) -> FunctionalReport:
    """Run a test suite over a parsed submission.

    A submission that exhausts its step budget (non-termination) fails
    the remaining tests without running them: re-running an infinite
    loop on every input would only multiply the cost of the same
    verdict.

    ``cache_key`` (conventionally the source text) lets repeated suites
    over duplicate sources share one compiled program.
    """
    results: list[TestResult] = []
    timed_out = False
    for test in tests:
        if timed_out:
            results.append(TestResult(
                test=test, passed=False,
                error="skipped: earlier test exceeded the step budget",
            ))
            continue
        arguments = [_materialize_argument(a) for a in test.arguments]
        try:
            execution = run_method(
                unit,
                test.method,
                arguments,
                files=test.files_dict(),
                stdin=test.stdin,
                step_budget=step_budget,
                cache_key=cache_key,
            )
        except BudgetExceededError as error:
            timed_out = True
            results.append(
                TestResult(test=test, passed=False, error=str(error))
            )
            continue
        except (JavaRuntimeError, ReproError) as error:
            results.append(
                TestResult(test=test, passed=False, error=str(error))
            )
            continue
        passed = True
        if test.expected_stdout is not None:
            passed = passed and execution.stdout == test.expected_stdout
        if test.compare_return:
            passed = passed and _returns_match(
                test.expected_return, execution.return_value
            )
        if test.check is not None:
            passed = passed and bool(test.check(execution))
        results.append(
            TestResult(
                test=test,
                passed=passed,
                actual_stdout=execution.stdout,
                actual_return=execution.return_value,
                cost=execution.cost,
            )
        )
    return FunctionalReport(results=results)


def run_tests_on_source(
    source: str,
    tests: list[FunctionalTest],
    step_budget: int = DEFAULT_TEST_BUDGET,
) -> FunctionalReport:
    """Parse ``source`` and run the suite; parse errors fail the suite."""
    try:
        unit = parse_submission(source)
    except JavaSyntaxError as error:
        return FunctionalReport(results=[], parse_error=str(error))
    return run_tests(unit, tests, step_budget=step_budget, cache_key=source)
