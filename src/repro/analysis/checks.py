"""Submission diagnostic checks: CFG + dataflow over the EPDG and AST.

Each :class:`Check` pairs a dataflow/CFG pass with a natural-language
message template; :func:`run_checks` runs the whole registry over every
graded method and returns the resulting
:class:`~repro.analysis.diagnostics.Diagnostic` list, timing each check
under an ``analysis.<check-id>`` phase and tallying
``analysis.<check-id>`` / ``analysis.diagnostics`` counters on the
ambient collector (so ``grade-batch --stats`` and the serving layer's
``/metrics`` expose them with zero plumbing).

Messages go through :func:`repro.patterns.template.render_feedback`,
the same template machinery pattern feedback uses, with a small γ per
finding (``{var}``, ``{method}``, ``{type}``, ``{kind}``).

The check registry is ordered and append-only in spirit:
:func:`analysis_fingerprint` digests the registered check ids into the
persistent result store's KB fingerprint, so adding/removing a check
invalidates stale cached reports that were graded without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping

from repro.analysis import cfg, dataflow
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.instrumentation import count, phase
from repro.java import ast
from repro.patterns.template import render_feedback
from repro.pdg.graph import Epdg

#: Bump when check semantics change in a way that should invalidate
#: persisted grading results (see :func:`analysis_fingerprint`).
ANALYSIS_VERSION = 1


@dataclass(frozen=True)
class MethodAnalysis:
    """Everything one check needs about one graded method."""

    method: ast.MethodDecl
    graph: Epdg
    #: Names resolved outside the method body (class fields); the
    #: per-method EPDG cannot see their definitions.
    fields: frozenset[str]

    # several checks need a body traversal; walking the statement tree
    # once and sharing the list keeps the analysis phase cheap
    # (``cached_property`` writes via ``__dict__``, so frozen is fine)

    @cached_property
    def statements(self) -> list[ast.Statement]:
        return list(cfg.iter_statements(self.method.body))

    @cached_property
    def loops(self) -> "list[_Loop]":
        return [
            node
            for node in self.statements
            if isinstance(node, (ast.While, ast.DoWhile, ast.For))
        ]

    @cached_property
    def declared_locals(self) -> list[str]:
        return cfg.declared_locals(self.method, self.statements)


CheckRunner = Callable[["Check", MethodAnalysis], "list[Diagnostic]"]


@dataclass(frozen=True)
class Check:
    """One registered submission check."""

    id: str
    severity: Severity
    #: One-line description for the check catalogue (docs, tests).
    summary: str
    #: NL message template; rendered per finding with ``render_feedback``.
    template: str
    runner: CheckRunner

    def diagnostic(
        self,
        context: MethodAnalysis,
        gamma: Mapping[str, str],
        position: tuple[int, int] | None,
        snippet: str = "",
    ) -> Diagnostic:
        """Build one finding of this check with a rendered message."""
        bindings = {"method": context.method.name, **gamma}
        line, column = position if position is not None else (None, None)
        return Diagnostic(
            check=self.id,
            severity=self.severity,
            method=context.method.name,
            message=render_feedback(self.template, bindings),
            line=line,
            column=column,
            snippet=snippet,
        )


# ----------------------------------------------------------------------
# check implementations


def _check_use_before_init(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    uses = dataflow.uninitialized_uses(context.graph, ignore=context.fields)
    for variable, node_id in sorted(uses.items(), key=lambda kv: kv[1]):
        position, _ = cfg.first_use_position(context.method, variable)
        findings.append(
            check.diagnostic(
                context,
                {"var": variable},
                position,
                snippet=context.graph.node(node_id).content,
            )
        )
    return findings


def _check_unused_variable(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    read: set[str] = set()
    for node in context.graph.nodes:
        read.update(node.uses)
    unread = dataflow.unread_definitions(context.graph)
    for variable in context.declared_locals:
        # declared-but-never-touched locals produce no EPDG node at all,
        # so check the AST declaration list, not just graph definitions
        if variable in read or variable in context.fields:
            continue
        if variable not in unread and _graph_defines(context.graph, variable):
            continue
        position = cfg.first_definition_position(context.method, variable)
        findings.append(
            check.diagnostic(
                context, {"var": variable}, position, snippet=variable
            )
        )
    return findings


def _graph_defines(graph: Epdg, variable: str) -> bool:
    return any(variable in node.defines for node in graph.nodes)


def _check_unused_parameter(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    position = cfg.position_of(context.method)
    return [
        check.diagnostic(context, {"var": name}, position, snippet=name)
        for name in dataflow.unused_parameters(context.graph)
    ]


def _check_unreachable(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for statement in cfg.unreachable_statements(context.method.body):
        findings.append(
            check.diagnostic(
                context,
                {},
                cfg.position_of(statement),
                snippet=type(statement).__name__.lower(),
            )
        )
    return findings


def _check_missing_return(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    return_type = context.method.return_type
    if return_type.name == "void" and not return_type.is_array:
        return []
    if not cfg.completes_normally(context.method.body):
        return []
    return [
        check.diagnostic(
            context,
            {"type": str(return_type)},
            cfg.position_of(context.method),
            snippet=context.method.signature(),
        )
    ]


_Loop = ast.While | ast.DoWhile | ast.For


def _loop_kind(loop: _Loop) -> str:
    if isinstance(loop, ast.While):
        return "while"
    if isinstance(loop, ast.DoWhile):
        return "do-while"
    return "for"


def _loop_condition(loop: _Loop) -> ast.Expression | None:
    return loop.condition


def _check_infinite_loop(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for loop in context.loops:
        if not cfg.is_literal_true(_loop_condition(loop)):
            continue
        if cfg.loop_escapes(loop.body, via_return=True):
            continue
        findings.append(
            check.diagnostic(
                context,
                {"kind": _loop_kind(loop)},
                cfg.position_of(loop),
                snippet=_loop_kind(loop),
            )
        )
    return findings


def _check_loop_never_entered(
    check: Check, context: MethodAnalysis
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for loop in context.loops:
        # do-while always runs its body once, so only while/for qualify
        if isinstance(loop, ast.DoWhile):
            continue
        if cfg.is_literal_false(_loop_condition(loop)):
            findings.append(
                check.diagnostic(
                    context,
                    {"kind": _loop_kind(loop)},
                    cfg.position_of(loop),
                    snippet=_loop_kind(loop),
                )
            )
    return findings


# ----------------------------------------------------------------------
# registry


CHECKS: tuple[Check, ...] = (
    Check(
        id="use-before-init",
        severity=Severity.ERROR,
        summary="a variable is read before any statement assigns it",
        template=(
            "Variable '{var}' may be read before it has been given a "
            "value; initialize it before using it."
        ),
        runner=_check_use_before_init,
    ),
    Check(
        id="missing-return",
        severity=Severity.ERROR,
        summary="a non-void method can reach its end without returning",
        template=(
            "Method '{method}' should return a value of type {type}, but "
            "some execution path reaches the end of the method without a "
            "return statement."
        ),
        runner=_check_missing_return,
    ),
    Check(
        id="unreachable-code",
        severity=Severity.WARNING,
        summary="a statement can never execute",
        template=(
            "This statement can never run: the code before it always "
            "returns, breaks, or loops forever."
        ),
        runner=_check_unreachable,
    ),
    Check(
        id="infinite-loop",
        severity=Severity.WARNING,
        summary="a loop with a constant-true condition never exits",
        template=(
            "This {kind} loop can never terminate: its condition is "
            "always true and its body never breaks or returns."
        ),
        runner=_check_infinite_loop,
    ),
    Check(
        id="loop-never-entered",
        severity=Severity.WARNING,
        summary="a loop with a constant-false condition never runs",
        template=(
            "This {kind} loop never runs: its condition is always false."
        ),
        runner=_check_loop_never_entered,
    ),
    Check(
        id="unused-variable",
        severity=Severity.WARNING,
        summary="a local variable is written but never read",
        template=(
            "Variable '{var}' is declared in '{method}' but its value is "
            "never used."
        ),
        runner=_check_unused_variable,
    ),
    Check(
        id="unused-parameter",
        severity=Severity.INFO,
        summary="a parameter's caller-supplied value is never read",
        template=(
            "The value passed for parameter '{var}' of '{method}' is "
            "never used."
        ),
        runner=_check_unused_parameter,
    ),
)


def check_by_id(check_id: str) -> Check:
    """Look up a registered check (raises ``KeyError`` when unknown)."""
    for check in CHECKS:
        if check.id == check_id:
            return check
    raise KeyError(check_id)


def analysis_fingerprint() -> str:
    """Stable digest input describing the active check set.

    Folded into :func:`repro.core.store.kb_fingerprint` so persisted
    reports graded under a different check set read as cache misses
    (they would be missing — or carrying stale — diagnostics).
    """
    ids = ",".join(check.id for check in CHECKS)
    return f"analysis-v{ANALYSIS_VERSION}:{ids}"


def field_names(unit: ast.CompilationUnit) -> frozenset[str]:
    """All class-field names declared anywhere in the submission."""
    names: set[str] = set()
    for cls in unit.classes:
        for declaration in cls.fields:
            for declarator in declaration.declarators:
                names.add(declarator.name)
    return frozenset(names)


def run_checks(
    unit: ast.CompilationUnit, graphs: Mapping[str, Epdg]
) -> list[Diagnostic]:
    """Run every registered check over every graded method.

    ``graphs`` is the frontend's method-name → EPDG mapping; methods
    without a graph (shadowed duplicates) are skipped, and for duplicate
    method names the *last* declaration is analyzed — mirroring
    :func:`repro.pdg.builder.extract_all_epdgs`, so the AST and the
    graph always describe the same method body.
    """
    count("analysis.runs")
    fields = field_names(unit)
    by_name: dict[str, ast.MethodDecl] = {}
    for method in unit.methods():
        by_name[method.name] = method  # later duplicate wins, like the builder
    diagnostics: list[Diagnostic] = []
    for name, method in by_name.items():
        graph = graphs.get(name)
        if graph is None:
            continue
        context = MethodAnalysis(method=method, graph=graph, fields=fields)
        for check in CHECKS:
            with phase(f"analysis.{check.id}"):
                found = check.runner(check, context)
            if found:
                count(f"analysis.{check.id}", len(found))
                diagnostics.extend(found)
    count("analysis.diagnostics", len(diagnostics))
    return diagnostics
