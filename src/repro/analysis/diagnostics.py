"""Diagnostic records produced by the submission static-analysis checks.

A :class:`Diagnostic` is one finding of one check on one submission: the
check that fired, its :class:`Severity`, the method it concerns, a
natural-language message (rendered through the same
:func:`repro.patterns.template.render_feedback` machinery as pattern
feedback), and — when the parser recorded one — a 1-based source span.

Diagnostics are deliberately independent of the matcher: they ride on
:class:`repro.core.report.GradingReport` as a *side channel* and never
influence the Algorithm 2 outcome, score, or report status.  When no
pattern embeds at all, the report's renderer promotes them to the
primary feedback so the student is never left with a silent rejection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping


class Severity(enum.Enum):
    """How strongly a finding indicates a real defect.

    ``ERROR``
        The program is almost certainly wrong (a variable read before it
        has a value, a non-void method that can fall off its end).
    ``WARNING``
        Very likely a mistake, but the program may still run (unreachable
        statements, a loop that can never terminate or never run).
    ``INFO``
        Worth a look, often stylistic (a parameter whose initial value is
        never used).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        """Numeric order for threshold comparisons (error is highest)."""
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding on one submission method."""

    check: str
    severity: Severity
    method: str
    message: str
    line: int | None = None
    column: int | None = None
    snippet: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-friendly view; :meth:`from_dict` inverts it."""
        return {
            "check": self.check,
            "severity": str(self.severity),
            "method": self.method,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            check=str(payload["check"]),
            severity=Severity(payload["severity"]),
            method=str(payload.get("method", "")),
            message=str(payload["message"]),
            line=payload.get("line"),
            column=payload.get("column"),
            snippet=str(payload.get("snippet", "")),
        )

    def render(self) -> str:
        """One student-readable line, e.g.
        ``[warning] fact, line 4: Variable 'r' is never used.``"""
        where = self.method or "submission"
        if self.line is not None:
            where += f", line {self.line}"
        text = f"[{self.severity}] {where}: {self.message}"
        if self.snippet:
            text += f" (near: {self.snippet})"
        return text
