"""Static side of the performance analyzer: loops and anti-patterns.

Two layers:

* :func:`method_loops` builds a per-method loop table — nesting depth,
  a bound classification (constant / input-linear / data-dependent),
  the induction variable where one is identifiable, and crucially the
  *same stable loop id* (``method:kind@ordinal``) the compiled runtime
  uses to key :class:`~repro.interp.tracing.CostCounters.loop_iterations`.
  The walk mirrors :mod:`repro.interp.compiler` exactly: methods are
  deduplicated by ``(name, arity)`` in first-occurrence order with the
  last body winning, and within a method loops are numbered in
  statement pre-order (a ``for``'s init statements are compiled before
  its id is assigned, but init statements cannot contain loops, so
  pre-order reproduces the numbering).  That shared key is what lets
  the dynamic fitter attach a measured cost shape to a static finding.
* :func:`detect_patterns` runs the anti-pattern detectors over the
  loop table and yields advisory :class:`StaticFinding` records for
  the analyzer to render (and possibly escalate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.analysis.cfg import position_of
from repro.analysis.perf.model import (
    LOOP_INVARIANT_RECOMPUTATION,
    NESTED_LOOP_LOOKUP,
    STRING_CONCAT_IN_LOOP,
)
from repro.java import ast
from repro.pdg.expressions import defined_variables, used_variables

#: Loop-bound classifications, from cheapest to least predictable.
BOUND_CONSTANT = "constant"
BOUND_INPUT_LINEAR = "input-linear"
BOUND_DATA_DEPENDENT = "data-dependent"

_LOOP_KINDS: dict[type[ast.Statement], str] = {
    ast.While: "while",
    ast.DoWhile: "dowhile",
    ast.For: "for",
    ast.ForEach: "foreach",
}

_SIZE_CALLS = frozenset({"length", "size"})


@dataclass(frozen=True, eq=False)
class LoopInfo:
    """One loop of one method, in compiler numbering order."""

    loop_id: str
    kind: str
    method: str
    depth: int
    bound: str
    loop_var: str | None
    node: ast.Statement
    parent: "LoopInfo | None" = None


@dataclass(frozen=True, eq=False)
class StaticFinding:
    """One detected anti-pattern, before dynamic corroboration.

    ``loop`` is the loop whose iteration counter evidences the problem
    (the *inner* loop for the nested patterns) — the analyzer looks up
    that loop id's fitted shape to decide escalation.
    """

    pattern_id: str
    method: str
    loop: LoopInfo
    gamma: dict[str, str] = field(default_factory=dict)
    position: tuple[int, int] | None = None
    snippet: str | None = None


# ---------------------------------------------------------------------------
# loop table

def method_loops(unit: ast.CompilationUnit) -> dict[str, list[LoopInfo]]:
    """Per-method loop table keyed by method name, compiler order."""
    declarations: dict[tuple[str, int], ast.MethodDecl] = {}
    for method in unit.methods():
        declarations[(method.name, method.arity)] = method
    table: dict[str, list[LoopInfo]] = {}
    for method in declarations.values():
        loops: list[LoopInfo] = []
        ordinal = [0]
        parameters = frozenset(p.name for p in method.parameters)
        for statement in method.body.statements:
            _collect_loops(
                statement, method.name, ordinal, None, parameters, loops
            )
        table.setdefault(method.name, []).extend(loops)
    return table


def _collect_loops(
    statement: ast.Statement,
    method_name: str,
    ordinal: list[int],
    parent: LoopInfo | None,
    parameters: frozenset[str],
    out: list[LoopInfo],
) -> None:
    kind = _LOOP_KINDS.get(type(statement))
    if kind is not None:
        loop_id = f"{method_name}:{kind}@{ordinal[0]}"
        ordinal[0] += 1
        info = LoopInfo(
            loop_id=loop_id,
            kind=kind,
            method=method_name,
            depth=(parent.depth + 1) if parent is not None else 1,
            bound=_classify_bound(statement, parameters),
            loop_var=_loop_variable(statement),
            node=statement,
            parent=parent,
        )
        out.append(info)
        body = _loop_body(statement)
        _collect_loops(body, method_name, ordinal, info, parameters, out)
        return
    if isinstance(statement, ast.Block):
        for child in statement.statements:
            _collect_loops(child, method_name, ordinal, parent, parameters, out)
    elif isinstance(statement, ast.If):
        _collect_loops(
            statement.then_branch, method_name, ordinal, parent, parameters, out
        )
        if statement.else_branch is not None:
            _collect_loops(
                statement.else_branch, method_name, ordinal, parent,
                parameters, out,
            )
    elif isinstance(statement, ast.Switch):
        for case in statement.cases:
            for child in case.statements:
                _collect_loops(
                    child, method_name, ordinal, parent, parameters, out
                )


def _loop_body(statement: ast.Statement) -> ast.Statement:
    if isinstance(statement, (ast.While, ast.DoWhile, ast.For, ast.ForEach)):
        return statement.body
    raise TypeError(f"not a loop: {type(statement).__name__}")


def _loop_condition(statement: ast.Statement) -> ast.Expression | None:
    if isinstance(statement, (ast.While, ast.DoWhile)):
        return statement.condition
    if isinstance(statement, ast.For):
        return statement.condition
    return None


def _loop_variable(statement: ast.Statement) -> str | None:
    """The induction/iteration variable, where one is identifiable."""
    if isinstance(statement, ast.ForEach):
        return statement.name
    if isinstance(statement, ast.For):
        for init in statement.init:
            if isinstance(init, ast.LocalVarDecl) and init.declarators:
                return init.declarators[0].name
            if isinstance(init, ast.ExpressionStatement) and isinstance(
                init.expression, ast.Assignment
            ) and isinstance(init.expression.target, ast.Name):
                return init.expression.target.identifier
        condition = statement.condition
    else:
        condition = _loop_condition(statement)
    # while/dowhile (and degenerate for): a condition variable that the
    # body also writes is the loop's progress variable
    if condition is None:
        return None
    candidates = used_variables(condition)
    if not candidates:
        return None
    body = _loop_body(statement)
    for expression in _statement_tree_expressions(body):
        for name in sorted(defined_variables(expression)):
            if name in candidates:
                return name
    if isinstance(statement, ast.For):
        for update in statement.update:
            for name in sorted(defined_variables(update)):
                if name in candidates:
                    return name
    return None


def _classify_bound(
    statement: ast.Statement, parameters: frozenset[str]
) -> str:
    """Constant / input-linear / data-dependent trip-count estimate."""
    if isinstance(statement, ast.ForEach):
        if used_variables(statement.iterable) & parameters:
            return BOUND_INPUT_LINEAR
        return BOUND_DATA_DEPENDENT
    condition = _loop_condition(statement)
    if condition is None:
        return BOUND_DATA_DEPENDENT
    if _mentions_size(condition):
        return BOUND_INPUT_LINEAR
    uses = used_variables(condition)
    if not uses:
        return BOUND_CONSTANT
    loop_var = _loop_variable(statement)
    if (
        isinstance(statement, ast.For)
        and loop_var is not None
        and uses <= {loop_var}
        and _has_int_literal(condition)
        and _initialized_to_literal(statement, loop_var)
    ):
        # for (int i = <literal>; i <op> <literal>; ...): a fixed trip
        # count.  A while over a shrinking parameter also matches the
        # uses/literal test, but its trip count depends on the input —
        # the init check is what separates the two.
        return BOUND_CONSTANT
    return BOUND_DATA_DEPENDENT


def _initialized_to_literal(statement: ast.For, loop_var: str) -> bool:
    for init in statement.init:
        if isinstance(init, ast.LocalVarDecl):
            for declarator in init.declarators:
                if declarator.name == loop_var:
                    return isinstance(declarator.initializer, ast.Literal)
        elif isinstance(init, ast.ExpressionStatement) and isinstance(
            init.expression, ast.Assignment
        ) and isinstance(init.expression.target, ast.Name) \
                and init.expression.target.identifier == loop_var:
            return isinstance(init.expression.value, ast.Literal)
    return False


def _mentions_size(expression: ast.Expression) -> bool:
    for node in ast.walk(expression):
        if isinstance(node, ast.FieldAccess) and node.name == "length":
            return True
        if isinstance(node, ast.MethodCall) and node.name in _SIZE_CALLS:
            return True
    return False


def _has_int_literal(expression: ast.Expression) -> bool:
    return any(
        isinstance(node, ast.Literal) and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        for node in ast.walk(expression)
    )


# ---------------------------------------------------------------------------
# statement-region helpers

def _region_statements(statement: ast.Statement) -> Iterator[ast.Statement]:
    """Pre-order statements, *not* descending into nested loops.

    The loop statements themselves are yielded (so callers can stop at
    them), but their bodies belong to the nested loop's own region.
    """
    yield statement
    if isinstance(statement, tuple(_LOOP_KINDS)):
        return
    if isinstance(statement, ast.Block):
        for child in statement.statements:
            yield from _region_statements(child)
    elif isinstance(statement, ast.If):
        yield from _region_statements(statement.then_branch)
        if statement.else_branch is not None:
            yield from _region_statements(statement.else_branch)
    elif isinstance(statement, ast.Switch):
        for case in statement.cases:
            for child in case.statements:
                yield from _region_statements(child)


def _loop_region(loop: LoopInfo) -> Iterator[ast.Statement]:
    """The loop's own statements: its body region minus nested loops."""
    body = _loop_body(loop.node)
    if isinstance(body, tuple(_LOOP_KINDS)):
        yield body
        return
    yield from _region_statements(body)


def _expressions_of(statement: ast.Statement) -> Iterator[ast.Expression]:
    """Expressions attached to one statement (not nested statements)."""
    if isinstance(statement, ast.ExpressionStatement):
        yield statement.expression
    elif isinstance(statement, ast.LocalVarDecl):
        for declarator in statement.declarators:
            if declarator.initializer is not None:
                yield declarator.initializer
    elif isinstance(statement, ast.If):
        yield statement.condition
    elif isinstance(statement, ast.Return):
        if statement.value is not None:
            yield statement.value
    elif isinstance(statement, ast.Switch):
        yield statement.selector
    elif isinstance(statement, (ast.While, ast.DoWhile)):
        yield statement.condition
        yield from _statement_tree_expressions(statement.body)
    elif isinstance(statement, ast.For):
        for init in statement.init:
            yield from _expressions_of(init)
        if statement.condition is not None:
            yield statement.condition
        yield from statement.update
        yield from _statement_tree_expressions(statement.body)
    elif isinstance(statement, ast.ForEach):
        yield statement.iterable
        yield from _statement_tree_expressions(statement.body)
    elif isinstance(statement, ast.Block):
        pass


def _statement_tree_expressions(
    statement: ast.Statement,
) -> Iterator[ast.Expression]:
    for child in _region_statements(statement):
        yield from _expressions_of(child)


def _region_written(loop: LoopInfo) -> list[str]:
    """Variables written in the loop's own region, first-write order."""
    written: list[str] = []
    seen: set[str] = set()
    for statement in _loop_region(loop):
        if statement is loop.node:
            continue
        for expression in _expressions_of(statement):
            for name in sorted(defined_variables(expression)):
                if name not in seen and _writes(expression, name):
                    seen.add(name)
                    written.append(name)
    return written


def _writes(expression: ast.Expression, name: str) -> bool:
    """True when the expression *assigns* ``name`` (not array stores)."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Assignment) and isinstance(
            node.target, ast.Name
        ) and node.target.identifier == name:
            return True
        if isinstance(node, ast.Unary) and node.operator in ("++", "--") \
                and isinstance(node.operand, ast.Name) \
                and node.operand.identifier == name:
            return True
    return False


# ---------------------------------------------------------------------------
# expression rendering (snippets and the {probe} placeholder)

def render_expr(node: ast.Expression) -> str:
    """Compact Java-ish rendering of an expression for feedback text."""
    if isinstance(node, ast.Literal):
        if node.value is True:
            return "true"
        if node.value is False:
            return "false"
        if node.value is None:
            return "null"
        if node.kind == "string":
            return f'"{node.value}"'
        if node.kind == "char":
            return f"'{node.value}'"
        return str(node.value)
    if isinstance(node, ast.Name):
        return node.identifier
    if isinstance(node, ast.FieldAccess):
        return f"{render_expr(node.target)}.{node.name}"
    if isinstance(node, ast.ArrayAccess):
        return f"{render_expr(node.array)}[{render_expr(node.index)}]"
    if isinstance(node, ast.MethodCall):
        arguments = ", ".join(render_expr(a) for a in node.arguments)
        if node.target is not None:
            return f"{render_expr(node.target)}.{node.name}({arguments})"
        return f"{node.name}({arguments})"
    if isinstance(node, ast.Binary):
        return (
            f"{render_expr(node.left)} {node.operator} "
            f"{render_expr(node.right)}"
        )
    if isinstance(node, ast.Unary):
        if node.prefix:
            return f"{node.operator}{render_expr(node.operand)}"
        return f"{render_expr(node.operand)}{node.operator}"
    if isinstance(node, ast.Assignment):
        return (
            f"{render_expr(node.target)} {node.operator} "
            f"{render_expr(node.value)}"
        )
    if isinstance(node, ast.Ternary):
        return (
            f"{render_expr(node.condition)} ? "
            f"{render_expr(node.if_true)} : {render_expr(node.if_false)}"
        )
    if isinstance(node, ast.Cast):
        return f"({node.type.name}) {render_expr(node.expression)}"
    return "..."


# ---------------------------------------------------------------------------
# detectors

def detect_patterns(
    unit: ast.CompilationUnit,
    table: Mapping[str, Sequence[LoopInfo]] | None = None,
) -> list[StaticFinding]:
    """Run every static anti-pattern detector; source order per method."""
    if table is None:
        table = method_loops(unit)
    declarations: dict[tuple[str, int], ast.MethodDecl] = {}
    for method in unit.methods():
        declarations[(method.name, method.arity)] = method
    findings: list[StaticFinding] = []
    for method in declarations.values():
        loops = list(table.get(method.name, ()))
        findings.extend(_detect_nested_lookup(method, loops))
        findings.extend(_detect_invariant_recomputation(method, loops))
        findings.extend(_detect_string_concat(method, loops))
    return findings


def _detect_nested_lookup(
    method: ast.MethodDecl, loops: Sequence[LoopInfo]
) -> Iterator[StaticFinding]:
    """Inner loop that re-scans the input to locate one outer position.

    Signature: an equality test inside the inner loop relating the
    inner loop's variable to the enclosing loop's variable — the inner
    scan exists only to find the index the outer loop already has.
    """
    for loop in loops:
        parent = loop.parent
        if parent is None or loop.loop_var is None \
                or parent.loop_var is None:
            continue
        probe = _find_lookup_probe(loop, parent)
        if probe is None:
            continue
        yield StaticFinding(
            pattern_id=NESTED_LOOP_LOOKUP.id,
            method=method.name,
            loop=loop,
            gamma={
                "outer_kind": parent.kind,
                "inner_kind": loop.kind,
                "outer_var": parent.loop_var,
                "inner_var": loop.loop_var,
                "probe": render_expr(probe),
            },
            position=position_of(loop.node),
            snippet=render_expr(probe),
        )


def _find_lookup_probe(
    loop: LoopInfo, parent: LoopInfo
) -> ast.Expression | None:
    inner_var, outer_var = loop.loop_var, parent.loop_var
    sources: list[ast.Expression] = []
    condition = _loop_condition(loop.node)
    if condition is not None:
        sources.append(condition)
    for statement in _loop_region(loop):
        if statement is not loop.node:
            sources.extend(_expressions_of(statement))
    for source in sources:
        for node in ast.walk(source):
            equality = (
                isinstance(node, ast.Binary) and node.operator == "=="
            ) or (
                isinstance(node, ast.MethodCall) and node.name == "equals"
                and node.target is not None
            )
            if not equality:
                continue
            assert isinstance(node, ast.Expression)
            uses = used_variables(node)
            if inner_var in uses and outer_var in uses:
                return node
    return None


def _detect_invariant_recomputation(
    method: ast.MethodDecl, loops: Sequence[LoopInfo]
) -> Iterator[StaticFinding]:
    """Inner loop rebuilding a value reset in the enclosing loop's body.

    Signature: a variable initialized in the outer loop's body *before*
    the inner loop and re-accumulated by the inner loop on every outer
    pass — the classic "reset, then recompute from scratch" shape.
    """
    loop_vars = frozenset(
        info.loop_var for info in loops if info.loop_var is not None
    )
    for loop in loops:
        parent = loop.parent
        if parent is None:
            continue
        prefix = _statements_before(parent, loop)
        if prefix is None:
            continue
        for name in _region_written(loop):
            if name in loop_vars:
                continue
            if _initialized_in(prefix, name):
                yield StaticFinding(
                    pattern_id=LOOP_INVARIANT_RECOMPUTATION.id,
                    method=method.name,
                    loop=loop,
                    gamma={
                        "var": name,
                        "inner_kind": loop.kind,
                        "outer_kind": parent.kind,
                    },
                    position=position_of(loop.node),
                    snippet=None,
                )
                break


def _statements_before(
    parent: LoopInfo, loop: LoopInfo
) -> list[ast.Statement] | None:
    """Statements in the parent's region preceding ``loop`` (pre-order)."""
    prefix: list[ast.Statement] = []
    for statement in _loop_region(parent):
        if statement is loop.node:
            return prefix
        prefix.append(statement)
    return None


def _initialized_in(statements: Sequence[ast.Statement], name: str) -> bool:
    for statement in statements:
        if isinstance(statement, ast.LocalVarDecl):
            for declarator in statement.declarators:
                if declarator.name == name \
                        and declarator.initializer is not None:
                    return True
        elif isinstance(statement, ast.ExpressionStatement):
            expression = statement.expression
            if isinstance(expression, ast.Assignment) \
                    and expression.operator == "=" \
                    and isinstance(expression.target, ast.Name) \
                    and expression.target.identifier == name:
                return True
    return False


def _detect_string_concat(
    method: ast.MethodDecl, loops: Sequence[LoopInfo]
) -> Iterator[StaticFinding]:
    """String accumulated with ``+=`` (or ``s = s + ...``) in a loop."""
    string_vars = _string_variables(method)
    if not string_vars:
        return
    for loop in loops:
        local_decls = {
            declarator.name
            for statement in _loop_region(loop)
            if isinstance(statement, ast.LocalVarDecl)
            for declarator in statement.declarators
        }
        reported: set[str] = set()
        for statement in _loop_region(loop):
            if statement is loop.node \
                    or not isinstance(statement, ast.ExpressionStatement):
                continue
            expression = statement.expression
            if not isinstance(expression, ast.Assignment) \
                    or not isinstance(expression.target, ast.Name):
                continue
            name = expression.target.identifier
            if name not in string_vars or name in local_decls \
                    or name in reported:
                continue
            concat = expression.operator == "+=" or (
                expression.operator == "="
                and isinstance(expression.value, ast.Binary)
                and expression.value.operator == "+"
                and name in used_variables(expression.value)
            )
            if not concat:
                continue
            reported.add(name)
            yield StaticFinding(
                pattern_id=STRING_CONCAT_IN_LOOP.id,
                method=method.name,
                loop=loop,
                gamma={"var": name, "kind": loop.kind},
                position=position_of(statement),
                snippet=render_expr(expression),
            )


def _string_variables(method: ast.MethodDecl) -> frozenset[str]:
    names = {
        parameter.name
        for parameter in method.parameters
        if parameter.type.name == "String" and parameter.type.dimensions == 0
    }
    for node in ast.walk(method.body):
        if isinstance(node, ast.LocalVarDecl) \
                and node.type.name == "String" and node.type.dimensions == 0:
            names.update(d.name for d in node.declarators)
    return frozenset(names)
