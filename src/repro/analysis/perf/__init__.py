"""Performance analyzer: static loop anti-patterns × dynamic cost shapes.

Public surface:

* :mod:`repro.analysis.perf.model` — :class:`CostShape`,
  :class:`PerfSpec` (the KB declaration), the :data:`PERF_PATTERNS`
  registry, and :func:`perf_analysis_fingerprint` (folded into the
  result-store fingerprint when perf grading is enabled).
* :mod:`repro.analysis.perf.static` — loop table with compiler-stable
  loop ids, bound classification, and the anti-pattern detectors.
* :mod:`repro.analysis.perf.shape` — the least-squares cost-shape
  classifier.
* :mod:`repro.analysis.perf.analyzer` — :class:`PerfAnalyzer`, the
  engine phase.  Import it from its module directly
  (``from repro.analysis.perf.analyzer import PerfAnalyzer``): it pulls
  in the execution stack (:mod:`repro.testing`, :mod:`repro.interp`),
  which this package namespace deliberately keeps out of KB and
  storage import paths.
"""

from repro.analysis.perf.model import (
    DECLARABLE_SHAPES,
    PERF_PATTERNS,
    PERF_VERSION,
    SIZE_METRICS,
    CostShape,
    PerfPattern,
    PerfSpec,
    get_perf_pattern,
    perf_analysis_fingerprint,
)
from repro.analysis.perf.shape import ShapeFit, fit_shape
from repro.analysis.perf.static import (
    LoopInfo,
    StaticFinding,
    detect_patterns,
    method_loops,
    render_expr,
)

__all__ = [
    "DECLARABLE_SHAPES",
    "PERF_PATTERNS",
    "PERF_VERSION",
    "SIZE_METRICS",
    "CostShape",
    "LoopInfo",
    "PerfPattern",
    "PerfSpec",
    "ShapeFit",
    "StaticFinding",
    "detect_patterns",
    "fit_shape",
    "get_perf_pattern",
    "method_loops",
    "perf_analysis_fingerprint",
    "render_expr",
]
