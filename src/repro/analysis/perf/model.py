"""Data model for the performance analyzer (:mod:`repro.analysis.perf`).

Three small vocabularies that the rest of the subsystem shares:

* :class:`CostShape` — the asymptotic classes the dynamic fitter can
  distinguish (constant / linear / quadratic, plus ``UNKNOWN`` when the
  evidence does not support a classification).  ``UNKNOWN`` never
  *exceeds* anything, so an inconclusive fit can never escalate or
  produce a finding on its own.
* :class:`PerfPattern` — a performance anti-pattern the static side
  detects, carrying the NL feedback templates rendered through
  :func:`repro.patterns.template.render_feedback` exactly like the
  Defs 1–10 pattern comments.
* :class:`PerfSpec` — the per-assignment KB declaration: which entry
  methods have a known achievable cost shape, how "input size" is
  measured for this assignment, and optional extra probe runs that
  extend the functional-test input ladder when the shipped tests alone
  do not span enough distinct sizes for a trustworthy fit.

This module is deliberately import-light (only the diagnostics
severity enum) so the KB assignment modules and the storage layer can
depend on it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.analysis.diagnostics import Severity

#: Bumped whenever detector logic or feedback templates change meaning;
#: folded into the store fingerprint so stale entries never replay.
PERF_VERSION = 1


class CostShape(enum.Enum):
    """Asymptotic cost class of one measured quantity vs input size."""

    CONSTANT = "constant"
    LINEAR = "linear"
    QUADRATIC = "quadratic"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int | None:
        """Growth order for comparisons; ``None`` for ``UNKNOWN``."""
        return _SHAPE_RANK.get(self)

    def exceeds(self, other: "CostShape") -> bool:
        """True when ``self`` provably grows faster than ``other``.

        ``UNKNOWN`` on either side is inconclusive evidence, so it
        never exceeds and is never exceeded.
        """
        mine, theirs = self.rank, other.rank
        return mine is not None and theirs is not None and mine > theirs


_SHAPE_RANK: dict[CostShape, int] = {
    CostShape.CONSTANT: 0,
    CostShape.LINEAR: 1,
    CostShape.QUADRATIC: 2,
}

#: Shape names a :class:`PerfSpec` may declare as expected.
DECLARABLE_SHAPES = frozenset(
    shape.value for shape in CostShape if shape is not CostShape.UNKNOWN
)


# ---------------------------------------------------------------------------
# input-size metrics

def _sequence_length(arguments: Sequence[Any]) -> float | None:
    sizes = [
        len(value) for value in arguments
        if isinstance(value, (list, tuple, str))
    ]
    return float(max(sizes)) if sizes else None


def _int_value(arguments: Sequence[Any]) -> float | None:
    values = [
        abs(value) for value in arguments
        if isinstance(value, int) and not isinstance(value, bool)
    ]
    return float(max(values)) if values else None


def _int_digits(arguments: Sequence[Any]) -> float | None:
    values = [
        abs(value) for value in arguments
        if isinstance(value, int) and not isinstance(value, bool)
    ]
    return float(len(str(max(values)))) if values else None


#: How an assignment measures "input size" from a test's argument tuple.
#: Returning ``None`` excludes that run from the fit (e.g. a test whose
#: arguments carry no sequence when the metric is ``sequence-length``).
SIZE_METRICS: dict[str, Callable[[Sequence[Any]], float | None]] = {
    "sequence-length": _sequence_length,
    "int-value": _int_value,
    "int-digits": _int_digits,
}


# ---------------------------------------------------------------------------
# KB declarations

@dataclass(frozen=True)
class PerfSpec:
    """Per-assignment performance declaration in the knowledge base.

    ``expected``
        ``(method, shape-name)`` pairs: the cost shape a correct,
        efficient solution achieves for that entry method.  Shape names
        come from :data:`DECLARABLE_SHAPES`; the KB linter rejects
        anything else, and methods must be declared expected methods.
    ``size_metric``
        Key into :data:`SIZE_METRICS` mapping a test's arguments to an
        input size.
    ``ladder``
        Extra ``(method, arguments)`` probe runs appended to the
        functional-test input ladder.  They carry no expectations —
        only their :class:`~repro.interp.tracing.CostCounters` are
        harvested — so they can use inputs with uninteresting outputs.
    """

    expected: tuple[tuple[str, str], ...] = ()
    size_metric: str = "sequence-length"
    ladder: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    def expected_shape(self, method: str) -> CostShape | None:
        """Declared achievable shape for ``method``, if any."""
        for name, shape in self.expected:
            if name == method:
                return CostShape(shape)
        return None


# ---------------------------------------------------------------------------
# anti-pattern registry

@dataclass(frozen=True)
class PerfPattern:
    """One performance anti-pattern with its NL feedback templates.

    ``advisory`` renders for static-only findings; ``confirmed``
    renders when the dynamic fitter corroborates the finding with a
    measured shape that exceeds the assignment's declared expectation.
    ``variables`` declares every placeholder the detector may bind
    (beyond the implicit ``method``); the KB linter checks that both
    templates only reference declared placeholders.
    """

    id: str
    summary: str
    advisory: str
    confirmed: str
    variables: frozenset[str]
    severity: Severity = Severity.WARNING
    escalated: Severity = Severity.ERROR


_MEASURED = (
    " Measured cost is {shape} in the input size where {expected} "
    "suffices."
)

NESTED_LOOP_LOOKUP = PerfPattern(
    id="nested-loop-lookup",
    summary="nested loop re-scans the input to find one position",
    advisory=(
        "The {inner_kind} loop over '{inner_var}' nested inside the "
        "{outer_kind} loop over '{outer_var}' re-scans the input to "
        "find the one position where {probe} holds; a single pass "
        "computes the same result without the inner loop."
    ),
    confirmed=(
        "The {inner_kind} loop over '{inner_var}' nested inside the "
        "{outer_kind} loop over '{outer_var}' re-scans the input to "
        "find the one position where {probe} holds; a single pass "
        "computes the same result without the inner loop." + _MEASURED
    ),
    variables=frozenset(
        {"outer_kind", "inner_kind", "outer_var", "inner_var", "probe",
         "shape", "expected"}
    ),
)

LOOP_INVARIANT_RECOMPUTATION = PerfPattern(
    id="loop-invariant-recomputation",
    summary="inner loop rebuilds the same value every outer iteration",
    advisory=(
        "'{var}' is rebuilt from scratch by the {inner_kind} loop on "
        "every pass of the enclosing {outer_kind} loop; compute it "
        "once before the loop, or update it incrementally as the "
        "outer loop advances."
    ),
    confirmed=(
        "'{var}' is rebuilt from scratch by the {inner_kind} loop on "
        "every pass of the enclosing {outer_kind} loop; compute it "
        "once before the loop, or update it incrementally as the "
        "outer loop advances." + _MEASURED
    ),
    variables=frozenset(
        {"var", "inner_kind", "outer_kind", "shape", "expected"}
    ),
)

STRING_CONCAT_IN_LOOP = PerfPattern(
    id="string-concat-in-loop",
    summary="string accumulated with += inside a loop",
    advisory=(
        "'{var}' grows by string concatenation inside this {kind} "
        "loop; every += copies the whole accumulated string, so "
        "building an n-piece string costs on the order of n^2 "
        "character copies — collect the pieces and join once instead."
    ),
    confirmed=(
        "'{var}' grows by string concatenation inside this {kind} "
        "loop; every += copies the whole accumulated string, so "
        "building an n-piece string costs on the order of n^2 "
        "character copies — collect the pieces and join once "
        "instead." + _MEASURED
    ),
    variables=frozenset({"var", "kind", "shape", "expected"}),
)

COST_SHAPE_MISMATCH = PerfPattern(
    id="cost-shape-mismatch",
    summary="measured cost shape exceeds the assignment's expectation",
    advisory=(
        "The measured running cost of '{method}' is {shape} in the "
        "input size; this assignment is solvable in {expected} time."
    ),
    confirmed=(
        "The measured running cost of '{method}' is {shape} in the "
        "input size; this assignment is solvable in {expected} time."
    ),
    variables=frozenset({"shape", "expected"}),
    severity=Severity.WARNING,
    escalated=Severity.WARNING,
)

#: Registry of every perf anti-pattern, in detection order.  The first
#: three are static detections (escalating on dynamic confirmation);
#: the last is the dynamic-only shape cross-check.
PERF_PATTERNS: tuple[PerfPattern, ...] = (
    NESTED_LOOP_LOOKUP,
    LOOP_INVARIANT_RECOMPUTATION,
    STRING_CONCAT_IN_LOOP,
    COST_SHAPE_MISMATCH,
)


def get_perf_pattern(pattern_id: str) -> PerfPattern:
    """Look up a registered pattern by id (KeyError if unknown)."""
    for pattern in PERF_PATTERNS:
        if pattern.id == pattern_id:
            return pattern
    raise KeyError(pattern_id)


def perf_analysis_fingerprint() -> str:
    """Version token folded into store fingerprints when perf is on."""
    ids = ",".join(pattern.id for pattern in PERF_PATTERNS)
    metrics = ",".join(sorted(SIZE_METRICS))
    return f"perf-v{PERF_VERSION}:{ids}:{metrics}"
