"""Cost-shape fitting: classify measured cost against input size.

Given ``(input size, cost)`` observations harvested from the
functional-test input ladder, classify the growth as constant, linear,
or quadratic by ordinary least squares (pure Python — the normal
equations are at most 3×3) with a *relative* residual threshold, so the
same tolerance works whether the costs are tens of steps or millions of
loop iterations.

Classification is deliberately conservative — a wrong ``UNKNOWN`` costs
one advisory staying advisory, a wrong ``QUADRATIC`` escalates feedback
on an innocent submission:

* fewer than 3 distinct sizes never classifies (two points fit any
  line exactly);
* ``QUADRATIC`` additionally needs at least 4 distinct sizes (three
  points fit any parabola exactly) and a leading coefficient that
  contributes materially at the largest observed size — otherwise a
  hair of curvature noise on linear data would read as quadratic;
* the same leading-term significance guard keeps near-flat data from
  classifying as ``LINEAR`` and rejects *negative* growth outright;
* data fitting none of the models within tolerance is ``UNKNOWN``,
  and ``UNKNOWN`` never produces or escalates a finding.

Models are tried simplest-first, so the classification is the *lowest*
shape consistent with the evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.perf.model import CostShape

#: Maximum relative RMSE (residual / mean magnitude) for a model to fit.
RESIDUAL_TOLERANCE = 0.08

#: The leading term must contribute at least this fraction of the mean
#: magnitude at the largest observed size, or the model is rejected.
LEADING_TERM_SIGNIFICANCE = 0.10

#: Distinct input sizes required before any classification is attempted.
MIN_POINTS = 3

#: Distinct input sizes required before QUADRATIC may be reported.
MIN_POINTS_QUADRATIC = 4


@dataclass(frozen=True)
class ShapeFit:
    """Outcome of fitting one measured quantity against input size."""

    shape: CostShape
    #: Relative RMSE of the accepted model (``None`` for ``UNKNOWN``).
    residual: float | None
    #: Number of distinct input sizes the fit saw.
    points: int


UNKNOWN_FIT = ShapeFit(CostShape.UNKNOWN, None, 0)


def fit_shape(
    observations: Sequence[tuple[float, float]],
    tolerance: float = RESIDUAL_TOLERANCE,
) -> ShapeFit:
    """Classify ``(size, cost)`` observations into a :class:`CostShape`."""
    grouped: dict[float, list[float]] = {}
    for size, cost in observations:
        grouped.setdefault(size, []).append(cost)
    xs = sorted(grouped)
    ys = [sum(grouped[x]) / len(grouped[x]) for x in xs]
    points = len(xs)
    if points < MIN_POINTS:
        return ShapeFit(CostShape.UNKNOWN, None, points)

    scale = max(sum(abs(y) for y in ys) / points, 1.0)
    max_x = max(abs(x) for x in xs)
    floor = LEADING_TERM_SIGNIFICANCE * scale

    # constant: the mean, accepted when the data is essentially flat
    mean = sum(ys) / points
    if _relative_rmse(ys, [mean] * points, scale) <= tolerance:
        residual = _relative_rmse(ys, [mean] * points, scale)
        return ShapeFit(CostShape.CONSTANT, residual, points)

    linear = _polyfit(xs, ys, degree=1)
    if linear is not None:
        intercept, slope = linear
        predicted = [intercept + slope * x for x in xs]
        residual = _relative_rmse(ys, predicted, scale)
        if residual <= tolerance and slope * max_x >= floor:
            return ShapeFit(CostShape.LINEAR, residual, points)

    if points >= MIN_POINTS_QUADRATIC:
        quadratic = _polyfit(xs, ys, degree=2)
        if quadratic is not None:
            c0, c1, c2 = quadratic
            predicted = [c0 + c1 * x + c2 * x * x for x in xs]
            residual = _relative_rmse(ys, predicted, scale)
            if residual <= tolerance and c2 * max_x * max_x >= floor:
                return ShapeFit(CostShape.QUADRATIC, residual, points)

    return ShapeFit(CostShape.UNKNOWN, None, points)


def _relative_rmse(
    actual: Sequence[float], predicted: Sequence[float], scale: float
) -> float:
    squared = sum((a - p) ** 2 for a, p in zip(actual, predicted))
    return math.sqrt(squared / len(actual)) / scale


def _polyfit(
    xs: Sequence[float], ys: Sequence[float], degree: int
) -> list[float] | None:
    """Least-squares polynomial coefficients (low order first).

    Solves the normal equations by Gaussian elimination with partial
    pivoting; returns ``None`` when the system is singular (degenerate
    sizes — callers treat that candidate model as non-fitting).
    """
    terms = degree + 1
    # normal-equation matrix [A | b] with A[i][j] = sum x^(i+j)
    powers = [
        sum(x ** exponent for x in xs) for exponent in range(2 * degree + 1)
    ]
    matrix = [
        [powers[row + col] for col in range(terms)]
        + [sum(y * x ** row for x, y in zip(xs, ys))]
        for row in range(terms)
    ]
    for col in range(terms):
        pivot = max(range(col, terms), key=lambda r: abs(matrix[r][col]))
        if abs(matrix[pivot][col]) < 1e-12:
            return None
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        for row in range(terms):
            if row == col:
                continue
            factor = matrix[row][col] / matrix[col][col]
            for k in range(col, terms + 1):
                matrix[row][k] -= factor * matrix[col][k]
    return [matrix[i][terms] / matrix[i][i] for i in range(terms)]
