"""The ``perf`` engine phase: static findings × dynamic cost shapes.

:class:`PerfAnalyzer` is constructed once per engine (like the repair
channel) and invoked per submission after Algorithm 2 matching.  The
flow per submission:

1. **Static pass** — build the loop table and run the anti-pattern
   detectors (:mod:`repro.analysis.perf.static`).  Cheap, always runs.
2. **Dynamic pass** — only when the assignment declares a
   :class:`~repro.analysis.perf.model.PerfSpec` *and* the submission
   has loops *and* there is something to decide: a static finding to
   corroborate, or a loop structure that *could* exceed the declared
   shape (nesting of non-constant-bound loops deeper than the
   expectation allows).  A submission whose loop table statically
   bounds it at or below the declared shape skips the ladder outright
   (``perf.dynamic_skips``) — that is what keeps ``--perf`` batch
   overhead low on clean cohorts.  When the pass does run it replays
   the functional tests plus the spec's extra probe ladder under a
   reduced step budget, harvests
   :class:`~repro.interp.tracing.CostCounters`, and fits a
   :class:`~repro.analysis.perf.model.CostShape` per entry method
   (total steps) and per stable loop id (iterations).
3. **Escalation** — a static finding whose implicated loop's measured
   shape exceeds the declared expectation escalates to the pattern's
   ``escalated`` severity and renders the ``confirmed`` template;
   otherwise it stays advisory.  A measured entry-method shape that
   exceeds the declaration with *no* static finding to blame emits the
   dynamic-only ``cost-shape-mismatch`` advisory.

Counters (visible in ``--stats`` and ``/metrics``): ``perf.runs``,
``perf.static_findings``, ``perf.dynamic_skips``, ``perf.probe_runs``,
``perf.fits``, ``perf.escalations``, ``perf.shape_mismatches``,
``perf.findings``, plus the ``perf.static`` / ``perf.dynamic`` phase
timings.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.perf.model import (
    COST_SHAPE_MISMATCH,
    SIZE_METRICS,
    CostShape,
    PerfSpec,
    get_perf_pattern,
)
from repro.analysis.perf.shape import ShapeFit, fit_shape
from repro.analysis.perf.static import (
    BOUND_CONSTANT,
    LoopInfo,
    StaticFinding,
    detect_patterns,
    method_loops,
)
from repro.core.assignment import Assignment, FunctionalTest
from repro.instrumentation import count, phase
from repro.java import ast
from repro.patterns.template import render_feedback
from repro.testing.functional import run_tests

#: Step budget for one probe run — deliberately far below the grading
#: budget: the probe ladder uses small inputs, so anything that blows
#: this is either non-terminating (first blown probe skips the rest)
#: or so slow the truncated counters still fit a superlinear shape.
DEFAULT_PROBE_BUDGET = 50_000


class PerfAnalyzer:
    """Per-assignment performance analyzer (one instance per engine)."""

    def __init__(
        self,
        assignment: Assignment,
        probe_budget: int = DEFAULT_PROBE_BUDGET,
    ) -> None:
        self.assignment = assignment
        self.spec: PerfSpec | None = assignment.perf
        self.probe_budget = probe_budget
        self._probes: list[FunctionalTest] | None = None

    # ------------------------------------------------------------------

    def analyze(
        self, unit: ast.CompilationUnit, cache_key: str | None = None
    ) -> list[Diagnostic]:
        """Analyze one parsed submission; returns perf diagnostics."""
        count("perf.runs")
        with phase("perf.static"):
            table = method_loops(unit)
            findings = detect_patterns(unit, table)
        count("perf.static_findings", len(findings))

        spec = self.spec
        loop_fits: dict[tuple[str, str], ShapeFit] = {}
        entry_fits: dict[str, ShapeFit] = {}
        has_loops = any(table.values())
        if spec is not None and has_loops:
            if findings or self._could_exceed(table, spec):
                with phase("perf.dynamic"):
                    loop_fits, entry_fits = self._fit_shapes(
                        unit, spec, cache_key
                    )
            else:
                count("perf.dynamic_skips")

        diagnostics: list[Diagnostic] = []
        confirmed_entries: set[str] = set()
        for finding in findings:
            diagnostics.append(
                self._render_finding(
                    finding, spec, loop_fits, confirmed_entries
                )
            )

        if spec is not None:
            for entry, shape_name in spec.expected:
                if entry in confirmed_entries:
                    continue  # the escalated finding already explains it
                fit = entry_fits.get(entry)
                if fit is None:
                    continue
                expected = CostShape(shape_name)
                if fit.shape.exceeds(expected):
                    count("perf.shape_mismatches")
                    message = render_feedback(
                        COST_SHAPE_MISMATCH.advisory,
                        {
                            "method": entry,
                            "shape": str(fit.shape),
                            "expected": str(expected),
                        },
                    )
                    diagnostics.append(
                        Diagnostic(
                            check=f"perf.{COST_SHAPE_MISMATCH.id}",
                            severity=COST_SHAPE_MISMATCH.severity,
                            method=entry,
                            message=message,
                        )
                    )
        count("perf.findings", len(diagnostics))
        return diagnostics

    # ------------------------------------------------------------------

    @staticmethod
    def _static_potential(loops: list[LoopInfo]) -> CostShape:
        """Upper-bound cost shape implied by the loop table alone.

        Counts nesting of non-constant-bound loops: zero such levels
        can only be constant work, one is at most linear in the input,
        two or more may be quadratic (or worse — QUADRATIC exceeds
        every declarable shape, which is all the gate needs).
        """
        deepest = 0
        for loop in loops:
            depth = 0
            node: LoopInfo | None = loop
            while node is not None:
                if node.bound != BOUND_CONSTANT:
                    depth += 1
                node = node.parent
            deepest = max(deepest, depth)
        if deepest == 0:
            return CostShape.CONSTANT
        if deepest == 1:
            return CostShape.LINEAR
        return CostShape.QUADRATIC

    def _could_exceed(
        self, table: dict[str, list[LoopInfo]], spec: PerfSpec
    ) -> bool:
        """Whether the submission's loops could beat a declared shape.

        Entry methods may delegate to helpers, so the potential is
        taken over *every* method's loops — conservative (a helper the
        entry never calls still triggers the probe), never unsound.
        """
        potential = CostShape.CONSTANT
        for loops in table.values():
            candidate = self._static_potential(loops)
            if candidate.exceeds(potential):
                potential = candidate
        return any(
            potential.exceeds(CostShape(shape_name))
            for _, shape_name in spec.expected
        )

    def _render_finding(
        self,
        finding: StaticFinding,
        spec: PerfSpec | None,
        loop_fits: dict[tuple[str, str], ShapeFit],
        confirmed_entries: set[str],
    ) -> Diagnostic:
        pattern = get_perf_pattern(finding.pattern_id)
        gamma = dict(finding.gamma)
        severity = pattern.severity
        template = pattern.advisory
        if spec is not None:
            for entry, shape_name in spec.expected:
                expected = CostShape(shape_name)
                fit = loop_fits.get((entry, finding.loop.loop_id))
                if fit is not None and fit.shape.exceeds(expected):
                    count("perf.escalations")
                    confirmed_entries.add(entry)
                    severity = pattern.escalated
                    template = pattern.confirmed
                    gamma["shape"] = str(fit.shape)
                    gamma["expected"] = str(expected)
                    break
        line, column = (
            finding.position if finding.position is not None else (None, None)
        )
        return Diagnostic(
            check=f"perf.{pattern.id}",
            severity=severity,
            method=finding.method,
            message=render_feedback(
                template, {"method": finding.method, **gamma}
            ),
            line=line,
            column=column,
            snippet=finding.snippet or "",
        )

    # ------------------------------------------------------------------

    def _probe_tests(self, spec: PerfSpec) -> list[FunctionalTest]:
        """The input ladder: shipped tests plus expectation-free probes."""
        if self._probes is None:
            probes = list(self.assignment.tests)
            for method, arguments in spec.ladder:
                probes.append(
                    FunctionalTest(method=method, arguments=arguments)
                )
            self._probes = probes
        return self._probes

    def _fit_shapes(
        self,
        unit: ast.CompilationUnit,
        spec: PerfSpec,
        cache_key: str | None,
    ) -> tuple[dict[tuple[str, str], ShapeFit], dict[str, ShapeFit]]:
        """Replay the ladder, fit iteration and step shapes per entry."""
        metric = SIZE_METRICS.get(spec.size_metric)
        if metric is None:
            return {}, {}
        probes = self._probe_tests(spec)
        report = run_tests(
            unit, probes, step_budget=self.probe_budget, cache_key=cache_key
        )
        count("perf.probe_runs", len(report.results))
        loop_points: dict[tuple[str, str], list[tuple[float, float]]] = {}
        entry_points: dict[str, list[tuple[float, float]]] = {}
        for result in report.results:
            cost = result.cost
            if cost is None:
                continue
            size = metric(result.test.arguments)
            if size is None:
                continue
            entry = result.test.method
            entry_points.setdefault(entry, []).append(
                (size, float(cost.steps))
            )
            for loop_id, iterations in cost.loop_iterations.items():
                loop_points.setdefault((entry, loop_id), []).append(
                    (size, float(iterations))
                )
        loop_fits = {
            key: fit_shape(points) for key, points in loop_points.items()
        }
        entry_fits = {
            entry: fit_shape(points)
            for entry, points in entry_points.items()
        }
        count("perf.fits", len(loop_fits) + len(entry_fits))
        return loop_fits, entry_fits
