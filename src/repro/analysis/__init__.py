"""Static analysis: submission diagnostics + knowledge-base linting.

Two independent prongs, one package:

* :mod:`repro.analysis.checks` / :mod:`repro.analysis.dataflow` /
  :mod:`repro.analysis.cfg` — CFG and dataflow checks over a graded
  submission's AST + EPDGs, producing
  :class:`~repro.analysis.diagnostics.Diagnostic` records that ride on
  every :class:`~repro.core.report.GradingReport` (and become the
  primary feedback when Algorithm 2 finds no embedding at all);
* :mod:`repro.analysis.kblint` — static validation of the pattern /
  constraint knowledge base, exposed as ``repro lint-kb`` and run as a
  CI gate;
* :mod:`repro.analysis.perf` — the two-sided performance analyzer
  (static loop anti-patterns cross-checked against dynamically fitted
  cost shapes), opt-in via ``--perf`` on grade-batch/serve/campaign.

See ``docs/ANALYSIS.md`` for the check catalogue, the severity model,
and how to add a check or lint rule.
"""

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis import cfg, dataflow  # noqa: F401  (re-export modules)
from repro.analysis.checks import (
    ANALYSIS_VERSION,
    CHECKS,
    Check,
    MethodAnalysis,
    analysis_fingerprint,
    check_by_id,
    run_checks,
)
from repro.analysis.kblint import (
    LINT_RULES,
    LintFinding,
    LintReport,
    lint_assignment,
    lint_knowledge_base,
    lint_perf_patterns,
)

__all__ = [
    "ANALYSIS_VERSION",
    "CHECKS",
    "Check",
    "Diagnostic",
    "LINT_RULES",
    "LintFinding",
    "LintReport",
    "MethodAnalysis",
    "Severity",
    "analysis_fingerprint",
    "check_by_id",
    "lint_assignment",
    "lint_knowledge_base",
    "lint_perf_patterns",
    "run_checks",
]
